//! Benchmarks for the ablation harness + controller sweep throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_bench::experiments::ablation::{hysteresis_ablation, penalty_ablation};
use rwc_core::controller::{Controller, ControllerConfig};
use rwc_topology::wan::LinkId;
use rwc_util::time::SimTime;
use rwc_util::units::Db;

fn bench_penalty_ablation(c: &mut Criterion) {
    c.bench_function("ablation/penalty_policies", |b| {
        b.iter(|| std::hint::black_box(penalty_ablation()))
    });
}

fn bench_hysteresis(c: &mut Criterion) {
    c.bench_function("ablation/hysteresis_500_ticks", |b| {
        b.iter(|| std::hint::black_box(hysteresis_ablation(&[0.5], 500)))
    });
}

fn bench_controller_sweep(c: &mut Criterion) {
    let mut wan = rwc_topology::builders::grid(4, 4, 300.0);
    let readings: Vec<(LinkId, Option<Db>)> =
        wan.links().map(|(id, _)| (id, Some(Db(12.0)))).collect();
    let mut controller = Controller::new(ControllerConfig::default(), wan.n_links(), 1);
    c.bench_function("controller/sweep_24_links", |b| {
        b.iter(|| {
            std::hint::black_box(controller.sweep(&mut wan, &readings, SimTime::EPOCH))
        })
    });
}

criterion_group!(benches, bench_penalty_ablation, bench_hysteresis, bench_controller_sweep);
criterion_main!(benches);
