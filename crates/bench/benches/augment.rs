//! Benchmarks for §4's machinery: augmentation, translation, Theorem 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwc_core::augment::{augment, AugmentConfig};
use rwc_core::penalty::PenaltyPolicy;
use rwc_core::theorem::check_single_commodity;
use rwc_te::demand::DemandMatrix;
use rwc_topology::graph::NodeId;
use rwc_topology::random::{waxman, WaxmanConfig};
use rwc_topology::WanTopology;
use rwc_util::rng::Xoshiro256;
use rwc_util::units::Db;

fn headroom_wan(n: usize, seed: u64) -> WanTopology {
    let mut wan = waxman(&WaxmanConfig { n_nodes: n, seed, ..Default::default() });
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for (id, _) in wan.clone().links() {
        wan.set_snr(id, Db(rng.uniform_in(6.6, 14.5)));
    }
    wan
}

fn bench_augment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/augment");
    for n in [8usize, 16, 24] {
        let wan = headroom_wan(n, 3);
        let cfg = AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n), &wan, |b, wan| {
            b.iter(|| std::hint::black_box(augment(wan, &DemandMatrix::new(), &cfg, &[])))
        });
    }
    group.finish();
}

fn bench_theorem(c: &mut Criterion) {
    let wan = headroom_wan(12, 4);
    let cfg = AugmentConfig { penalty: PenaltyPolicy::Uniform(10.0), ..Default::default() };
    c.bench_function("thm1/check_single_commodity_12n", |b| {
        b.iter(|| std::hint::black_box(check_single_commodity(&wan, &cfg, NodeId(0), NodeId(5))))
    });
}

criterion_group!(benches, bench_augment, bench_theorem);
criterion_main!(benches);
