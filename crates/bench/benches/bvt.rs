//! Benchmarks for Fig. 6's substrate: BVT reconfiguration sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_optics::bvt::{sample_latencies, Bvt, LatencyModel, ReconfigProcedure};
use rwc_optics::Modulation;
use rwc_util::rng::Xoshiro256;

fn bench_sampling(c: &mut Criterion) {
    let model = LatencyModel::default();
    c.bench_function("fig6b/sample_200_trials_both_procedures", |b| {
        let mut rng = Xoshiro256::seed_from_u64(6);
        b.iter(|| {
            std::hint::black_box(sample_latencies(ReconfigProcedure::Legacy, &model, 200, &mut rng));
            std::hint::black_box(sample_latencies(
                ReconfigProcedure::Efficient,
                &model,
                200,
                &mut rng,
            ));
        })
    });
}

fn bench_state_machine(c: &mut Criterion) {
    c.bench_function("fig6b/bvt_reconfigure_cycle", |b| {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut bvt = Bvt::new(Modulation::DpQpsk100);
        bvt.set_procedure(ReconfigProcedure::Efficient);
        b.iter(|| {
            bvt.reconfigure(Modulation::Dp16Qam200, &mut rng).unwrap();
            bvt.reconfigure(Modulation::DpQpsk100, &mut rng).unwrap();
        })
    });
}

criterion_group!(benches, bench_sampling, bench_state_machine);
criterion_main!(benches);
