//! Benchmarks for Fig. 5's substrate: AWGN constellation trials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwc_optics::constellation::{awgn_trial, Constellation};
use rwc_util::rng::Xoshiro256;
use rwc_util::units::Db;

fn bench_awgn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/awgn_trial_10k");
    for (name, constellation) in [
        ("qpsk", Constellation::qpsk()),
        ("8qam", Constellation::qam8()),
        ("16qam", Constellation::qam16()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &constellation, |b, cst| {
            let mut rng = Xoshiro256::seed_from_u64(5);
            b.iter(|| std::hint::black_box(awgn_trial(cst, Db(18.0), 10_000, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_awgn);
criterion_main!(benches);
