//! Benchmarks for Fig. 3's substrate: threshold-crossing episode scans.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_telemetry::analysis::episodes_below;
use rwc_telemetry::{FleetConfig, FleetGenerator};
use rwc_util::time::SimDuration;
use rwc_util::units::Db;

fn bench_episode_scan(c: &mut Criterion) {
    let mut cfg = FleetConfig::paper();
    cfg.horizon = SimDuration::from_days(913);
    let link = FleetGenerator::new(cfg).link(11);
    c.bench_function("fig3/episodes_below_full_horizon", |b| {
        b.iter(|| std::hint::black_box(episodes_below(&link.trace, Db(12.5))))
    });
}

fn bench_all_rungs(c: &mut Criterion) {
    let mut cfg = FleetConfig::paper();
    cfg.horizon = SimDuration::from_days(120);
    let link = FleetGenerator::new(cfg).link(11);
    c.bench_function("fig3/all_rung_scan_120d", |b| {
        b.iter(|| {
            for m in rwc_optics::Modulation::LADDER {
                std::hint::black_box(episodes_below(&link.trace, m.required_snr()));
            }
        })
    });
}

criterion_group!(benches, bench_episode_scan, bench_all_rungs);
criterion_main!(benches);
