//! Fleet-telemetry fast path: the fused single-pass kernel vs the legacy
//! trace-materialising pipeline, end to end and per stage.
//!
//! `fleet/paper_fiber` is the acceptance benchmark: one fiber of
//! `FleetConfig::paper()` at the full 913-day horizon (40 links ×
//! 87,600 samples), generated + analysed per iteration on each path. The
//! per-stage groups isolate where the time goes: analysis with the trace
//! already in hand, the sort under the HDR, and sample generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_optics::ModulationTable;
use rwc_telemetry::analysis::LinkAnalysis;
use rwc_telemetry::{
    BatchScratch, FleetAccumulator, FleetConfig, FleetGenerator, FleetKernel, GenMode,
};
use rwc_util::rng::Xoshiro256;
use rwc_util::stats::{hdi_of_unsorted, sort_f64_with_scratch};
use rwc_util::time::SimTime;

/// One fiber of the paper fleet at the full horizon — the per-link
/// workload of `FleetConfig::paper()` without re-running all 50 fibers
/// per smoke-shim iteration.
fn paper_fiber() -> FleetGenerator {
    FleetGenerator::new(FleetConfig { n_fibers: 1, ..FleetConfig::paper() })
}

fn bench_fleet_paper(c: &mut Criterion) {
    let gen = paper_fiber();
    let table = ModulationTable::paper_default();
    let mut group = c.benchmark_group("fleet/paper_fiber");
    group.bench_function("legacy", |b| {
        b.iter(|| {
            let mut acc = FleetAccumulator::new();
            for i in 0..gen.n_links() {
                acc.push(&LinkAnalysis::new(&gen.link(i).trace, &table));
            }
            acc.len()
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            let mut kernel = FleetKernel::new();
            let mut acc = FleetAccumulator::new();
            for i in 0..gen.n_links() {
                acc.push(&kernel.analyze_generated(&gen, i, &table));
            }
            acc.len()
        })
    });
    group.finish();
}

fn bench_analysis_only(c: &mut Criterion) {
    let gen = paper_fiber();
    let table = ModulationTable::paper_default();
    let trace = gen.link(7).trace;
    let mut group = c.benchmark_group("fleet/analysis_only_913d");
    group.bench_function("legacy", |b| {
        b.iter(|| LinkAnalysis::new(&trace, &table))
    });
    let mut kernel = FleetKernel::new();
    group.bench_function("fused", |b| {
        b.iter(|| kernel.analyze_trace(&trace, &table))
    });
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let gen = paper_fiber();
    let values = gen.link(3).trace.values().to_vec();
    let mut group = c.benchmark_group("fleet/sort_87k");
    let mut buf: Vec<f64> = Vec::new();
    group.bench_function("comparison", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&values);
            buf.sort_unstable_by(f64::total_cmp);
            buf[0]
        })
    });
    let mut scratch: Vec<f64> = Vec::new();
    group.bench_function("radix", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&values);
            sort_f64_with_scratch(&mut buf, &mut scratch);
            buf[0]
        })
    });
    group.finish();
}

fn bench_hdi(c: &mut Criterion) {
    let gen = paper_fiber();
    let values = gen.link(3).trace.values().to_vec();
    let mut group = c.benchmark_group("fleet/hdi_87k");
    let mut buf: Vec<f64> = Vec::new();
    group.bench_function("full_sort_scan", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&values);
            buf.sort_by(f64::total_cmp);
            rwc_util::stats::highest_density_interval(&buf, 0.95)
        })
    });
    group.bench_function("selection", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&values);
            hdi_of_unsorted(&mut buf, 0.95)
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let gen = paper_fiber();
    let cfg = gen.config().clone();
    let profile = gen.link_profile(11);
    let mut group = c.benchmark_group("fleet/generate_913d");
    group.bench_function("trace", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(42);
            profile
                .process
                .generate(SimTime::EPOCH, cfg.horizon, cfg.tick, &profile.events, &mut rng)
                .len()
        })
    });
    let mut buf: Vec<f64> = Vec::new();
    group.bench_function("streamed", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(42);
            profile.process.generate_into(
                SimTime::EPOCH,
                cfg.horizon,
                cfg.tick,
                &profile.events,
                &mut rng,
                &mut buf,
            );
            buf.len()
        })
    });
    group.finish();
}

fn bench_generation_only(c: &mut Criterion) {
    // Pure generation throughput, one 913-day link, no analysis: the
    // tentpole comparison. `legacy` is the serial Xoshiro path; `batch` is
    // the counter-based SIMD pipeline (target ≥5× on this stage).
    let legacy_gen = paper_fiber();
    let batch_gen = paper_fiber().with_gen_mode(GenMode::Batch);
    let mut group = c.benchmark_group("fleet/generation_only_913d");
    let mut scratch = BatchScratch::default();
    let mut buf: Vec<f64> = Vec::new();
    group.bench_function("legacy", |b| {
        b.iter(|| {
            legacy_gen.generate_link_into(11, &mut scratch, &mut buf);
            buf.len()
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| {
            batch_gen.generate_link_into(11, &mut scratch, &mut buf);
            buf.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_paper,
    bench_analysis_only,
    bench_sort,
    bench_hdi,
    bench_generation,
    bench_generation_only
);
criterion_main!(benches);
