//! Benchmarks for Fig. 2's substrate: HDR + per-link analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwc_optics::ModulationTable;
use rwc_telemetry::{analysis::LinkAnalysis, hdr::Hdr, FleetConfig, FleetGenerator};
use rwc_util::time::SimDuration;

fn bench_hdr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a/hdr");
    for days in [60u64, 913] {
        let mut cfg = FleetConfig::paper();
        cfg.horizon = SimDuration::from_days(days);
        let link = FleetGenerator::new(cfg).link(3);
        group.bench_with_input(BenchmarkId::new("hdr95", days), &days, |b, _| {
            b.iter(|| std::hint::black_box(Hdr::paper(&link.trace)))
        });
    }
    group.finish();
}

fn bench_link_analysis(c: &mut Criterion) {
    let mut cfg = FleetConfig::paper();
    cfg.horizon = SimDuration::from_days(120);
    let link = FleetGenerator::new(cfg).link(3);
    let table = ModulationTable::paper_default();
    c.bench_function("fig2b/link_analysis_120d", |b| {
        b.iter(|| std::hint::black_box(LinkAnalysis::new(&link.trace, &table)))
    });
}

criterion_group!(benches, bench_hdr, bench_link_analysis);
criterion_main!(benches);
