//! Observability overhead: the acceptance gate for the `rwc-obs` layer.
//!
//! The headline pair runs the same one-day Fig. 7 scenario with the
//! default [`NoopObserver`] and with a collecting [`MetricsObserver`];
//! the noop arm must stay within 2% of an uninstrumented build's
//! scenario throughput (compare `obs/scenario_noop` against the
//! pre-instrumentation `round_engine` numbers — the virtual calls to
//! empty hook bodies are the entire cost). The micro group pins down the
//! per-hook costs that overhead is made of.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_core::prelude::*;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::swan::SwanTe;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;
use std::sync::Arc;

fn one_day_scenario(obs: Arc<dyn Observer>) -> (Scenario, SimDuration) {
    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let horizon = SimDuration::from_days(1);
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 13.2,
        fiber_baseline_sd_db: 0.2,
        wavelength_jitter_sd_db: 0.4,
        ..FleetConfig::paper()
    };
    let scenario = Scenario::builder(wan, fleet, dm)
        .observer(obs)
        .build()
        .expect("bench scenario wiring is valid");
    (scenario, horizon)
}

fn bench_scenario_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.bench_function("scenario_noop", |b| {
        b.iter(|| {
            let (mut s, horizon) = one_day_scenario(rwc_obs::noop());
            std::hint::black_box(s.run(horizon, &SwanTe::default()).unwrap())
        })
    });
    group.bench_function("scenario_metrics", |b| {
        b.iter(|| {
            let obs = Arc::new(MetricsObserver::new());
            let (mut s, horizon) = one_day_scenario(obs.clone());
            let report = s.run(horizon, &SwanTe::default()).unwrap();
            std::hint::black_box((report, obs.snapshot()))
        })
    });
    group.finish();
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/hooks");
    let noop = rwc_obs::noop();
    group.bench_function("incr_noop", |b| {
        b.iter(|| noop.incr(std::hint::black_box("te.rounds"), 1))
    });
    let metrics: Arc<dyn Observer> = Arc::new(MetricsObserver::new());
    group.bench_function("incr_metrics", |b| {
        b.iter(|| metrics.incr(std::hint::black_box("te.rounds"), 1))
    });
    group.bench_function("record_metrics", |b| {
        b.iter(|| metrics.record("te.solve_micros", std::hint::black_box(137.0)))
    });
    group.bench_function("event_metrics", |b| {
        b.iter(|| metrics.event(std::hint::black_box(&Event::WarmSolve { pivots: 4 })))
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let reg = MetricsRegistry::new();
    for i in 0..10_000u64 {
        reg.record("te.solve_micros", (i % 977) as f64);
    }
    reg.incr("te.rounds", 10_000);
    c.bench_function("obs/snapshot", |b| b.iter(|| std::hint::black_box(reg.snapshot())));
}

criterion_group!(benches, bench_scenario_overhead, bench_hooks, bench_snapshot);
criterion_main!(benches);
