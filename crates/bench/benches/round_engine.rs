//! Full-rebuild vs incremental TE round engine.
//!
//! Runs the perf scenario's first day of rounds through
//! `Scenario::run` twice — once with the `full_rebuild`
//! escape hatch (fresh augmentation, no static memo, no counterfactual
//! cache) and once with the incremental engine — and once more with the
//! warm-started exact LP, the configuration `repro --bench-json` gates
//! in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_bench::perf::scenario_perf;
use rwc_bench::Scale;

fn bench_round_engine(c: &mut Criterion) {
    c.bench_function("round_engine/full_vs_incremental_quick", |b| {
        b.iter(|| std::hint::black_box(scenario_perf(Scale::Quick)))
    });
}

criterion_group!(benches, bench_round_engine);
criterion_main!(benches);
