//! Cold vs warm simplex on a drifting TE LP, and sparse vs dense backends
//! across topology scales.
//!
//! The drift workload mirrors what the round engine does: the same
//! augmented TE problem re-solved as its capacities drift a few percent
//! per round. `cold` allocates a fresh solver per solve (Phase I every
//! time); `warm` reuses one [`SimplexSolver`], so successive solves either
//! fast-resolve (rhs-only change) or refactorise the saved basis.
//!
//! The `backend` group pits the sparse revised simplex against the dense
//! tableau on [`builders::scaled_mesh`] replicas of increasing size; after
//! each timed arm it prints the sparse solver's eta-update chain length
//! per refactorisation, the PFI health metric from DESIGN.md §14.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_lp::{SimplexSolver, SparseSimplexSolver};
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::problem::TeProblem;
use rwc_te::TeFormulation;
use rwc_topology::builders;
use rwc_topology::wan::LinkId;
use rwc_util::units::Gbps;

/// The abilene TE LP with every link's capacity drifted by round.
fn drifted_lp(round: usize) -> rwc_lp::LinearProgram {
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(1_000.0), 11);
    let mut problem = TeProblem::from_wan(&wan, &dm);
    for l in 0..wan.n_links() {
        // Deterministic per-round capacity drift of up to ±5%.
        let phase = (round * (l + 3)) % 7;
        let factor = 0.95 + 0.015 * phase as f64;
        let id = LinkId(l);
        problem.override_link_capacity(id, wan.link(id).capacity().0 * factor);
    }
    lowering(&problem).dense_lp()
}

/// Max-throughput lowering with the benches' historical unit weight.
fn lowering(problem: &TeProblem) -> rwc_te::LoweredTe<'_> {
    TeFormulation { throughput_weight: 1.0, ..TeFormulation::default() }
        .lower(problem)
        .expect("max-throughput lowering cannot fail validation")
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let lps: Vec<_> = (0..4).map(drifted_lp).collect();
    c.bench_function("simplex/cold_abilene_drift", |b| {
        b.iter(|| {
            for lp in &lps {
                std::hint::black_box(SimplexSolver::new().solve(lp));
            }
        })
    });
    c.bench_function("simplex/warm_abilene_drift", |b| {
        let mut solver = SimplexSolver::new();
        b.iter(|| {
            for lp in &lps {
                std::hint::black_box(solver.solve(lp));
            }
        })
    });
}

/// The drifting round sequence of the `large_te` perf stage, at a given
/// mesh replication factor.
fn scaled_problems(factor: usize, rounds: usize) -> (TeProblem, Vec<TeProblem>) {
    let wan = builders::scaled_mesh(factor, 500.0);
    let pick = |name: String| wan.node_by_name(&name).expect("scaled mesh site");
    let mut dm = DemandMatrix::new();
    for i in 0..factor {
        let s = pick(format!("S{i}-{}", 3 + (i % 3)));
        let t = pick(format!("S{}-4", (i + 1) % factor));
        if s != t {
            dm.add(s, t, Gbps(60.0), Priority::Elastic);
        }
    }
    if factor > 1 {
        // End-to-end long haul across all replicas (self-demand at x1).
        let (s, t) = (pick("S0-5".into()), pick(format!("S{}-5", factor - 1)));
        dm.add(s, t, Gbps(80.0), Priority::Elastic);
    }
    let base = TeProblem::from_wan(&wan, &dm);
    let drifted = (0..rounds)
        .map(|round| {
            let mut p = base.clone();
            for l in 0..wan.n_links() {
                let phase = (round * (l + 3)) % 7;
                let factor = 0.91 + 0.03 * phase as f64;
                let id = LinkId(l);
                p.override_link_capacity(id, wan.link(id).capacity().0 * factor);
            }
            p
        })
        .collect();
    (base, drifted)
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    for factor in [1usize, 2, 4] {
        let (_, rounds) = scaled_problems(factor, 4);
        let sparse_rounds: Vec<_> = rounds.iter().map(|p| lowering(p).sparse_lp()).collect();
        let dense_rounds: Vec<_> = rounds.iter().map(|p| lowering(p).dense_lp()).collect();
        c.bench_function(&format!("simplex/sparse_mesh_x{factor}"), |b| {
            let mut solver = SparseSimplexSolver::new();
            b.iter(|| {
                for sp in &sparse_rounds {
                    std::hint::black_box(solver.solve_sparse(sp));
                }
            })
        });
        // Report the PFI chain health after the timed sparse runs.
        let mut probe = SparseSimplexSolver::new();
        for sp in &sparse_rounds {
            std::hint::black_box(probe.solve_sparse(sp));
        }
        let stats = probe.stats();
        let chains = if stats.refactorizations == 0 {
            0.0
        } else {
            stats.eta_updates as f64 / stats.refactorizations as f64
        };
        println!(
            "simplex/sparse_mesh_x{factor}: {} eta updates over {} refactorisations \
             ({chains:.1} per chain), final chain length {}",
            stats.eta_updates,
            stats.refactorizations,
            probe.eta_chain_len(),
        );
        c.bench_function(&format!("simplex/dense_mesh_x{factor}"), |b| {
            let mut solver = SimplexSolver::new();
            b.iter(|| {
                for lp in &dense_rounds {
                    std::hint::black_box(solver.solve(lp));
                }
            })
        });
    }
}

criterion_group!(benches, bench_cold_vs_warm, bench_sparse_vs_dense);
criterion_main!(benches);
