//! Cold vs warm simplex on a drifting TE LP.
//!
//! The workload mirrors what the round engine does: the same augmented
//! TE problem re-solved as its capacities drift a few percent per round.
//! `cold` allocates a fresh solver per solve (Phase I every time);
//! `warm` reuses one [`SimplexSolver`], so successive solves either
//! fast-resolve (rhs-only change) or refactorise the saved basis.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_lp::SimplexSolver;
use rwc_te::demand::DemandMatrix;
use rwc_te::exact::build_lp;
use rwc_te::problem::TeProblem;
use rwc_topology::builders;
use rwc_topology::wan::LinkId;
use rwc_util::units::Gbps;

/// The abilene TE LP with every link's capacity drifted by round.
fn drifted_lp(round: usize) -> rwc_lp::LinearProgram {
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(1_000.0), 11);
    let mut problem = TeProblem::from_wan(&wan, &dm);
    for l in 0..wan.n_links() {
        // Deterministic per-round capacity drift of up to ±5%.
        let phase = (round * (l + 3)) % 7;
        let factor = 0.95 + 0.015 * phase as f64;
        let id = LinkId(l);
        problem.override_link_capacity(id, wan.link(id).capacity().0 * factor);
    }
    build_lp(&problem, 1.0)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let lps: Vec<_> = (0..4).map(drifted_lp).collect();
    c.bench_function("simplex/cold_abilene_drift", |b| {
        b.iter(|| {
            for lp in &lps {
                std::hint::black_box(SimplexSolver::new().solve(lp));
            }
        })
    });
    c.bench_function("simplex/warm_abilene_drift", |b| {
        let mut solver = SimplexSolver::new();
        b.iter(|| {
            for lp in &lps {
                std::hint::black_box(solver.solve(lp));
            }
        })
    });
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
