//! Benchmarks for the TE solvers on the throughput-gain workload.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_te::b4::B4Te;
use rwc_te::cspf::CspfTe;
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::TeProblem;
use rwc_te::swan::SwanTe;
use rwc_te::TeAlgorithm;
use rwc_topology::builders;
use rwc_util::units::Gbps;

fn problem() -> TeProblem {
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(1_000.0), 11);
    TeProblem::from_wan(&wan, &dm)
}

fn bench_solvers(c: &mut Criterion) {
    let p = problem();
    c.bench_function("tput/swan_abilene_gravity", |b| {
        let algo = SwanTe::default();
        b.iter(|| std::hint::black_box(algo.solve(&p)))
    });
    c.bench_function("tput/b4_abilene_gravity", |b| {
        let algo = B4Te::default();
        b.iter(|| std::hint::black_box(algo.solve(&p)))
    });
    c.bench_function("tput/cspf_abilene_gravity", |b| {
        let algo = CspfTe::default();
        b.iter(|| std::hint::black_box(algo.solve(&p)))
    });
}

fn bench_flow_kernels(c: &mut Criterion) {
    let p = problem();
    c.bench_function("flow/dinic_abilene", |b| {
        b.iter(|| std::hint::black_box(rwc_flow::max_flow(&p.net, 0, 10)))
    });
    c.bench_function("flow/mincost_abilene", |b| {
        b.iter(|| std::hint::black_box(rwc_flow::min_cost_max_flow(&p.net, 0, 10)))
    });
}

criterion_group!(benches, bench_solvers, bench_flow_kernels);
criterion_main!(benches);
