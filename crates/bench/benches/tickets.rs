//! Benchmarks for Fig. 4's substrate: ticket generation + analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use rwc_failures::availability::AvailabilityReport;
use rwc_failures::{TicketAnalysis, TicketConfig, TicketGenerator};
use rwc_optics::ModulationTable;
use rwc_util::units::Gbps;

fn bench_generate(c: &mut Criterion) {
    let gen = TicketGenerator::new(TicketConfig::paper());
    c.bench_function("fig4/generate_250_tickets", |b| {
        b.iter(|| std::hint::black_box(gen.generate()))
    });
}

fn bench_analyse(c: &mut Criterion) {
    let tickets = TicketGenerator::new(TicketConfig::paper()).generate();
    c.bench_function("fig4/analyse_corpus", |b| {
        b.iter(|| std::hint::black_box(TicketAnalysis::new(&tickets)))
    });
    let table = ModulationTable::paper_default();
    c.bench_function("avail/replay_corpus", |b| {
        b.iter(|| std::hint::black_box(AvailabilityReport::replay(&tickets, &table, Gbps(100.0))))
    });
}

criterion_group!(benches, bench_generate, bench_analyse);
criterion_main!(benches);
