//! Benchmarks for Fig. 1's substrate: SNR trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwc_telemetry::{FleetConfig, FleetGenerator};
use rwc_util::time::SimDuration;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/trace_gen");
    for days in [30u64, 120, 913] {
        let mut cfg = FleetConfig::paper();
        cfg.horizon = SimDuration::from_days(days);
        let gen = FleetGenerator::new(cfg);
        group.bench_with_input(BenchmarkId::new("one_link", days), &days, |b, _| {
            b.iter(|| std::hint::black_box(gen.link(7)))
        });
    }
    group.finish();
}

fn bench_fiber_generation(c: &mut Criterion) {
    let mut cfg = FleetConfig::paper();
    cfg.horizon = SimDuration::from_days(60);
    let gen = FleetGenerator::new(cfg);
    c.bench_function("fig1/forty_wavelength_fiber_60d", |b| {
        b.iter(|| std::hint::black_box(gen.fiber(0)))
    });
}

criterion_group!(benches, bench_trace_generation, bench_fiber_generation);
criterion_main!(benches);
