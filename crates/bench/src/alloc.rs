//! Counting global allocator — the peak-RSS proxy behind `BENCH_fleet.json`.
//!
//! Wraps [`System`] with relaxed atomic counters: bytes and calls
//! allocated, plus a high-water mark of live bytes. The fleet perf digest
//! reads deltas around a measured region, turning "the fused path stopped
//! cloning traces" into a number CI can gate on. Overhead is four relaxed
//! atomic ops per allocation — noise next to the allocation itself.
//!
//! The `unsafe` here is confined to forwarding [`GlobalAlloc`] to
//! [`System`]; the counters themselves are safe code.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus allocation accounting. Installed as the global
/// allocator of every `rwc-bench` binary, bench and test.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping never observes or
// alters the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            record_alloc(new_size as u64);
        }
        p
    }
}

fn record_alloc(bytes: u64) {
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Point-in-time allocator counters.
#[derive(Debug, Clone, Copy)]
pub struct AllocSnapshot {
    /// Total bytes allocated since process start.
    pub bytes: u64,
    /// Total allocation calls since process start.
    pub count: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes since the last [`reset_peak`].
    pub peak_live_bytes: u64,
}

/// Reads the counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets the live-bytes high-water mark to the current live level, so the
/// next measured region reports its own peak rather than the process's.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Allocation accounting of one measured region: bytes/calls allocated
/// inside it and the peak of live bytes reached while it ran.
#[derive(Debug, Clone, Copy)]
pub struct AllocDelta {
    /// Bytes allocated within the region.
    pub bytes: u64,
    /// Allocation calls within the region.
    pub count: u64,
    /// Peak live bytes while the region ran (absolute, RSS-proxy).
    pub peak_live_bytes: u64,
}

/// Measures the allocations of `f`. Single measured region at a time —
/// concurrent measured regions would share the global counters.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocDelta) {
    reset_peak();
    let before = snapshot();
    let out = f();
    let after = snapshot();
    (
        out,
        AllocDelta {
            bytes: after.bytes - before.bytes,
            count: after.count - before.count,
            peak_live_bytes: after.peak_live_bytes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_sees_allocations() {
        let (len, delta) = measure(|| {
            let v: Vec<u64> = (0..10_000).collect();
            v.len()
        });
        assert_eq!(len, 10_000);
        assert!(delta.bytes >= 80_000, "vec of 10k u64 allocates >= 80 kB, saw {}", delta.bytes);
        assert!(delta.count >= 1);
        assert!(delta.peak_live_bytes >= 80_000);
    }

    #[test]
    fn counters_are_monotonic() {
        let a = snapshot();
        let _v: Vec<u8> = Vec::with_capacity(1024);
        let b = snapshot();
        assert!(b.bytes >= a.bytes + 1024);
        assert!(b.count > a.count);
    }
}
