//! `loadgen`: seeded open-loop load generator for `rwc-serve`.
//!
//! ```text
//! loadgen --target ADDR [--seed N] [--batch N] [--interval-ms T]
//!         [--burst N] [--overload N] [--wait] [--shutdown] [--quiet]
//! ```
//!
//! Three phases, all built from one seeded shuffle of the fleet's link
//! ids (the daemon reports the fleet size on `/readyz`):
//!
//! 1. **rate** — paced batches of `--batch` ids every `--interval-ms`,
//!    until every link has been offered once (open loop: the pace never
//!    adapts to the daemon);
//! 2. **burst** — `--burst` already-offered ids replayed in a single
//!    request, exercising duplicate suppression;
//! 3. **overload** — `--overload` ids fired with no pacing, exercising
//!    the shed policy (rejections and sheds are expected and counted).
//!
//! `--wait` then polls `/readyz` until every link is completed, and
//! `--shutdown` posts `/shutdown` for a graceful drain. Exit: `0` when
//! every request got an HTTP response (shedding is success — that is the
//! policy working), `10` when the daemon could not be reached.

use rwc_bench::cli;
use rwc_obs::ConsoleSink;
use rwc_util::rng::Xoshiro256;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

struct Totals {
    accepted: u64,
    rejected: u64,
    duplicates: u64,
    shed: u64,
    requests: u64,
}

fn main() -> ExitCode {
    let mut target = "127.0.0.1:7117".to_string();
    let mut seed = 0x4c_4f_41_44u64; // "LOAD"
    let mut batch = 8usize;
    let mut interval = Duration::from_millis(5);
    let mut burst = 0usize;
    let mut overload = 0usize;
    let mut wait = false;
    let mut shutdown = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => match args.next() {
                Some(a) => target = a,
                None => return usage_error("--target needs an address"),
            },
            "--seed" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => seed = n,
                None => return usage_error("--seed needs an integer"),
            },
            "--batch" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => return usage_error("--batch needs a positive integer"),
            },
            "--interval-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => interval = Duration::from_millis(ms),
                None => return usage_error("--interval-ms needs an integer"),
            },
            "--burst" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => burst = n,
                None => return usage_error("--burst needs an integer"),
            },
            "--overload" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => overload = n,
                None => return usage_error("--overload needs an integer"),
            },
            "--wait" => wait = true,
            "--shutdown" => shutdown = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --target ADDR [--seed N] [--batch N] [--interval-ms T] \
                     [--burst N] [--overload N] [--wait] [--shutdown] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag: {other}")),
        }
    }
    let sink = ConsoleSink::new(quiet);

    let Some(ready) = request(&target, "GET", "/readyz", "") else {
        sink.error(&format!("cannot reach rwc-serve at {target}"));
        return ExitCode::from(cli::EXIT_SERVE);
    };
    let Some(total) = json_u64(&ready.1, "links_total") else {
        sink.error("/readyz did not report links_total");
        return ExitCode::from(cli::EXIT_SERVE);
    };
    let total = total as usize;
    let mut order: Vec<usize> = (0..total).collect();
    Xoshiro256::seed_from_u64(seed).shuffle(&mut order);
    sink.progress(&format!(
        "driving {total} links at {target} (seed {seed}, batch {batch}, every {:?})",
        interval
    ));

    let mut totals = Totals { accepted: 0, rejected: 0, duplicates: 0, shed: 0, requests: 0 };
    // Phase 1: paced open-loop sweep over the shuffled order.
    for chunk in order.chunks(batch) {
        if !ingest(&target, chunk, &mut totals) {
            sink.error("ingest request failed mid-sweep");
            return ExitCode::from(cli::EXIT_SERVE);
        }
        std::thread::sleep(interval);
    }
    // Phase 2: duplicate burst in one request.
    if burst > 0 {
        let replay: Vec<usize> = order.iter().copied().take(burst).collect();
        if !ingest(&target, &replay, &mut totals) {
            sink.error("burst request failed");
            return ExitCode::from(cli::EXIT_SERVE);
        }
    }
    // Phase 3: unpaced overload (wraps the order as needed).
    if overload > 0 {
        let flood: Vec<usize> = order.iter().copied().cycle().take(overload).collect();
        for chunk in flood.chunks(batch.max(64)) {
            if !ingest(&target, chunk, &mut totals) {
                sink.error("overload request failed");
                return ExitCode::from(cli::EXIT_SERVE);
            }
        }
    }
    sink.result(&format!(
        "loadgen: {} requests, {} accepted, {} duplicates, {} rejected, {} shed",
        totals.requests, totals.accepted, totals.duplicates, totals.rejected, totals.shed
    ));

    if wait {
        loop {
            let Some((_, body)) = request(&target, "GET", "/readyz", "") else {
                sink.error("daemon went away while waiting for completion");
                return ExitCode::from(cli::EXIT_SERVE);
            };
            let done = json_u64(&body, "links_completed").unwrap_or(0);
            if done >= total as u64 {
                sink.result(&format!("fleet complete: {done}/{total} links"));
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    if shutdown {
        if request(&target, "POST", "/shutdown", "").is_none() {
            sink.error("shutdown request failed");
            return ExitCode::from(cli::EXIT_SERVE);
        }
        sink.progress("daemon draining");
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(cli::EXIT_USAGE)
}

fn ingest(target: &str, links: &[usize], totals: &mut Totals) -> bool {
    let body: String =
        links.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(" ");
    let Some((status, reply)) = request(target, "POST", "/ingest", &body) else {
        return false;
    };
    totals.requests += 1;
    if status != 200 {
        // 503 while draining is still a response; count nothing.
        return true;
    }
    totals.accepted += json_u64(&reply, "accepted").unwrap_or(0);
    totals.rejected += json_u64(&reply, "rejected").unwrap_or(0);
    totals.duplicates += json_u64(&reply, "duplicates").unwrap_or(0);
    totals.shed += json_u64(&reply, "shed").unwrap_or(0);
    true
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn request(target: &str, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(target).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {target}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).ok()?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply).ok()?;
    let status = reply.split(' ').nth(1)?.parse::<u16>().ok()?;
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Some((status, body))
}

/// Extracts `"key":<number>` from a flat JSON object without a parser —
/// the replies are machine-generated, not adversarial.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String =
        body[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}
