//! Figure-reproduction CLI.
//!
//! ```text
//! repro [--quick|--full] [--out DIR] <id>... | all
//! ```
//!
//! Ids: fig1 fig2a fig2b fig3a fig3b fig4 fig5 fig6b fig7 fig8 thm1 tput
//! avail scenario faults srlg ablation. Default scale is a reduced fleet
//! (fast); `--quick` spells that default out (handy in CI), `--full` runs
//! the paper-scale corpus (2,000 links × 2.5 years — takes a while).

use rwc_bench::experiments;
use rwc_bench::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = Scale::Quick;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: repro [--quick|--full] [--out DIR] <id>... | all");
                println!("ids: {} ablation", experiments::ALL.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
        ids.push("ablation".into());
    }

    for id in &ids {
        let Some(report) = experiments::run(id, scale) else {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::FAILURE;
        };
        print!("{}", report.render());
        match report.write_csv(&out_dir) {
            Ok(files) => {
                for f in files {
                    println!("  -> {f}");
                }
            }
            Err(e) => {
                eprintln!("failed to write CSV: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
