//! Figure-reproduction CLI.
//!
//! ```text
//! repro [--quick|--full|--scale N] [--legacy-analysis] [--gen-mode legacy|batch]
//!       [--quiet] [--obs-json FILE] [--checkpoint FILE] [--resume FILE]
//!       [--out DIR] <id>... | all
//! repro --bench-json [--perf-baseline FILE] [--quick|--full|--scale N] [--out DIR]
//! ```
//!
//! Ids: fig1 fig2a fig2b fig3a fig3b fig4 fig5 fig6b fig7 fig8 thm1 tput
//! avail scenario faults srlg ablation chaos. Default scale is a reduced fleet
//! (fast); `--quick` spells that default out (handy in CI), `--full` runs
//! the paper-scale corpus (2,000 links × 2.5 years — takes a while), and
//! `--scale N` multiplies the paper fleet (`--scale 10` = 20,000 links)
//! for fleet-pipeline stress runs.
//!
//! `--obs-json FILE` switches observability on for the whole process: a
//! [`rwc_obs::MetricsObserver`] is installed before any experiment
//! dispatches, every pipeline the experiments build publishes into it
//! (controller decisions and reconfigurations, TE round/solve timing and
//! warm-start rates, scenario tick/fault counters, fleet-kernel episode
//! statistics), and the merged snapshot is written to `FILE` as
//! deterministic JSON when the run finishes. Reports stay byte-identical
//! with observability on or off — metrics are a sidecar, never an input.
//!
//! `--quiet` suppresses progress lines and the `[obs]` event echo;
//! experiment findings and errors still print.
//!
//! `--legacy-analysis` re-runs fleet experiments on the original
//! trace-materialising analysis path instead of the fused kernel — the
//! escape hatch for bisecting or re-checking equivalence.
//!
//! `--gen-mode batch` switches trace *generation* to the counter-based
//! batch pipeline (blockwise OU + vectorised composition, DESIGN.md §13).
//! The batch fleet is statistically equivalent to the legacy fleet but
//! not byte-identical to it, so checkpoints fingerprint the generation
//! mode: a `--resume` across `--gen-mode` values is rejected up front.
//!
//! `--checkpoint FILE` makes every fleet sweep crash-safe: progress is
//! checkpointed to `FILE` every few chunks (atomically, temp + rename),
//! so a killed run can be continued with `--resume FILE`. The resume file
//! is verified up front — envelope checksum, format version, and sweep
//! fingerprint against this invocation's fleet/seed/analysis mode — and a
//! bad file exits with a distinct code (see [`rwc_bench::cli`]) instead
//! of silently starting over. A resumed run reproduces the uninterrupted
//! run's reports byte for byte. `--resume FILE` alone keeps writing
//! updated checkpoints back to the same file.
//!
//! `--bench-json` times the scenario round engine (full-rebuild vs
//! incremental, cold vs warm exact LP) and the fleet-analysis pipeline
//! (fused vs legacy), writing `BENCH_scenario.json` and `BENCH_fleet.json`
//! to the output directory. With `--perf-baseline FILE` it additionally
//! exits non-zero when incremental rounds/sec or fused links/sec falls
//! below half the committed baseline — the CI perf-smoke gate. Failure
//! classes map to stable exit codes, documented in [`rwc_bench::cli`].

use rwc_bench::experiments::{self, CheckpointState};
use rwc_bench::perf::PerfBaseline;
use rwc_bench::{cli, Scale};
use rwc_harness::{checkpoint, HarnessError, SweepFingerprint};
use rwc_obs::{ConsoleSink, MetricsObserver};
use rwc_telemetry::{AnalysisMode, FleetGenerator, GenMode};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(cli::EXIT_USAGE)
}

fn main() -> ExitCode {
    let mut scale = Scale::Quick;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut bench_json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut obs_path: Option<PathBuf> = None;
    let mut checkpoint_path: Option<PathBuf> = None;
    let mut resume_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut mode = AnalysisMode::Fused;
    let mut gen_mode = GenMode::Legacy;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--scale" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => scale = Scale::Scaled(n),
                _ => return usage_error("--scale needs a positive integer fleet multiplier"),
            },
            "--legacy-analysis" => mode = AnalysisMode::Legacy,
            "--gen-mode" => match args.next().and_then(|m| m.parse::<GenMode>().ok()) {
                Some(m) => gen_mode = m,
                None => return usage_error("--gen-mode needs 'legacy' or 'batch'"),
            },
            "--bench-json" => bench_json = true,
            "--quiet" => quiet = true,
            "--obs-json" => match args.next() {
                Some(file) => obs_path = Some(PathBuf::from(file)),
                None => return usage_error("--obs-json needs a file"),
            },
            "--checkpoint" => match args.next() {
                Some(file) => checkpoint_path = Some(PathBuf::from(file)),
                None => return usage_error("--checkpoint needs a file"),
            },
            "--resume" => match args.next() {
                Some(file) => resume_path = Some(PathBuf::from(file)),
                None => return usage_error("--resume needs a file"),
            },
            "--perf-baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage_error("--perf-baseline needs a file"),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage_error("--out needs a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--full|--scale N] [--legacy-analysis] \
                     [--gen-mode legacy|batch] [--quiet] \
                     [--obs-json FILE] [--checkpoint FILE] [--resume FILE] [--out DIR] \
                     <id>... | all"
                );
                println!("       repro --bench-json [--perf-baseline FILE]");
                println!("ids: {} ablation chaos", experiments::ALL.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    let sink = ConsoleSink::new(quiet);
    experiments::set_analysis_mode(mode);
    experiments::set_gen_mode(gen_mode);
    if obs_path.is_some() {
        // Install before any experiment dispatches: every pipeline built
        // from here on publishes into this registry, with the salient
        // events echoed through the console sink.
        experiments::set_observer(Arc::new(MetricsObserver::with_forward(Arc::new(sink))));
    }
    if bench_json {
        return run_bench_json(scale, &out_dir, baseline_path.as_deref(), &sink);
    }
    if baseline_path.is_some() {
        return usage_error("--perf-baseline only makes sense with --bench-json");
    }
    if checkpoint_path.is_some() || resume_path.is_some() {
        if let Err(code) =
            install_checkpoint_plan(checkpoint_path, resume_path, scale, mode, gen_mode, &sink)
        {
            return code;
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
        ids.push("ablation".into());
    }

    for id in &ids {
        sink.progress(&format!("running {id} ({} scale)…", scale.label()));
        let Some(report) = experiments::run(id, scale) else {
            sink.error(&format!("unknown experiment id: {id}"));
            return ExitCode::FAILURE;
        };
        sink.result(report.render().trim_end());
        match report.write_csv(&out_dir) {
            Ok(files) => {
                for f in files {
                    sink.progress(&format!("  -> {f}"));
                }
            }
            Err(e) => {
                sink.error(&format!("failed to write CSV: {e}"));
                return ExitCode::FAILURE;
            }
        }
        sink.progress("");
    }
    write_obs_snapshot(obs_path.as_deref(), &sink)
}

/// Loads and verifies the `--resume` file (envelope checksum, format
/// version, fingerprint against this invocation's fleet/seed/analysis
/// mode) and installs the process-wide checkpoint plan. Failures map to
/// the exit codes documented in [`cli`] — notably [`cli::EXIT_CHECKPOINT`]
/// for corrupt, version-mismatched, or foreign checkpoints.
fn install_checkpoint_plan(
    checkpoint_path: Option<PathBuf>,
    resume_path: Option<PathBuf>,
    scale: Scale,
    mode: AnalysisMode,
    gen_mode: GenMode,
    sink: &ConsoleSink,
) -> Result<(), ExitCode> {
    let resume = match &resume_path {
        Some(path) => {
            let cp = checkpoint::load(path).map_err(|e| {
                sink.error(&format!("--resume {}: {e}", path.display()));
                ExitCode::from(cli::harness_exit_code(&HarnessError::Checkpoint(e)))
            })?;
            // Fail fast on a checkpoint from a different sweep, before any
            // experiment dispatches. Chunk size comes from the checkpoint
            // itself (resume replays the original chunk boundaries no
            // matter the thread count), so only fleet size, seed, analysis
            // mode and generation mode are pinned by this invocation. The
            // labels match the executor's fingerprinting: legacy-generation
            // labels keep their historical spelling so pre-batch
            // checkpoints still resume.
            let fleet = scale.fleet();
            let expected = SweepFingerprint {
                n_links: FleetGenerator::new(scale.fleet()).n_links() as u64,
                chunk_size: cp.fingerprint.chunk_size,
                seed: fleet.seed,
                mode: match (mode, gen_mode) {
                    (AnalysisMode::Fused, GenMode::Legacy) => "fused",
                    (AnalysisMode::Legacy, GenMode::Legacy) => "legacy",
                    (AnalysisMode::Fused, GenMode::Batch) => "fused+batchgen",
                    (AnalysisMode::Legacy, GenMode::Batch) => "legacy+batchgen",
                }
                .into(),
            };
            expected.verify(&cp.fingerprint).map_err(|e| {
                sink.error(&format!("--resume {}: {e}", path.display()));
                ExitCode::from(cli::harness_exit_code(&HarnessError::Checkpoint(e)))
            })?;
            sink.progress(&format!(
                "resuming from {} ({} completed chunks verified)",
                path.display(),
                cp.chunks.len()
            ));
            Some(cp)
        }
        None => None,
    };
    // `--resume` without `--checkpoint` keeps writing updated checkpoints
    // back to the file it restored from.
    let path = checkpoint_path.or(resume_path).expect("caller ensured one path is set");
    experiments::set_checkpoint(CheckpointState { path, resume });
    Ok(())
}

/// Writes the installed observer's merged snapshot to `path`; a no-op
/// when `--obs-json` was not given.
fn write_obs_snapshot(path: Option<&std::path::Path>, sink: &ConsoleSink) -> ExitCode {
    let Some(path) = path else {
        return ExitCode::SUCCESS;
    };
    let Some(snapshot) = experiments::metrics() else {
        sink.error("--obs-json: no observer was installed (internal error)");
        return ExitCode::FAILURE;
    };
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            sink.error(&format!("cannot create {}: {e}", dir.display()));
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(path, snapshot.to_json() + "\n") {
        sink.error(&format!("cannot write {}: {e}", path.display()));
        return ExitCode::FAILURE;
    }
    sink.result(&format!(
        "observability snapshot ({} counters, {} gauges, {} histograms) -> {}",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        path.display()
    ));
    ExitCode::SUCCESS
}

fn run_bench_json(
    scale: Scale,
    out_dir: &std::path::Path,
    baseline: Option<&std::path::Path>,
    sink: &ConsoleSink,
) -> ExitCode {
    let perf = rwc_bench::perf::scenario_perf(scale);
    sink.result(&format!(
        "round engine ({} scale): full {:.1} rounds/sec -> incremental {:.1} rounds/sec \
         ({:.2}x solve speedup, reports identical: {})",
        perf.scale,
        perf.full.rounds_per_sec,
        perf.incremental.rounds_per_sec,
        perf.solve_speedup,
        perf.reports_identical,
    ));
    sink.result(&format!(
        "exact LP: cold p50 {} us / p99 {} us -> warm p50 {} us / p99 {} us \
         ({:.2}x solve speedup, warm hit rate {:.0}%, max throughput delta {:.2e} G)",
        perf.exact_cold.solve_p50_micros,
        perf.exact_cold.solve_p99_micros,
        perf.exact_warm.solve_p50_micros,
        perf.exact_warm.solve_p99_micros,
        perf.exact_solve_speedup,
        100.0 * perf.warm_hit_rate,
        perf.max_throughput_delta,
    ));
    if let Some(lt) = &perf.large_te {
        let dense_arm = if lt.dense.rounds == 0 {
            "dense skipped (topology beyond the tableau's reach)".to_string()
        } else {
            format!(
                "dense {:.1} rounds/sec -> sparse at {:.1}x",
                lt.dense.rounds_per_sec, lt.sparse_speedup
            )
        };
        sink.result(&format!(
            "large TE (scale x{}, {} links, {} commodities, LP {}x{}): \
             sparse {:.1} rounds/sec (p50 {} us / p99 {} us, \
             {:.1} eta updates/refactor); {dense_arm}",
            lt.scale_factor,
            lt.links,
            lt.commodities,
            lt.lp_rows,
            lt.lp_cols,
            lt.sparse.rounds_per_sec,
            lt.sparse.solve_p50_micros,
            lt.sparse.solve_p99_micros,
            lt.eta_updates_per_refactor,
        ));
    }
    if let Some(obj) = &perf.objectives {
        sink.result(&format!(
            "objective zoo (mesh x{}, {} fake edges): {}/{} objectives solved, \
             worst backend disagreement {:.2e}; min-MLU envelope {:.3} >= \
             max single-TM {:.3}, drift warm hit rate {:.0}%, sparse {:.1}x dense",
            obj.scale_factor,
            obj.fake_edges,
            obj.arms.iter().filter(|a| a.solved).count(),
            obj.arms.len(),
            obj.max_agreement_delta,
            obj.min_mlu.envelope_mlu,
            obj.min_mlu.max_single_tm_mlu,
            100.0 * obj.min_mlu.warm_hit_rate,
            obj.min_mlu.sparse_speedup,
        ));
    }
    let fleet = rwc_bench::perf::fleet_perf(scale);
    sink.result(&format!(
        "fleet analysis ({} links, {} threads): legacy {:.1} links/sec -> fused {:.1} links/sec \
         ({:.2}x, {:.1}x fewer allocated bytes, accumulators identical: {})",
        fleet.fused.links,
        fleet.n_threads,
        fleet.legacy.links_per_sec,
        fleet.fused.links_per_sec,
        fleet.speedup,
        fleet.alloc_ratio,
        fleet.accumulators_identical,
    ));
    sink.result(&format!(
        "generation only ({} links, 1 thread): legacy {:.2e} samples/sec -> batch {:.2e} \
         samples/sec ({:.2}x)",
        fleet.generation.legacy.links,
        fleet.generation.legacy.samples_per_sec,
        fleet.generation.batch.samples_per_sec,
        fleet.generation.speedup,
    ));
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        sink.error(&format!("cannot create {}: {e}", out_dir.display()));
        return ExitCode::FAILURE;
    }
    for (name, json) in
        [("BENCH_scenario.json", perf.to_json()), ("BENCH_fleet.json", fleet.to_json())]
    {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            sink.error(&format!("cannot write {}: {e}", path.display()));
            return ExitCode::FAILURE;
        }
        sink.progress(&format!("  -> {}", path.display()));
    }
    if let Some(baseline_path) = baseline {
        // Typed baseline loading: a missing artifact (exit 3) and a stale
        // or truncated schema (exit 4) are different CI escalations than a
        // genuine perf regression (exit 5).
        let baseline = match PerfBaseline::load(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                sink.error(&e.to_string());
                return ExitCode::from(cli::perf_exit_code(&e));
            }
        };
        if let Err(e) = perf.check_against_baseline(&baseline.scenario) {
            sink.error(&e);
            return ExitCode::from(cli::EXIT_PERF_REGRESSION);
        }
        if let Err(e) = fleet.check_against_baseline(&baseline.fleet) {
            sink.error(&e);
            return ExitCode::from(cli::EXIT_PERF_REGRESSION);
        }
        sink.result(&format!(
            "perf gate: {:.1} rounds/sec clears baseline floor {:.1}; \
             {:.1} links/sec clears baseline floor {:.1}",
            perf.incremental.rounds_per_sec,
            baseline.scenario.incremental.rounds_per_sec / 2.0,
            fleet.fused.links_per_sec,
            baseline.fleet.fused.links_per_sec / 2.0,
        ));
    }
    ExitCode::SUCCESS
}
