//! `rwc-serve`: the sharded controller daemon as a process.
//!
//! ```text
//! rwc-serve [--listen ADDR] [--quick|--full] [--legacy-analysis]
//!           [--gen-mode legacy|batch]
//!           [--shards N] [--queue-capacity N] [--shed oldest|reject]
//!           [--deadline-ms T] [--restart-budget N]
//!           [--checkpoint-dir DIR] [--checkpoint-every N]
//!           [--obs-json FILE] [--quiet]
//! ```
//!
//! Binds the minimal HTTP/1.1 surface (`/healthz`, `/readyz`, `/metrics`,
//! `/capacity/<link>`, `/ingest`, `/shutdown`) over a sharded daemon and
//! serves until `/shutdown` raises the SIGINT-equivalent flag, then
//! drains gracefully: shards flush their queues, final per-shard
//! checkpoints are written, and the merged pipeline + `serve.*` snapshot
//! goes to `--obs-json` in the same schema `repro --obs-json` emits.
//!
//! With `--checkpoint-dir`, an abrupt kill (`kill -9`, power loss) is
//! recoverable: restarting with the same flags resumes from the periodic
//! per-shard checkpoints and converges to the byte-identical result.
//!
//! Exit codes extend the [`rwc_bench::cli`] table: `0` clean drain, `2`
//! bad flags, `6` corrupt checkpoints, `10` serve failures (shard restart
//! budget exhausted with work stranded, socket trouble).

use rwc_bench::cli;
use rwc_obs::ConsoleSink;
use rwc_serve::{
    Daemon, HttpServer, ServeCheckpointConfig, ServeConfig, ServeError, ShedPolicy,
};
use rwc_telemetry::{AnalysisMode, GenMode};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(cli::EXIT_USAGE)
}

fn serve_error(sink: &ConsoleSink, err: &ServeError) -> ExitCode {
    sink.error(&err.to_string());
    ExitCode::from(cli::serve_exit_code(err))
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::small();
    let mut listen = "127.0.0.1:7117".to_string();
    let mut obs_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.fleet = ServeConfig::small().fleet,
            "--full" => cfg.fleet = ServeConfig::paper().fleet,
            "--legacy-analysis" => cfg.mode = AnalysisMode::Legacy,
            "--gen-mode" => match args.next().and_then(|m| m.parse::<GenMode>().ok()) {
                Some(m) => cfg.gen_mode = m,
                None => return usage_error("--gen-mode needs 'legacy' or 'batch'"),
            },
            "--quiet" => quiet = true,
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => return usage_error("--listen needs an address"),
            },
            "--shards" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.n_shards = n,
                _ => return usage_error("--shards needs a positive integer"),
            },
            "--queue-capacity" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.queue_capacity = n,
                _ => return usage_error("--queue-capacity needs a positive integer"),
            },
            "--shed" => match args.next().as_deref() {
                Some("oldest") => cfg.shed_policy = ShedPolicy::ShedOldest,
                Some("reject") => cfg.shed_policy = ShedPolicy::RejectNewest,
                _ => return usage_error("--shed needs 'oldest' or 'reject'"),
            },
            "--deadline-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => cfg.deadline = Some(Duration::from_millis(ms)),
                _ => return usage_error("--deadline-ms needs a positive integer"),
            },
            "--restart-budget" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => cfg.restart.budget = n,
                None => return usage_error("--restart-budget needs an integer"),
            },
            "--checkpoint-dir" => match args.next() {
                Some(dir) => {
                    let every =
                        cfg.checkpoint.as_ref().map_or(8, |c| c.every_links);
                    cfg.checkpoint = Some(ServeCheckpointConfig {
                        dir: PathBuf::from(dir),
                        every_links: every,
                    });
                }
                None => return usage_error("--checkpoint-dir needs a directory"),
            },
            "--checkpoint-every" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => match &mut cfg.checkpoint {
                    Some(ck) => ck.every_links = n,
                    None => {
                        return usage_error("--checkpoint-every needs --checkpoint-dir first")
                    }
                },
                _ => return usage_error("--checkpoint-every needs a positive integer"),
            },
            "--obs-json" => match args.next() {
                Some(file) => obs_path = Some(PathBuf::from(file)),
                None => return usage_error("--obs-json needs a file"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: rwc-serve [--listen ADDR] [--quick|--full] [--legacy-analysis] \
                     [--gen-mode legacy|batch] \
                     [--shards N] [--queue-capacity N] [--shed oldest|reject] \
                     [--deadline-ms T] [--restart-budget N] [--checkpoint-dir DIR] \
                     [--checkpoint-every N] [--obs-json FILE] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag: {other}")),
        }
    }

    let sink = ConsoleSink::new(quiet);
    let shutdown = Arc::new(AtomicBool::new(false));
    cfg.shutdown = Some(shutdown.clone());
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => return serve_error(&sink, &e),
    };
    let server = match HttpServer::bind(&listen) {
        Ok(s) => s,
        Err(e) => return serve_error(&sink, &e),
    };
    if let Some(addr) = server.local_addr() {
        sink.result(&format!(
            "rwc-serve listening on {addr} ({} links across {} shards)",
            daemon.n_links(),
            daemon.shard_statuses().len()
        ));
    }
    server.run(&daemon, &shutdown);
    sink.progress("shutdown flag raised; draining shards…");
    let report = match daemon.drain() {
        Ok(r) => r,
        Err(e) => return serve_error(&sink, &e),
    };
    sink.result(&format!(
        "drained: {} links completed, {} shed, {} restarts",
        report.links_completed,
        report.counter("serve.shed_oldest") + report.counter("serve.shed_deadline"),
        report.counter("serve.shard_restarts"),
    ));
    if let Some(path) = obs_path {
        let mut merged = report.pipeline_metrics.clone();
        merged.merge(&report.serve_metrics);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                sink.error(&format!("cannot create {}: {e}", dir.display()));
                return ExitCode::from(cli::EXIT_SERVE);
            }
        }
        if let Err(e) = std::fs::write(&path, merged.to_json() + "\n") {
            sink.error(&format!("cannot write {}: {e}", path.display()));
            return ExitCode::from(cli::EXIT_SERVE);
        }
        sink.result(&format!("observability snapshot -> {}", path.display()));
    }
    ExitCode::SUCCESS
}
