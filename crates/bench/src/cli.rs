//! Exit-code contract of the `repro` binary.
//!
//! CI jobs and wrapper scripts branch on *why* a run failed — a perf
//! regression needs a different escalation than a corrupted checkpoint or
//! a lost baseline artifact. Every failure class therefore gets a stable,
//! documented exit code, and the mapping from the typed errors
//! ([`RwcError`], [`HarnessError`], [`PerfError`]) lives here so the
//! binary and the tests agree on it.
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | generic failure (unknown experiment id, CSV write, exhausted chunk retries) |
//! | 2 | usage / configuration error (bad flags, invalid pipeline config) |
//! | 3 | perf baseline unreadable (missing file, I/O error) |
//! | 4 | perf baseline schema mismatch (truncated or stale format) |
//! | 5 | perf regression gate tripped |
//! | 6 | checkpoint corrupt, version-mismatched, or from a different sweep |
//! | 7 | TE solver failure (timeout, abort, infeasible) |
//! | 8 | hardware-path failure (BVT fault, quarantined link) |
//! | 9 | telemetry failure (horizon outruns traces, fault-plan trouble) |
//! | 10 | serve daemon failure (shard budget exhausted, socket trouble, drain failed) |

use crate::perf::PerfError;
use rwc_core::RwcError;
use rwc_harness::{CheckpointError, HarnessError};
use rwc_serve::ServeError;

/// Success.
pub const EXIT_OK: u8 = 0;
/// Generic failure without a more specific class.
pub const EXIT_GENERIC: u8 = 1;
/// Bad command line or invalid pipeline configuration.
pub const EXIT_USAGE: u8 = 2;
/// Perf baseline missing or unreadable.
pub const EXIT_BASELINE_IO: u8 = 3;
/// Perf baseline present but not parseable as the current schema.
pub const EXIT_BASELINE_SCHEMA: u8 = 4;
/// The perf regression gate tripped.
pub const EXIT_PERF_REGRESSION: u8 = 5;
/// Checkpoint corrupt, wrong version, or fingerprint mismatch.
pub const EXIT_CHECKPOINT: u8 = 6;
/// A TE solver failed (including watchdog-surfaced timeouts).
pub const EXIT_SOLVER: u8 = 7;
/// Hardware-path failure: BVT fault or quarantine refusal.
pub const EXIT_HARDWARE: u8 = 8;
/// Telemetry or fault-plan failure.
pub const EXIT_TELEMETRY: u8 = 9;
/// Serve daemon failure: shards unhealthy with work stranded, socket or
/// drain trouble.
pub const EXIT_SERVE: u8 = 10;

/// Exit code for a pipeline error.
pub fn rwc_exit_code(err: &RwcError) -> u8 {
    match err {
        RwcError::Te(_) | RwcError::Validation(_) => EXIT_SOLVER,
        RwcError::Bvt(_) | RwcError::Quarantined { .. } => EXIT_HARDWARE,
        RwcError::Config(_) => EXIT_USAGE,
        RwcError::Telemetry(_) | RwcError::FaultPlan(_) => EXIT_TELEMETRY,
    }
}

/// Exit code for a sweep-runtime error.
pub fn harness_exit_code(err: &HarnessError) -> u8 {
    match err {
        HarnessError::Checkpoint(CheckpointError::Io(_)) => EXIT_GENERIC,
        HarnessError::Checkpoint(_) => EXIT_CHECKPOINT,
        HarnessError::ChunkFailed { .. } => EXIT_GENERIC,
    }
}

/// Exit code for a perf-baseline error.
pub fn perf_exit_code(err: &PerfError) -> u8 {
    match err {
        PerfError::Io { .. } => EXIT_BASELINE_IO,
        PerfError::Schema { .. } => EXIT_BASELINE_SCHEMA,
    }
}

/// Exit code for a serve-daemon error. Configuration mistakes are usage
/// errors and checkpoint trouble keeps its class; everything the daemon
/// itself caused (shard failure, sockets, shutdown races) is `10`.
pub fn serve_exit_code(err: &ServeError) -> u8 {
    match err {
        ServeError::Config(_) => EXIT_USAGE,
        ServeError::Checkpoint(CheckpointError::Io(_)) => EXIT_SERVE,
        ServeError::Checkpoint(_) => EXIT_CHECKPOINT,
        ServeError::Io(_) | ServeError::ShardFailed { .. } | ServeError::ShuttingDown => {
            EXIT_SERVE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_te::TeError;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let codes = [
            EXIT_OK,
            EXIT_GENERIC,
            EXIT_USAGE,
            EXIT_BASELINE_IO,
            EXIT_BASELINE_SCHEMA,
            EXIT_PERF_REGRESSION,
            EXIT_CHECKPOINT,
            EXIT_SOLVER,
            EXIT_HARDWARE,
            EXIT_TELEMETRY,
            EXIT_SERVE,
        ];
        for (i, a) in codes.iter().enumerate() {
            assert_eq!(*a, i as u8, "codes are consecutive and stable");
        }
    }

    #[test]
    fn rwc_variants_map_to_their_classes() {
        let te = RwcError::Te(TeError::SolverTimeout {
            algorithm: "exact-lp-warm",
            detail: "watchdog".into(),
        });
        assert_eq!(rwc_exit_code(&te), EXIT_SOLVER);
        assert_eq!(rwc_exit_code(&RwcError::Config("x".into())), EXIT_USAGE);
        assert_eq!(rwc_exit_code(&RwcError::Telemetry("x".into())), EXIT_TELEMETRY);
    }

    #[test]
    fn harness_variants_map_to_their_classes() {
        let corrupt = HarnessError::Checkpoint(CheckpointError::Corrupt("bits".into()));
        assert_eq!(harness_exit_code(&corrupt), EXIT_CHECKPOINT);
        let version = HarnessError::Checkpoint(CheckpointError::VersionMismatch {
            found: 2,
            expected: 1,
        });
        assert_eq!(harness_exit_code(&version), EXIT_CHECKPOINT);
        let config = HarnessError::Checkpoint(CheckpointError::ConfigMismatch("seed".into()));
        assert_eq!(harness_exit_code(&config), EXIT_CHECKPOINT);
        let io = HarnessError::Checkpoint(CheckpointError::Io("enoent".into()));
        assert_eq!(harness_exit_code(&io), EXIT_GENERIC);
        let failed =
            HarnessError::ChunkFailed { chunk: 3, attempts: 3, message: "boom".into() };
        assert_eq!(harness_exit_code(&failed), EXIT_GENERIC);
    }

    #[test]
    fn serve_variants_map_to_their_classes() {
        assert_eq!(serve_exit_code(&ServeError::Config("zero shards".into())), EXIT_USAGE);
        assert_eq!(serve_exit_code(&ServeError::Io("bind".into())), EXIT_SERVE);
        assert_eq!(serve_exit_code(&ServeError::ShuttingDown), EXIT_SERVE);
        let failed = ServeError::ShardFailed { shard: 1, message: "boom".into() };
        assert_eq!(serve_exit_code(&failed), EXIT_SERVE);
        let corrupt = ServeError::Checkpoint(CheckpointError::Corrupt("bits".into()));
        assert_eq!(serve_exit_code(&corrupt), EXIT_CHECKPOINT);
        let io = ServeError::Checkpoint(CheckpointError::Io("enoent".into()));
        assert_eq!(serve_exit_code(&io), EXIT_SERVE);
    }

    #[test]
    fn perf_variants_map_to_their_classes() {
        let io = PerfError::Io { path: "x".into(), message: "enoent".into() };
        assert_eq!(perf_exit_code(&io), EXIT_BASELINE_IO);
        let schema = PerfError::Schema { path: "x".into(), message: "truncated".into() };
        assert_eq!(perf_exit_code(&schema), EXIT_BASELINE_SCHEMA);
    }
}
