//! Design-choice ablations (beyond the paper's figures).
//!
//! 1. **Penalty policy**: free vs paper-100 vs current-traffic vs unit
//!    weights — how many upgrades each triggers and what churn costs;
//! 2. **Hysteresis margin**: reconfiguration count of the controller on a
//!    noisy link as the upgrade margin grows (flap suppression);
//! 3. **BVT procedure**: throughput lost during consistent updates under
//!    legacy vs efficient reconfiguration.

use crate::parallel::parallel_arms;
use crate::{Report, Scale};
use rwc_core::controller::{Controller, ControllerConfig};
use rwc_core::{augment, translate, AugmentConfig, PenaltyPolicy};
use rwc_te::demand::DemandMatrix;
use rwc_te::TeSolver;
use rwc_te::updates::{plan_capacity_changes, CapacityChange};
use rwc_te::TeAlgorithm;
use rwc_topology::builders;
use rwc_topology::wan::LinkId;
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::{Db, Gbps};
use std::fmt::Write as _;

fn fig7_under_pressure() -> (rwc_topology::wan::WanTopology, DemandMatrix) {
    let mut wan = builders::fig7_example();
    for (id, _) in wan.clone().links() {
        wan.set_snr(id, Db(13.0)); // everything upgradable
    }
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(125.0), rwc_te::demand::Priority::Elastic);
    dm.add(c, d, Gbps(125.0), rwc_te::demand::Priority::Elastic);
    (wan, dm)
}

/// Penalty-policy ablation rows: `(name, upgrades, effective_penalty)`.
pub fn penalty_ablation() -> Vec<(&'static str, usize, f64)> {
    let (wan, dm) = fig7_under_pressure();
    let policies: Vec<(&str, PenaltyPolicy)> = vec![
        ("free", PenaltyPolicy::Uniform(0.0)),
        ("paper-100", PenaltyPolicy::paper_example()),
        ("current-traffic", PenaltyPolicy::CurrentTraffic),
        ("unit-weights", PenaltyPolicy::UnitWeights),
    ];
    let mut rows = Vec::new();
    for (name, penalty) in policies {
        let cfg = AugmentConfig { penalty, ..Default::default() };
        // Current traffic: both demand links loaded at 100 G.
        let traffic = vec![100.0, 100.0, 0.0, 0.0, 0.0];
        let aug = augment(&wan, &dm, &cfg, &traffic);
        let sol = TeSolver::builder().build().expect("default TE solver").solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).expect("experiment translation on solver output");
        rows.push((name, tr.upgrades.len(), tr.effective_penalty));
    }
    rows
}

/// Hysteresis ablation: reconfigurations of one noisy link over `ticks`
/// telemetry ticks for each upgrade margin.
pub fn hysteresis_ablation(margins_db: &[f64], ticks: usize) -> Vec<(f64, usize)> {
    // Every grid cell builds its own topology, controller, and seeded
    // rng, so the cells run concurrently; results return in margin order.
    let arms = margins_db
        .iter()
        .map(|&margin| {
            Box::new(move || {
                let mut wan = rwc_topology::WanTopology::new();
            let a = wan.add_node("A", None);
            let b = wan.add_node("B", None);
            wan.add_link(a, b, 500.0);
            let mut controller = Controller::new(
                ControllerConfig {
                    upgrade_margin: Db(margin),
                    dwell: SimDuration::ZERO, // isolate the margin's effect
                    ..ControllerConfig::default()
                },
                1,
                13,
            );
            // SNR wobbling around the 200 G threshold (12.5 dB).
            let mut rng = Xoshiro256::seed_from_u64(17);
            let mut changes = 0usize;
            for i in 0..ticks {
                let snr = Db(12.5 + rng.normal(0.0, 0.4));
                let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
                let report = controller.sweep(&mut wan, &[(LinkId(0), Some(snr))], now);
                changes += report.changes.len();
            }
                (margin, changes)
            }) as Box<dyn FnOnce() -> (f64, usize) + Send>
        })
        .collect();
    parallel_arms(arms)
}

/// Reactive vs predictive controller on a slowly decaying link: at-risk
/// ticks (samples where the configured rate exceeds what the SNR
/// supports) per forecast horizon. Returns `(horizon, reactive_risk,
/// predictive_risk)` rows.
pub fn predictive_ablation(horizons: &[u64]) -> Vec<(u64, usize, usize)> {
    use rwc_core::controller::Controller;
    use rwc_core::predictive::{at_risk_ticks, PredictiveConfig, PredictiveController};
    use rwc_optics::ModulationTable;

    let table = ModulationTable::paper_default();
    let readings: Vec<Db> = (0..80).map(|i| Db(14.0 - 0.04 * i as f64)).collect();
    // One arm per horizon; each arm replays both controllers over shared
    // read-only readings. Results return in horizon order.
    let arms = horizons
        .iter()
        .map(|&h| {
            let table = &table;
            let readings = &readings;
            Box::new(move || {
                let run = |predictive: bool| -> usize {
                let mut wan = rwc_topology::WanTopology::new();
                let a = wan.add_node("A", None);
                let b = wan.add_node("B", None);
                wan.add_link(a, b, 500.0);
                wan.set_modulation(LinkId(0), rwc_optics::Modulation::Dp16Qam200);
                let mut reactive = Controller::new(ControllerConfig::default(), 1, 3);
                let mut pc = PredictiveController::new(
                    PredictiveConfig { horizon_ticks: h, ..Default::default() },
                    1,
                    3,
                );
                let mut risk = 0;
                for (i, &snr) in readings.iter().enumerate() {
                    let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
                    risk += at_risk_ticks(&wan, table, &[(LinkId(0), snr)]);
                    if predictive {
                        pc.sweep(&mut wan, &[(LinkId(0), snr)], now);
                    } else {
                        reactive.sweep(&mut wan, &[(LinkId(0), Some(snr))], now);
                    }
                }
                risk
            };
                (h, run(false), run(true))
            }) as Box<dyn FnOnce() -> (u64, usize, usize) + Send>
        })
        .collect();
    parallel_arms(arms)
}

/// BVT-procedure ablation: interim throughput gap of a consistent update
/// under hitless (efficient) vs draining (legacy) reconfiguration.
pub fn procedure_ablation() -> (f64, f64) {
    let (wan, dm) = fig7_under_pressure();
    let change = CapacityChange {
        link: LinkId(0),
        to: rwc_optics::Modulation::Dp16Qam200,
    };
    let algo = rwc_te::swan::SwanTe::default();
    let hitless = plan_capacity_changes(&wan, &dm, &[change], &algo, true, None);
    let legacy = plan_capacity_changes(&wan, &dm, &[change], &algo, false, None);
    (hitless.interim_throughput_gap, legacy.interim_throughput_gap)
}

/// Runs all ablations.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new("ablation", "design-choice ablations");

    report.line("— penalty policy (Fig. 7 scenario, exact LP) —".to_string());
    let mut csv = String::from("policy,upgrades,effective_penalty\n");
    for (name, upgrades, penalty) in penalty_ablation() {
        report.line(format!(
            "{name:<16} upgrades={upgrades}  effective penalty={penalty:.0}"
        ));
        let _ = writeln!(csv, "{name},{upgrades},{penalty:.1}");
    }
    report.csv("ablation_penalty.csv", csv);

    report.line("— hysteresis margin vs reconfigurations (noisy link) —".to_string());
    let ticks = match scale {
        Scale::Quick => 2_000,
        Scale::Full | Scale::Scaled(_) => 20_000,
    };
    let mut csv = String::from("margin_db,reconfigurations\n");
    for (margin, changes) in hysteresis_ablation(&[0.0, 0.25, 0.5, 1.0, 1.5, 2.0], ticks) {
        report.line(format!("margin {margin:>4.2} dB → {changes} reconfigurations"));
        let _ = writeln!(csv, "{margin},{changes}");
    }
    report.csv("ablation_hysteresis.csv", csv);

    report.line("— BVT procedure vs interim throughput loss —".to_string());
    let (hitless_gap, legacy_gap) = procedure_ablation();
    report.line(format!(
        "interim throughput gap: efficient/hitless {hitless_gap:.0} G vs legacy/drain \
         {legacy_gap:.0} G"
    ));

    report.line("— reactive vs predictive controller (at-risk ticks on a decaying link) —"
        .to_string());
    let mut csv = String::from("horizon_ticks,reactive_risk,predictive_risk\n");
    for (h, reactive, predictive) in predictive_ablation(&[1, 2, 4, 8]) {
        report.line(format!(
            "horizon {h} ticks: reactive {reactive} at-risk ticks → predictive {predictive}"
        ));
        let _ = writeln!(csv, "{h},{reactive},{predictive}");
    }
    report.csv("ablation_predictive.csv", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_penalty_upgrades_most() {
        let rows = penalty_ablation();
        let by = |name: &str| rows.iter().find(|r| r.0 == name).unwrap();
        // The paper's penalty consolidates to a single upgrade; unit
        // weights force both links up; free is unconstrained.
        assert_eq!(by("paper-100").1, 1, "{rows:?}");
        assert_eq!(by("unit-weights").1, 2, "{rows:?}");
        assert!(by("free").1 >= 1);
        assert_eq!(by("current-traffic").1, 1, "{rows:?}");
    }

    #[test]
    fn hysteresis_monotonically_suppresses_flaps() {
        let rows = hysteresis_ablation(&[0.0, 1.0, 2.0], 2_000);
        assert!(rows[0].1 > rows[1].1, "{rows:?}");
        assert!(rows[1].1 >= rows[2].1, "{rows:?}");
        // A 2 dB margin on a σ=0.4 wobble nearly eliminates changes.
        assert!(rows[2].1 < rows[0].1 / 4, "{rows:?}");
    }

    #[test]
    fn legacy_drain_loses_more_interim_throughput() {
        let (hitless, legacy) = procedure_ablation();
        assert!(legacy > hitless, "legacy {legacy} vs hitless {hitless}");
    }

    #[test]
    fn prediction_reduces_at_risk_exposure() {
        for (h, reactive, predictive) in predictive_ablation(&[2, 4]) {
            assert!(
                predictive <= reactive,
                "horizon {h}: predictive {predictive} > reactive {reactive}"
            );
        }
        // With a decent horizon, exposure goes to zero.
        let rows = predictive_ablation(&[4]);
        assert_eq!(rows[0].2, 0, "{rows:?}");
        assert!(rows[0].1 >= 1, "reactive must incur some exposure: {rows:?}");
    }
}
