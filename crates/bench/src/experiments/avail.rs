//! §2.2's availability argument, replayed end to end.
//!
//! Two views:
//!
//! 1. **Ticket replay** — every failure event whose SNR floor clears some
//!    rung becomes a capacity flap instead of an outage (the paper: ≥25%
//!    of failures avoidable at 50 G alone);
//! 2. **Controller replay** — the run/walk/crawl controller consumes a
//!    fleet's raw SNR traces tick by tick and we count how many
//!    fixed-capacity failures it converts into flaps, plus the downtime it
//!    spends reconfiguring under the legacy vs efficient BVT procedure.

use crate::parallel::parallel_arms;
use crate::{Report, Scale};
use rwc_core::controller::{Controller, ControllerConfig};
use rwc_failures::availability::AvailabilityReport;
use rwc_failures::TicketGenerator;
use rwc_optics::bvt::ReconfigProcedure;
use rwc_optics::ModulationTable;
use rwc_telemetry::FleetGenerator;
use rwc_topology::wan::LinkId;
use rwc_topology::WanTopology;
use rwc_util::time::SimDuration;
use rwc_util::units::{Db, Gbps};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("avail", "availability: failures converted to capacity flaps");

    // --- Ticket replay ------------------------------------------------
    let tickets = TicketGenerator::new(scale.tickets()).generate();
    let table = ModulationTable::paper_default();
    let replay = AvailabilityReport::replay(&tickets, &table, Gbps(100.0));
    report.line(format!(
        "ticket replay: {} events — {} hard outages, {} converted to flaps ({:.1}%; paper ≥25%)",
        replay.total_events,
        replay.hard_outages,
        replay.converted_to_flaps,
        100.0 * replay.events_avoided_fraction()
    ));
    report.line(format!(
        "outage time: binary {:.0} h → dynamic {:.0} h ({:.1}% of outage time avoided); \
         capacity delivered during events: {:.1}% of static rate",
        replay.binary_outage.as_hours_f64(),
        replay.dynamic_outage.as_hours_f64(),
        100.0 * replay.outage_time_avoided_fraction(),
        100.0 * replay.delivered_fraction_during_events
    ));
    let window = scale.tickets().window;
    let n_links = scale.tickets().n_links;
    report.line(format!(
        "fleet availability over the window: binary {:.5} → dynamic {:.5}",
        replay.binary_availability(window, n_links),
        replay.dynamic_availability(window, n_links)
    ));
    let binary_rel =
        rwc_failures::reliability::binary_reliability(&tickets, window, n_links);
    let dynamic_rel =
        rwc_failures::reliability::dynamic_reliability(&tickets, &table, window, n_links);
    report.line(format!(
        "per-link reliability: MTBF {} / MTTR {} ({:.2} nines) binary → MTBF {} / MTTR {} \
         ({:.2} nines) dynamic",
        binary_rel.mtbf,
        binary_rel.mttr,
        rwc_failures::reliability::nines(binary_rel.availability),
        dynamic_rel.mtbf,
        dynamic_rel.mttr,
        rwc_failures::reliability::nines(dynamic_rel.availability),
    ));

    // --- Controller replay ---------------------------------------------
    let mut fleet_cfg = scale.fleet();
    fleet_cfg.n_fibers = fleet_cfg.n_fibers.min(2); // a 2-fiber sample is plenty
    let gen = super::fleet_generator(fleet_cfg);
    let procedures = [ReconfigProcedure::Efficient, ReconfigProcedure::Legacy];
    // Each procedure replays the same traces independently — run both
    // arms concurrently; results come back in `procedures` order.
    let replays = parallel_arms(
        procedures
            .iter()
            .map(|&procedure| {
                let gen = &gen;
                Box::new(move || controller_replay(gen, procedure))
                    as Box<dyn FnOnce() -> _ + Send>
            })
            .collect(),
    );
    for (procedure, (flaps, downs, downtime)) in procedures.into_iter().zip(replays) {
        report.line(format!(
            "controller replay ({} links, {:?} BVT): {} degradations ridden out as flaps, \
             {} hard downs, {} total reconfiguration downtime",
            gen.n_links(),
            procedure,
            flaps,
            downs,
            downtime
        ));
    }
    report.line(
        "paper conclusion: driving links slower instead of failing them improves availability"
            .to_string(),
    );
    report
}

/// Replays a fleet's SNR traces through the controller on a star topology
/// (one spoke per telemetry link). Returns (flaps, hard downs, downtime).
pub fn controller_replay(
    gen: &FleetGenerator,
    procedure: ReconfigProcedure,
) -> (usize, usize, SimDuration) {
    // Topology: hub-and-spoke so LinkId i ↔ telemetry link i.
    let mut wan = WanTopology::new();
    let hub = wan.add_node("HUB", None);
    for i in 0..gen.n_links() {
        let n = wan.add_node(format!("S{i}"), None);
        wan.add_link(hub, n, 500.0);
    }
    let mut controller = Controller::new(
        ControllerConfig { procedure, ..ControllerConfig::default() },
        wan.n_links(),
        9,
    );
    let mut flaps = 0usize;
    let mut downs = 0usize;
    let mut downtime = SimDuration::ZERO;

    // Stream link by link to keep memory flat; sweep per tick within the
    // link (links are independent in a star).
    for link_id in 0..gen.n_links() {
        let link = gen.link(link_id);
        for (t, snr) in link.trace.iter() {
            let report =
                controller.sweep(&mut wan, &[(LinkId(link_id), Some(Db(snr.value())))], t);
            flaps += report.failures_avoided;
            downs += report.went_down.len();
            downtime += report.downtime;
        }
    }
    (flaps, downs, downtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_replay_quarter_avoided() {
        let tickets = TicketGenerator::new(Scale::Quick.tickets()).generate();
        let replay = AvailabilityReport::replay(
            &tickets,
            &ModulationTable::paper_default(),
            Gbps(100.0),
        );
        let frac = replay.events_avoided_fraction();
        assert!((0.15..0.45).contains(&frac), "avoided={frac}");
        assert!(replay.dynamic_outage < replay.binary_outage);
    }

    #[test]
    fn controller_converts_failures() {
        let mut cfg = Scale::Quick.fleet();
        cfg.n_fibers = 1;
        cfg.wavelengths_per_fiber = 10;
        let gen = FleetGenerator::new(cfg);
        let (flaps, _downs, downtime) =
            controller_replay(&gen, ReconfigProcedure::Efficient);
        assert!(flaps > 0, "some degradations must be ridden out");
        assert!(downtime > SimDuration::ZERO);
    }

    #[test]
    fn legacy_costs_more_downtime() {
        let mut cfg = Scale::Quick.fleet();
        cfg.n_fibers = 1;
        cfg.wavelengths_per_fiber = 8;
        let gen = FleetGenerator::new(cfg);
        let (_, _, efficient) = controller_replay(&gen, ReconfigProcedure::Efficient);
        let (_, _, legacy) = controller_replay(&gen, ReconfigProcedure::Legacy);
        assert!(
            legacy > efficient * 100,
            "legacy {legacy} must dwarf efficient {efficient}"
        );
    }
}
