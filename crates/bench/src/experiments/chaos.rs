//! The `repro chaos` experiment: a seeded fault-injection campaign that
//! proves the crash-safe sweep runtime holds its promises end to end.
//!
//! Five scenarios run against the same reduced fleet, all deterministic
//! in the campaign seed:
//!
//! 1. **reference** — a clean sweep, the byte-identity oracle.
//! 2. **worker panics** — chaos-poisoned chunks panic on their first
//!    attempt; the sweep must retry and still match the reference bytes.
//! 3. **kill + resume** — the run is killed mid-sweep after a checkpoint,
//!    then resumed (for two different thread counts); each resumed result
//!    must match the reference bytes, accumulator and metrics both.
//! 4. **corrupted checkpoints** — the checkpoint file is bit-flipped,
//!    truncated, and version-bumped; every mutation must be rejected with
//!    a typed error.
//! 5. **stalled solve** — a TE round's warm solve is made pathologically
//!    slow; the watchdog must abort it into a typed timeout instead of
//!    hanging.
//!
//! Scenario verdicts land in the report (and CSV) as `pass`/`fail`, and
//! everything is surfaced through the installed observer as `harness.*`
//! counters — the chaos-smoke CI job asserts on both.

use crate::{Report, Scale};
use rwc_harness::{
    chaos as chaos_mut, checkpoint, ChaosPlan, CheckpointConfig, CheckpointError, ExecutorConfig,
    SweepOutcome, SweepSpec,
};
use rwc_obs::MetricsSnapshot;
use rwc_optics::ModulationTable;
use rwc_te::TeSolver;
use rwc_te::TeAlgorithm;
use rwc_te::TeError;
use rwc_telemetry::FleetGenerator;
use rwc_util::time::SimDuration;
use std::fmt::Write as _;
use std::time::Duration;

/// Campaign seed: every injection (panic chunks, kill points, corruption
/// offsets) derives from it, so `repro chaos` is reproducible.
const CAMPAIGN_SEED: u64 = 0xC4A0;

fn chaos_fleet(scale: Scale) -> FleetGenerator {
    // A reduced fleet regardless of scale: the campaign exercises the
    // runtime, not the telemetry statistics, so 40 links × 30 days is
    // plenty of chunks while staying CI-fast.
    let mut cfg = scale.fleet();
    cfg.n_fibers = cfg.n_fibers.min(4);
    cfg.wavelengths_per_fiber = cfg.wavelengths_per_fiber.min(10);
    cfg.horizon = SimDuration::from_days(30);
    super::fleet_generator(cfg)
}

struct Verdict {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn spec<'a>(
    gen: &'a FleetGenerator,
    table: &'a ModulationTable,
    n_threads: usize,
) -> SweepSpec<'a> {
    SweepSpec {
        gen,
        table,
        mode: super::analysis_mode(),
        n_threads,
        collect_metrics: true,
    }
}

fn completed_bytes(outcome: SweepOutcome) -> (String, Option<String>) {
    match outcome {
        SweepOutcome::Completed(r) => (
            serde_json::to_string(&r.accumulator).expect("accumulator serializes"),
            r.metrics.as_ref().map(MetricsSnapshot::to_json),
        ),
        SweepOutcome::Killed { .. } => panic!("sweep killed without a kill plan"),
    }
}

fn harness_cfg(checkpoint: Option<CheckpointConfig>, chaos: Option<ChaosPlan>) -> ExecutorConfig {
    ExecutorConfig {
        checkpoint,
        chaos,
        observer: super::observer(),
        ..ExecutorConfig::default()
    }
}

/// Scenario 2: poisoned chunks panic, the sweep retries and matches.
fn panic_scenario(
    gen: &FleetGenerator,
    table: &ModulationTable,
    reference: &(String, Option<String>),
) -> Verdict {
    let n_chunks = gen.n_links().div_ceil(rwc_harness::chunk_size_for(gen.n_links(), 3)) as u64;
    let plan = ChaosPlan::new(CAMPAIGN_SEED).with_panics(2, n_chunks);
    let chunks = plan.panic_chunks.clone();
    match rwc_harness::run_fleet_sweep(&spec(gen, table, 3), &harness_cfg(None, Some(plan)), None)
    {
        Ok(outcome) => {
            let bytes = completed_bytes(outcome);
            let pass = bytes == *reference;
            Verdict {
                name: "worker_panics",
                pass,
                detail: format!(
                    "poisoned chunks {chunks:?}: retried, result {} reference",
                    if pass { "matches" } else { "DIVERGED from" }
                ),
            }
        }
        Err(e) => Verdict {
            name: "worker_panics",
            pass: false,
            detail: format!("sweep failed outright: {e}"),
        },
    }
}

/// Scenario 3: kill mid-sweep, resume under `resume_threads`, compare.
fn kill_resume_scenario(
    gen: &FleetGenerator,
    table: &ModulationTable,
    reference: &(String, Option<String>),
    kill_threads: usize,
    resume_threads: usize,
) -> Result<Verdict, String> {
    let path = std::env::temp_dir().join(format!(
        "rwc_chaos_resume_{}_{kill_threads}_{resume_threads}.json",
        std::process::id()
    ));
    let ckpt = CheckpointConfig { path: path.clone(), every_chunks: 1 };
    let plan = ChaosPlan::new(CAMPAIGN_SEED ^ 1).with_kill_after(2);
    let killed = rwc_harness::run_fleet_sweep(
        &spec(gen, table, kill_threads),
        &harness_cfg(Some(ckpt.clone()), Some(plan)),
        None,
    )
    .map_err(|e| format!("killed run failed: {e}"))?;
    let completed_at_kill = match killed {
        SweepOutcome::Killed { completed_chunks, .. } => completed_chunks,
        SweepOutcome::Completed(_) => return Err("kill never fired".into()),
    };
    let cp = checkpoint::load(&path).map_err(|e| format!("checkpoint unreadable: {e}"))?;
    let resumed = rwc_harness::run_fleet_sweep(
        &spec(gen, table, resume_threads),
        &harness_cfg(None, None),
        Some(&cp),
    )
    .map_err(|e| format!("resume failed: {e}"))?;
    std::fs::remove_file(&path).ok();
    let bytes = completed_bytes(resumed);
    let pass = bytes == *reference;
    Ok(Verdict {
        name: if kill_threads == resume_threads {
            "kill_resume_same_threads"
        } else {
            "kill_resume_cross_threads"
        },
        pass,
        detail: format!(
            "killed at {completed_at_kill} chunks ({kill_threads} threads), resumed \
             ({resume_threads} threads): {}",
            if pass { "byte-identical to reference" } else { "DIVERGED from reference" }
        ),
    })
}

/// Scenario 4: every corruption of a real checkpoint file is rejected.
fn corruption_scenario(gen: &FleetGenerator, table: &ModulationTable) -> Result<Verdict, String> {
    let path =
        std::env::temp_dir().join(format!("rwc_chaos_corrupt_{}.json", std::process::id()));
    let ckpt = CheckpointConfig { path: path.clone(), every_chunks: 1 };
    rwc_harness::run_fleet_sweep(&spec(gen, table, 2), &harness_cfg(Some(ckpt), None), None)
        .map_err(|e| format!("seed sweep failed: {e}"))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read back: {e}"))?;
    std::fs::remove_file(&path).ok();
    checkpoint::load_str(&text).map_err(|e| format!("pristine checkpoint rejected: {e}"))?;

    let mut rejected = 0usize;
    let mut detail = String::new();
    for (label, mutated) in [
        ("bit_flip", chaos_mut::corrupt_bit_flip(&text, CAMPAIGN_SEED)),
        ("truncation", chaos_mut::corrupt_truncate(&text, CAMPAIGN_SEED)),
        ("version_bump", chaos_mut::corrupt_version_bump(&text)),
    ] {
        match checkpoint::load_str(&mutated) {
            Err(CheckpointError::VersionMismatch { .. }) if label == "version_bump" => {
                rejected += 1;
                let _ = write!(detail, "{label}: rejected (version); ");
            }
            Err(e) => {
                rejected += 1;
                let _ = write!(detail, "{label}: rejected ({}); ", error_class(&e));
            }
            Ok(_) => {
                let _ = write!(detail, "{label}: ACCEPTED (bug!); ");
            }
        }
        super::observer().incr("harness.checkpoints_rejected", 1);
    }
    Ok(Verdict {
        name: "corrupted_checkpoints",
        pass: rejected == 3,
        detail: detail.trim_end_matches("; ").to_string(),
    })
}

fn error_class(e: &CheckpointError) -> &'static str {
    match e {
        CheckpointError::Io(_) => "io",
        CheckpointError::Corrupt(_) => "checksum/parse",
        CheckpointError::VersionMismatch { .. } => "version",
        CheckpointError::ConfigMismatch(_) => "fingerprint",
    }
}

/// Scenario 5: a forced-slow warm solve is aborted by the watchdog into a
/// typed timeout, and recovers once the chaos delay is lifted.
fn watchdog_scenario() -> Verdict {
    use rwc_te::demand::{DemandMatrix, Priority};
    use rwc_te::problem::TeProblem;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").expect("fig7 node");
    let b = wan.node_by_name("B").expect("fig7 node");
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(300.0), Priority::Elastic);
    let problem = TeProblem::from_wan(&wan, &dm);

    let te = TeSolver::builder()
        .observer(super::observer())
        .solve_timeout(Duration::from_millis(1))
        .build()
        .expect("default TE solver");
    te.set_pivot_delay(Some(Duration::from_millis(10)));
    let aborted = matches!(te.try_solve(&problem), Err(TeError::SolverTimeout { .. }));
    // Lift the chaos delay: the very same solver must recover.
    te.set_pivot_delay(None);
    te.set_solve_timeout(None);
    let recovered = te.try_solve(&problem).is_ok();
    Verdict {
        name: "stalled_solve_watchdog",
        pass: aborted && recovered,
        detail: format!(
            "forced-slow solve {}; after disarming, solver {}",
            if aborted { "aborted as SolverTimeout" } else { "did NOT abort (bug!)" },
            if recovered { "recovered" } else { "did NOT recover (bug!)" }
        ),
    }
}

/// Runs the chaos campaign.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new("chaos", "chaos harness: crash-safe sweep runtime under fault injection");
    let gen = chaos_fleet(scale);
    let table = ModulationTable::paper_default();
    report.line(format!(
        "fleet: {} links, seed {:#x}, campaign seed {CAMPAIGN_SEED:#x}",
        gen.n_links(),
        gen.config().seed
    ));

    let reference = completed_bytes(
        rwc_harness::run_fleet_sweep(&spec(&gen, &table, 2), &harness_cfg(None, None), None)
            .expect("reference sweep must succeed"),
    );

    let mut verdicts = vec![panic_scenario(&gen, &table, &reference)];
    for (kill_threads, resume_threads) in [(2, 2), (3, 5)] {
        verdicts.push(
            kill_resume_scenario(&gen, &table, &reference, kill_threads, resume_threads)
                .unwrap_or_else(|detail| Verdict {
                    name: "kill_resume",
                    pass: false,
                    detail,
                }),
        );
    }
    verdicts.push(corruption_scenario(&gen, &table).unwrap_or_else(|detail| Verdict {
        name: "corrupted_checkpoints",
        pass: false,
        detail,
    }));
    verdicts.push(watchdog_scenario());

    let mut csv = String::from("scenario,pass\n");
    let mut failed = 0usize;
    for v in &verdicts {
        report.line(format!("{:<26} {}  — {}", v.name, if v.pass { "pass" } else { "FAIL" }, v.detail));
        let _ = writeln!(csv, "{},{}", v.name, v.pass);
        if !v.pass {
            failed += 1;
        }
    }
    report.line(if failed == 0 {
        format!("chaos campaign: all {} scenarios pass", verdicts.len())
    } else {
        format!("chaos campaign: {failed}/{} scenarios FAILED", verdicts.len())
    });
    report.csv("chaos_verdicts.csv", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_campaign_passes_clean() {
        let r = run(Scale::Quick);
        let rendered = r.render();
        assert!(rendered.contains("all 5 scenarios pass"), "report:\n{rendered}");
        assert!(!rendered.contains("FAIL"), "report:\n{rendered}");
    }
}
