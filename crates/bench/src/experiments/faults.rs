//! Fault-injection campaign: the whole BVT → controller → TE pipeline
//! under a seeded fault plan.
//!
//! The robustness claim behind the paper's §2.2 availability argument is
//! that degradations — including *equipment* misbehaviour, not just SNR
//! drift — should surface as capacity flaps, not outages. This experiment
//! schedules transceiver faults (relock failures, stuck lasers, MDIO
//! timeouts, register corruption), telemetry faults (drops, freezes, SNR
//! spikes) and TE solver faults over a multi-day run, then reports how
//! much of the resulting imperfection the pipeline rode out as degraded
//! capacity versus hard downtime.

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_core::prelude::*;
use rwc_faults::{FaultPlan, FaultPlanConfig};
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::swan::SwanTe;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;

fn build(scale: Scale) -> (Scenario, SimDuration, FaultPlan) {
    build_arm(scale, false)
}

/// Builds the fault campaign with the round engine pinned to either the
/// incremental path or the `full_rebuild` escape hatch — the two must
/// produce byte-identical reports (see the `incremental` integration
/// test), so both are exposed.
pub fn build_arm(scale: Scale, full_rebuild: bool) -> (Scenario, SimDuration, FaultPlan) {
    let wan = builders::fig7_example();
    let n_links = wan.n_links();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let horizon = match scale {
        Scale::Quick => SimDuration::from_days(7),
        Scale::Full | Scale::Scaled(_) => SimDuration::from_days(60),
    };
    // Marginal baselines: SNR regularly crosses rung thresholds, so the
    // fault plan lands on a fleet that is already walking and crawling.
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 12.6,
        fiber_baseline_sd_db: 0.4,
        wavelength_jitter_sd_db: 0.6,
        ..FleetConfig::paper()
    };
    let plan = FaultPlanConfig {
        n_links,
        horizon,
        bvt_rate_per_link_day: 2.0,
        telemetry_rate_per_link_day: 1.0,
        te_rate_per_day: 1.0,
        // Long armed windows so flaky hardware overlaps the (hourly at
        // best) reconfiguration attempts.
        bvt_mean_duration: SimDuration::from_hours(8),
        seed: 0xFA_017,
        ..FaultPlanConfig::default()
    }
    .generate();
    let config = ScenarioConfig {
        fault_plan: Some(plan.clone()),
        full_rebuild,
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .observer(super::observer())
        .build()
        .expect("fault campaign wiring is valid");
    (scenario, horizon, plan)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("faults", "fault injection: degradations ridden out vs outages");
    let (mut scenario, horizon, plan) = build(scale);
    let (bvt_events, tel_events, te_events, optical_events) = plan.class_counts();
    let result = scenario
        .run(horizon, &SwanTe::default())
        .expect("fault campaign horizon fits its telemetry");

    report.line(format!(
        "injected over {horizon}: {bvt_events} BVT faults, {tel_events} telemetry faults, \
         {te_events} TE faults, {optical_events} optical faults",
    ));
    report.line(format!(
        "handled: {} SNR degradations ridden as flaps, {} retries, {} TE fallback rounds, \
         {} stale-telemetry holds, {} quarantines",
        result.flaps, result.retries, result.te_fallbacks, result.stale_holds,
        result.quarantines
    ));
    report.line(format!(
        "unhandled: {} hard downs, {} changes failed after retries",
        result.hard_downs, result.failed_changes
    ));
    report.line(format!(
        "link-ticks: {} degraded-but-carrying vs {} outage of {} total — {:.1}% of imperfect \
         time ridden out as degraded capacity (paper §2.2 target ≥25%); availability {:.5}",
        result.degraded_link_ticks,
        result.outage_link_ticks,
        result.total_link_ticks,
        100.0 * result.degraded_share(),
        result.availability()
    ));
    report.line(format!(
        "throughput: mean dynamic-over-binary gain {:.1}% across {} TE rounds \
         ({} fell back); {} reconfiguration downtime",
        100.0 * result.mean_gain(),
        result.samples.len(),
        result.te_fallbacks,
        result.reconfig_downtime
    ));

    let series: Vec<(f64, f64)> = result
        .samples
        .iter()
        .map(|s| (s.time.since_epoch().as_hours_f64(), s.throughput))
        .collect();
    report.csv("faults_dynamic_throughput.csv", series_csv("hours,dynamic_gbps", &series));
    let series: Vec<(f64, f64)> = result
        .samples
        .iter()
        .map(|s| {
            (s.time.since_epoch().as_hours_f64(), if s.te_fallback { 1.0 } else { 0.0 })
        })
        .collect();
    report.csv("faults_te_fallbacks.csv", series_csv("hours,fallback", &series));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_experiment_runs() {
        let r = run(Scale::Quick);
        let text = r.render();
        assert!(text.contains("injected over"));
        assert_eq!(r.csv.len(), 2);
    }

    #[test]
    fn majority_of_imperfect_time_is_degraded_not_outage() {
        let (mut scenario, horizon, _) = build(Scale::Quick);
        let result = scenario.run(horizon, &SwanTe::default()).unwrap();
        // The acceptance bar: at least 25% of the injected failures are
        // handled as degraded-capacity flaps rather than outages.
        assert!(
            result.degraded_share() >= 0.25,
            "degraded share {:.3} (degraded {} vs outage {})",
            result.degraded_share(),
            result.degraded_link_ticks,
            result.outage_link_ticks
        );
        // And the machinery actually fired.
        assert!(result.flaps > 0, "no degradations ridden out");
        assert!(result.te_fallbacks > 0, "no TE fallbacks despite TE faults");
        assert!(result.stale_holds > 0, "no stale holds despite telemetry drops");
    }
}
