//! Fig. 1: SNR over time of 40 wavelengths on one WAN fiber cable, with
//! the modulation thresholds as horizontal reference lines.

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_optics::Modulation;
use rwc_util::stats::Summary;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new("fig1", "SNR of 40 wavelengths on one fiber vs time");
    let mut cfg = scale.fleet();
    cfg.wavelengths_per_fiber = 40; // Fig. 1's cable regardless of scale
    let gen = super::fleet_generator(cfg);
    let fiber = gen.fiber(0);

    report.line(format!(
        "fiber 0: {} wavelengths over {}",
        fiber.len(),
        gen.config().horizon
    ));
    for m in Modulation::LADDER {
        report.line(format!(
            "threshold {:>6.1} dB → {}",
            m.required_snr().value(),
            m
        ));
    }
    let baselines: Vec<f64> = fiber.iter().map(|l| l.baseline.value()).collect();
    report.line(format!("baselines: {}", Summary::of(&baselines)));
    let mins: Vec<f64> = fiber.iter().map(|l| l.trace.min().value()).collect();
    let maxs: Vec<f64> = fiber.iter().map(|l| l.trace.max().value()).collect();
    report.line(format!("per-wavelength minima: {}", Summary::of(&mins)));
    report.line(format!("per-wavelength maxima: {}", Summary::of(&maxs)));
    let dips = fiber.iter().filter(|l| l.trace.min().value() < 6.5).count();
    report.line(format!(
        "{dips}/{} wavelengths dipped below the 100 G threshold at least once",
        fiber.len()
    ));

    // CSV: decimated series, one column per wavelength.
    let stride = (fiber[0].trace.len() / 2_000).max(1);
    let decimated: Vec<_> = fiber.iter().map(|l| l.trace.decimate(stride)).collect();
    let mut csv = String::from("hours");
    for w in 0..decimated.len() {
        let _ = write!(csv, ",w{w}");
    }
    csv.push('\n');
    for i in 0..decimated[0].len() {
        let _ = write!(csv, "{:.2}", decimated[0].time_at(i).since_epoch().as_hours_f64());
        for d in &decimated {
            let _ = write!(csv, ",{:.3}", d.values()[i]);
        }
        csv.push('\n');
    }
    report.csv("fig1_snr_timeseries.csv", csv);

    // Also one example wavelength at full resolution for close-ups.
    let w0 = &fiber[0].trace;
    let series: Vec<(f64, f64)> = w0
        .iter()
        .map(|(t, snr)| (t.since_epoch().as_hours_f64(), snr.value()))
        .collect();
    report.csv("fig1_wavelength0_full.csv", series_csv("hours,snr_db", &series));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_forty_wavelength_csv() {
        let r = run(Scale::Quick);
        assert_eq!(r.id, "fig1");
        let (name, csv) = &r.csv[0];
        assert!(name.contains("timeseries"));
        let header = csv.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 41, "time + 40 wavelengths");
        assert!(csv.lines().count() > 100);
    }

    #[test]
    fn reports_thresholds() {
        let r = run(Scale::Quick);
        let text = r.render();
        assert!(text.contains("6.5 dB"));
        assert!(text.contains("12.5 dB"));
    }
}
