//! Fig. 2a: CDFs of per-link SNR variation (95% HDR width vs range).
//! Fig. 2b: CDF of feasible capacities from the HDR lower edge, and the
//! fleet-wide capacity gain (the paper's 145 Tbps headline).

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_optics::ModulationTable;
use rwc_telemetry::FleetAccumulator;
use rwc_util::units::{Db, Gbps};

fn fleet_analysis(scale: Scale) -> (FleetAccumulator, usize) {
    let gen = super::fleet_generator(scale.fleet());
    let table = ModulationTable::paper_default();
    // The shared crash-safe sweep: panic-retrying workers, plus interval
    // checkpoint/resume when `repro --checkpoint/--resume` installed one.
    let acc = super::fleet_sweep(&gen, &table);
    (acc, gen.n_links())
}

/// Fig. 2a.
pub fn run_2a(scale: Scale) -> Report {
    let mut report = Report::new("fig2a", "CDF of SNR variation: 95% HDR width vs range");
    let (acc, n) = fleet_analysis(scale);
    let hdr = acc.hdr_width_ecdf();
    let range = acc.range_ecdf();
    report.line(format!("links analysed: {n}"));
    report.line(format!(
        "HDR width: median {:.2} dB, p95 {:.2} dB — {:.1}% of links below 2 dB (paper: 83%)",
        hdr.median(),
        hdr.quantile(0.95),
        100.0 * acc.fraction_hdr_below(Db(2.0))
    ));
    report.line(format!(
        "range (max−min): median {:.2} dB, mean {:.2} dB, p95 {:.2} dB (paper: wide, ~12 dB avg)",
        range.median(),
        range.mean(),
        range.quantile(0.95)
    ));
    report.csv("fig2a_hdr_cdf.csv", series_csv("hdr_width_db,cdf", &hdr.series(200)));
    report.csv("fig2a_range_cdf.csv", series_csv("range_db,cdf", &range.series(200)));
    report
}

/// Fig. 2b.
pub fn run_2b(scale: Scale) -> Report {
    let mut report =
        Report::new("fig2b", "CDF of feasible link capacity (HDR floor) + fleet gain");
    let (acc, n) = fleet_analysis(scale);
    let caps = acc.feasible_capacity_ecdf();
    report.line(format!("links analysed: {n}"));
    for gbps in [100.0, 125.0, 150.0, 175.0, 200.0] {
        report.line(format!(
            "feasible ≥ {gbps:>5.0} Gbps: {:>5.1}% of links",
            100.0 * acc.fraction_feasible_at_least(Gbps(gbps))
        ));
    }
    let frac175 = acc.fraction_feasible_at_least(Gbps(175.0));
    report.line(format!(
        "paper headline: 80% of links ≥ 175 Gbps — measured {:.1}%",
        100.0 * frac175
    ));
    let gain = acc.total_gain();
    let scaled_gain_tbps = gain.as_tbps() * (2000.0 / n as f64);
    report.line(format!(
        "fleet capacity gain: {gain} over the 100 G static config ({scaled_gain_tbps:.0} Tbps \
         normalised to the paper's 2,000 links; paper: 145 Tbps)"
    ));
    report.csv(
        "fig2b_feasible_capacity_cdf.csv",
        series_csv("capacity_gbps,cdf", &caps.series(200)),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_calibration_matches_paper_shape() {
        let (acc, _) = fleet_analysis(Scale::Quick);
        // 83% ± 8% of links keep a sub-2 dB HDR.
        let frac = acc.fraction_hdr_below(Db(2.0));
        assert!((0.74..0.92).contains(&frac), "hdr<2dB fraction = {frac}");
        // Ranges must exceed HDR widths (rare deep events). At quick scale
        // (120 days) deep events are rare enough that the gap is modest;
        // at the full 2.5-year horizon the ratio exceeds 3x (see
        // EXPERIMENTS.md).
        assert!(acc.range_ecdf().mean() > 1.5 * acc.hdr_width_ecdf().mean());
    }

    #[test]
    fn fig2b_calibration_matches_paper_shape() {
        let (acc, n) = fleet_analysis(Scale::Quick);
        let frac = acc.fraction_feasible_at_least(Gbps(175.0));
        assert!((0.70..0.92).contains(&frac), "≥175G fraction = {frac}");
        // Normalised gain within ±25% of the paper's 145 Tbps.
        let scaled = acc.total_gain().as_tbps() * 2000.0 / n as f64;
        assert!((110.0..185.0).contains(&scaled), "gain = {scaled} Tbps");
    }

    #[test]
    fn reports_render() {
        let r = run_2a(Scale::Quick);
        assert!(r.render().contains("HDR"));
        assert_eq!(r.csv.len(), 2);
        let r = run_2b(Scale::Quick);
        assert!(r.render().contains("Tbps"));
    }
}
