//! Fig. 3a: number of failures each link of a high-quality fiber would
//! suffer if driven statically at each capacity rung.
//! Fig. 3b: duration of those hypothetical failures across the WAN.
//!
//! The paper's setup for 3a: "a high quality WAN fiber where each link …
//! has a high enough SNR to make all capacity denominations feasible" —
//! failures stay flat up to 175 G, then blow up at 200 G for some links.

use crate::{Report, Scale};
use rwc_optics::{Modulation, ModulationTable};
use rwc_telemetry::{
    analysis::LinkAnalysis, AnalysisMode, FleetConfig, FleetKernel,
};
use rwc_util::stats::Summary;
use std::fmt::Write as _;

/// A fiber whose wavelengths all have ≥ 200 G-feasible baselines, with
/// some sitting close enough to the 12.5 dB threshold that micro-noise
/// crosses it.
fn high_quality_fiber(scale: Scale) -> Vec<LinkAnalysis> {
    let mut cfg = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 40,
        fiber_baseline_mean_db: 14.2,
        fiber_baseline_sd_db: 0.01,
        wavelength_jitter_sd_db: 0.9,
        baseline_clamp_db: (13.1, 16.5),
        noisy_link_fraction: 0.0,
        // Keep only shallow per-link events so rungs ≤ 175 G stay clean.
        deep_dip_rate: 0.0,
        link_lol_rate: 0.0,
        fiber_cut_rate: 0.0,
        shallow_dip_rate: 1.0,
        step_rate: 0.0,
        maintenance_rate: 0.5,
        ..FleetConfig::paper()
    };
    if scale == Scale::Quick {
        cfg.horizon = rwc_util::time::SimDuration::from_days(120);
    }
    let gen = super::fleet_generator(cfg);
    let table = ModulationTable::paper_default();
    match super::analysis_mode() {
        AnalysisMode::Fused => {
            let mut kernel = FleetKernel::with_observer(super::observer());
            (0..gen.n_links())
                .map(|i| kernel.analyze_generated(&gen, i, &table))
                .collect()
        }
        AnalysisMode::Legacy => (0..gen.n_links())
            .map(|i| LinkAnalysis::new(&gen.link(i).trace, &table))
            .collect(),
    }
}

/// Fig. 3a.
pub fn run_3a(scale: Scale) -> Report {
    let mut report =
        Report::new("fig3a", "failures per link vs hypothetical static capacity (one fiber)");
    let links = high_quality_fiber(scale);
    let mut csv = String::from("wavelength,capacity_gbps,failures\n");
    for m in Modulation::LADDER {
        let counts: Vec<f64> =
            links.iter().map(|l| l.failures_at(m).len() as f64).collect();
        let nonzero = counts.iter().filter(|&&c| c > 0.0).count();
        let max = counts.iter().cloned().fold(0.0, f64::max);
        report.line(format!(
            "{:>5.0} Gbps: {:>2} of {} links fail at all; worst link {:>4.0} failures; mean {:.2}",
            m.capacity().value(),
            nonzero,
            links.len(),
            max,
            counts.iter().sum::<f64>() / counts.len() as f64
        ));
        for (w, c) in counts.iter().enumerate() {
            let _ = writeln!(csv, "{w},{},{}", m.capacity().value(), c);
        }
    }
    report.line(
        "paper shape: no significant increase up to 175 Gbps, large failure counts at 200 Gbps"
            .to_string(),
    );
    report.csv("fig3a_failures_per_link.csv", csv);
    report
}

/// Fig. 3b.
pub fn run_3b(scale: Scale) -> Report {
    let mut report =
        Report::new("fig3b", "duration of hypothetical link failures vs capacity (whole WAN)");
    let gen = super::fleet_generator(scale.fleet());
    let table = ModulationTable::paper_default();
    let acc = super::fleet_sweep(&gen, &table);
    let mut csv = String::from("capacity_gbps,mean_h,p25_h,median_h,p75_h,max_h,episodes\n");
    for m in Modulation::LADDER {
        let durations = acc.failure_durations_hours(m);
        if durations.is_empty() {
            report.line(format!("{:>5.0} Gbps: no failure episodes", m.capacity().value()));
            continue;
        }
        let s = Summary::of(durations);
        report.line(format!(
            "{:>5.0} Gbps: {} episodes, duration hours {}",
            m.capacity().value(),
            s.count,
            s
        ));
        let _ = writeln!(
            csv,
            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
            m.capacity().value(),
            s.mean,
            s.p25,
            s.median,
            s.p75,
            s.max,
            s.count
        );
    }
    report.line("paper shape: failures last several hours at every capacity".to_string());
    report.csv("fig3b_failure_durations.csv", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_shape_flat_then_blowup() {
        let links = high_quality_fiber(Scale::Quick);
        let total_at = |m: Modulation| -> usize {
            links.iter().map(|l| l.failures_at(m).len()).sum()
        };
        // All denominations feasible: essentially no failures ≤ 175 G.
        let low = total_at(Modulation::DpQpsk100)
            + total_at(Modulation::Hybrid125)
            + total_at(Modulation::Dp8Qam150);
        let t175 = total_at(Modulation::Hybrid175);
        let t200 = total_at(Modulation::Dp16Qam200);
        assert!(t200 > 5 * (t175 + 1), "200G must blow up: {t200} vs {t175}");
        assert!(t200 > 10, "some links must fail repeatedly at 200 G: {t200}");
        assert!(low <= t175 + 2, "low rungs stay clean: {low}");
    }

    #[test]
    fn fig3b_durations_in_hours() {
        let r = run_3b(Scale::Quick);
        // At 100 G, mean failure duration must be hours, not minutes.
        let gen = rwc_telemetry::FleetGenerator::new(Scale::Quick.fleet());
        let acc = gen.fleet_analysis(&ModulationTable::paper_default());
        let d100 = acc.failure_durations_hours(Modulation::DpQpsk100);
        assert!(!d100.is_empty());
        let mean = d100.iter().sum::<f64>() / d100.len() as f64;
        assert!((1.0..30.0).contains(&mean), "mean={mean}h");
        assert!(r.render().contains("Gbps"));
    }
}
