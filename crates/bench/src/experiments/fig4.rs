//! Fig. 4: root causes of unplanned WAN failures.
//!
//! (a) share of outage *duration* per cause, (b) share of *events* per
//! cause, (c) CDF of the lowest SNR during failure events. The actionable
//! numbers: fiber cuts are only ~5% of events / ~10% of time, and ~25% of
//! events keep an SNR ≥ 3 dB — enough for a 50 Gbps crawl.

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_failures::{RootCause, TicketAnalysis, TicketGenerator};
use rwc_util::units::Db;
use std::fmt::Write as _;

/// Runs all three panels.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new("fig4", "failure root causes: duration, frequency, SNR floor");
    let tickets = TicketGenerator::new(scale.tickets()).generate();
    let analysis = TicketAnalysis::new(&tickets);

    report.line(format!(
        "{} unplanned events over {} (paper: 250 over 7 months)",
        analysis.total_events(),
        scale.tickets().window
    ));

    let ev = analysis.event_shares_percent();
    let dur = analysis.duration_shares_percent();
    report.line("cause                    events%   duration%   (paper ev%/dur%)".to_string());
    let paper = [(25.0, 20.0), (5.0, 10.0), (40.0, 45.0), (30.0, 25.0)];
    let mut csv = String::from("cause,events_pct,duration_pct\n");
    for (i, cause) in RootCause::ALL.iter().enumerate() {
        report.line(format!(
            "{:<24} {:>6.1}    {:>6.1}      ({:.0}/{:.0})",
            cause.to_string(),
            ev[i],
            dur[i],
            paper[i].0,
            paper[i].1
        ));
        let _ = writeln!(csv, "{cause},{:.2},{:.2}", ev[i], dur[i]);
    }
    report.csv("fig4ab_root_cause_shares.csv", csv);

    report.line(format!(
        "non-fiber-cut events: {:.1}% (paper: >90% present a degraded-capacity opportunity)",
        100.0 * analysis.fraction_non_fiber_cut()
    ));
    let frac3 = analysis.fraction_floor_at_least(Db(3.0));
    report.line(format!(
        "events with SNR floor ≥ 3.0 dB (50 G feasible): {:.1}% (paper: ~25%)",
        100.0 * frac3
    ));

    let ecdf = analysis.floor_ecdf();
    report.csv(
        "fig4c_snr_floor_cdf.csv",
        series_csv("lowest_snr_db,cdf", &ecdf.series(200)),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let tickets = TicketGenerator::new(Scale::Full.tickets()).generate();
        let a = TicketAnalysis::new(&tickets);
        assert!(a.fraction_non_fiber_cut() > 0.90);
        let frac = a.fraction_floor_at_least(Db(3.0));
        assert!((0.18..0.42).contains(&frac), "floor≥3dB fraction = {frac}");
        // Fiber cuts: rare but long.
        let ev = a.event_shares_percent();
        let dur = a.duration_shares_percent();
        assert!(dur[1] > ev[1], "fiber cuts cost more time than frequency");
    }

    #[test]
    fn report_contains_all_causes() {
        let text = run(Scale::Quick).render();
        for cause in RootCause::ALL {
            assert!(text.contains(&cause.to_string()), "{cause}");
        }
    }
}
