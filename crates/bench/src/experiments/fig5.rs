//! Fig. 5: constellation diagrams of the testbed running QPSK (100 G),
//! 8QAM (150 G) and 16QAM (200 G).
//!
//! The oscilloscope is replaced by the AWGN channel model: we transmit at
//! an SNR representative of the testbed's short fiber, record the received
//! IQ cloud (the CSV artifact *is* the constellation diagram), and verify
//! the DSP-style EVM→SNR estimate and the symbol error rate against
//! closed-form theory.

use crate::{Report, Scale};
use rwc_optics::ber::{ser_mpsk, ser_mqam, ser_star8qam};
use rwc_optics::constellation::{awgn_trial, Constellation};
use rwc_util::rng::Xoshiro256;
use rwc_util::units::Db;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new("fig5", "constellations: QPSK / 8QAM / 16QAM over AWGN");
    let n_symbols = match scale {
        Scale::Quick => 20_000,
        Scale::Full | Scale::Scaled(_) => 200_000,
    };
    // The testbed's short fiber: high SNR, so all three formats show
    // clean, well-separated clusters (as in the paper's screenshots).
    let snr = Db(18.0);
    let mut rng = Xoshiro256::seed_from_u64(0xF165);
    let formats = [
        ("qpsk_100g", Constellation::qpsk()),
        ("8qam_150g", Constellation::qam8()),
        ("16qam_200g", Constellation::qam16()),
    ];
    for (name, constellation) in formats {
        let run = awgn_trial(&constellation, snr, n_symbols, &mut rng);
        let theory = match constellation.order() {
            4 => ser_mpsk(4, snr.to_linear()),
            8 => ser_star8qam(snr.to_linear()),
            16 => ser_mqam(16, snr.to_linear()),
            _ => unreachable!(),
        };
        report.line(format!(
            "{name:<12} channel SNR {snr}: EVM-estimated SNR {:.2} dB, SER {:.2e} (theory {:.2e})",
            run.estimated_snr().value(),
            run.symbol_error_rate,
            theory
        ));
        // CSV cloud: up to 4,000 received points (plenty for a diagram).
        let mut csv = String::from("i,q,tx_index\n");
        for s in run.samples.iter().take(4_000) {
            let _ = writeln!(csv, "{:.5},{:.5},{}", s.rx.i, s.rx.q, s.tx_index);
        }
        report.csv(&format!("fig5_{name}_constellation.csv"), csv);
    }
    report.line("paper shape: three clean constellations at increasing density".to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_constellation_artifacts() {
        let r = run(Scale::Quick);
        assert_eq!(r.csv.len(), 3);
        for (name, csv) in &r.csv {
            assert!(name.contains("constellation"));
            assert!(csv.lines().count() > 1_000);
        }
    }

    #[test]
    fn evm_estimates_near_channel_snr() {
        let r = run(Scale::Quick);
        let text = r.render();
        // All three EVM estimates should print near 18 dB.
        for line in text.lines().filter(|l| l.contains("EVM-estimated")) {
            let est: f64 = line
                .split("EVM-estimated SNR ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!((est - 18.0).abs() < 1.0, "{line}");
        }
    }
}
