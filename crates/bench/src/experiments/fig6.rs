//! Fig. 6b: CDF of the time a BVT takes to change modulation — the stock
//! procedure (laser power-cycled, ~68 s mean) versus the paper's efficient
//! procedure (laser stays lit, ~35 ms mean). 200 trials each, like the
//! paper's testbed run.

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_optics::bvt::{sample_latencies, LatencyModel, ReconfigProcedure};
use rwc_util::rng::Xoshiro256;
use rwc_util::stats::Ecdf;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("fig6b", "CDF of modulation-change latency: legacy vs efficient");
    let trials = match scale {
        Scale::Quick => 200, // the paper's own trial count
        Scale::Full | Scale::Scaled(_) => 2_000,
    };
    let model = LatencyModel::default();
    let mut rng = Xoshiro256::seed_from_u64(0xF6B);
    let mut means = Vec::new();
    for (name, procedure) in [
        ("mod_change", ReconfigProcedure::Legacy),
        ("efficient_mod_change", ReconfigProcedure::Efficient),
    ] {
        let secs: Vec<f64> = sample_latencies(procedure, &model, trials, &mut rng)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        let ecdf = Ecdf::new(secs);
        report.line(format!(
            "{name:<22} n={trials}: mean {:.3} s, median {:.3} s, p5 {:.3} s, p95 {:.3} s",
            ecdf.mean(),
            ecdf.median(),
            ecdf.quantile(0.05),
            ecdf.quantile(0.95)
        ));
        means.push(ecdf.mean());
        report.csv(
            &format!("fig6b_{name}_cdf.csv"),
            series_csv("seconds,cdf", &ecdf.series(200)),
        );
    }
    report.line(format!(
        "speedup: {:.0}× (paper: 68 s → 35 ms ≈ 1900×)",
        means[0] / means[1]
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_land_on_paper_values() {
        let r = run(Scale::Full);
        let text = r.render();
        let mean_of = |tag: &str| -> f64 {
            text.lines()
                .find(|l| l.trim_start().starts_with(tag))
                .unwrap()
                .split("mean ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let legacy = mean_of("mod_change");
        let efficient = mean_of("efficient_mod_change");
        assert!((55.0..80.0).contains(&legacy), "legacy mean {legacy}");
        assert!((0.028..0.042).contains(&efficient), "efficient mean {efficient}");
        assert!(legacy / efficient > 1_000.0);
    }

    #[test]
    fn two_cdf_artifacts() {
        let r = run(Scale::Quick);
        assert_eq!(r.csv.len(), 2);
    }
}
