//! Fig. 7 / §4.1 worked example: the graph abstraction in action.
//!
//! Initial state: four sites, all links 100 G, demands A→B = C→D = 100 G.
//! Next TE round: both demands grow to 125 G; links (A,B) and (C,D) have
//! SNR headroom for another 100 G; changing a modulation costs 100 per
//! unit of disrupted traffic. The penalty-minimising solution upgrades
//! **one** link and detours the other demand's overflow. With unit
//! weights (Fig. 7c) the TE instead keeps every flow on one hop.

use crate::{Report, Scale};
use rwc_core::{augment, translate, AugmentConfig, PenaltyPolicy};
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::TeSolver;
use rwc_te::TeAlgorithm;
use rwc_topology::builders;
use rwc_topology::wan::LinkId;
use rwc_util::units::{Db, Gbps};

fn setup() -> (rwc_topology::wan::WanTopology, DemandMatrix) {
    let mut wan = builders::fig7_example();
    for (id, _) in wan.clone().links() {
        wan.set_snr(id, Db(7.5));
    }
    wan.set_snr(LinkId(0), Db(13.0)); // A–B can double
    wan.set_snr(LinkId(1), Db(13.0)); // C–D can double
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(125.0), Priority::Elastic);
    dm.add(c, d, Gbps(125.0), Priority::Elastic);
    (wan, dm)
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> Report {
    let mut report = Report::new("fig7", "worked example: one upgrade serves both grown demands");
    let (wan, dm) = setup();

    // Penalty-minimising TE (Fig. 7b).
    let cfg = AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() };
    let aug = augment(&wan, &dm, &cfg, &[]);
    let sol = TeSolver::builder().build().expect("default TE solver").solve(&aug.problem);
    let tr = translate(&aug, &wan, &sol).expect("experiment translation on solver output");
    report.line(format!(
        "demands 2×125 G: routed {:.0} G; upgrades: {:?}; effective penalty {:.0}",
        sol.total,
        tr.upgrades
            .iter()
            .map(|(l, m)| format!("link{} → {}", l.0, m))
            .collect::<Vec<_>>(),
        tr.effective_penalty
    ));
    report.line(format!(
        "paper: the penalty-minimising solution increases the capacity of only ONE link — \
         measured {} upgrade(s)",
        tr.upgrades.len()
    ));

    // Unit-weight variant (Fig. 7c): short paths at all costs.
    let unit_cfg = AugmentConfig { penalty: PenaltyPolicy::UnitWeights, ..Default::default() };
    let unit_aug = augment(&wan, &dm, &unit_cfg, &[]);
    let unit_sol = TeSolver::builder().build().expect("default TE solver").solve(&unit_aug.problem);
    let unit_tr = translate(&unit_aug, &wan, &unit_sol)
        .expect("experiment translation on solver output");
    // Hop count of the solution = total flow-hops / total flow.
    let flow_hops: f64 = unit_tr.real_edge_flows.iter().sum();
    report.line(format!(
        "unit weights (7c): routed {:.0} G over {:.2} average hops (1.0 = every flow direct); \
         upgrades: {}",
        unit_sol.total,
        flow_hops / unit_sol.total,
        unit_tr.upgrades.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_upgrade_suffices() {
        let (wan, dm) = setup();
        let cfg =
            AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() };
        let aug = augment(&wan, &dm, &cfg, &[]);
        let sol = TeSolver::builder().build().expect("default TE solver").solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).expect("experiment translation on solver output");
        assert!((sol.total - 250.0).abs() < 1e-6, "both demands fully routed");
        assert_eq!(tr.upgrades.len(), 1, "exactly one link upgraded: {:?}", tr.upgrades);
        let (link, target) = tr.upgrades[0];
        assert!(link == LinkId(0) || link == LinkId(1));
        assert_eq!(
            target,
            rwc_optics::Modulation::Dp8Qam150,
            "the upgraded link carries its own 125 G plus the other demand's 25 G detour"
        );
    }

    #[test]
    fn unit_weights_favour_single_hops() {
        let (wan, dm) = setup();
        let cfg = AugmentConfig { penalty: PenaltyPolicy::UnitWeights, ..Default::default() };
        let aug = augment(&wan, &dm, &cfg, &[]);
        let sol = TeSolver::builder().build().expect("default TE solver").solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).expect("experiment translation on solver output");
        assert!((sol.total - 250.0).abs() < 1e-6);
        let flow_hops: f64 = tr.real_edge_flows.iter().sum();
        // Fig. 7c: all flows take only one hop, so both upgradable links
        // are upgraded instead of detouring.
        assert!((flow_hops / sol.total - 1.0).abs() < 1e-6, "avg hops = {}", flow_hops / sol.total);
        assert_eq!(tr.upgrades.len(), 2, "{:?}", tr.upgrades);
    }

    #[test]
    fn report_renders() {
        let text = run(Scale::Quick).render();
        assert!(text.contains("ONE link"));
    }
}
