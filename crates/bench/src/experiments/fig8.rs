//! Fig. 8: the node-splitting gadget for unsplittable flows.
//!
//! With plain augmentation a 200 G *unsplittable* flow cannot cross an
//! upgradable 100 G link (it would have to split across the real and fake
//! parallels). The gadget inserts intermediate vertices so a single
//! 200 G path exists while total capacity stays capped at 200 G.

use crate::{Report, Scale};
use rwc_core::augment::{augment, AugmentConfig};
use rwc_core::gadget::{augment_unsplittable, gadget_upgrades};
use rwc_core::penalty::PenaltyPolicy;
use rwc_optics::ModulationTable;
use rwc_te::demand::DemandMatrix;
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::units::Db;

fn ab_wan() -> WanTopology {
    let mut wan = WanTopology::new();
    let a = wan.add_node("A", None);
    let b = wan.add_node("B", None);
    wan.add_link(a, b, 400.0);
    wan.set_snr(LinkId(0), Db(13.0));
    wan
}

/// Widest single path from 0 to 1: max over paths of min edge capacity.
fn widest_single_path(net: &rwc_flow::FlowNetwork, src: usize, dst: usize) -> f64 {
    // Bellman-Ford-style widest path (graphs here are tiny).
    let mut width = vec![0.0f64; net.n_nodes()];
    width[src] = f64::INFINITY;
    for _ in 0..net.n_nodes() {
        let mut changed = false;
        for e in net.edges() {
            let through = width[e.from].min(e.capacity);
            if through > width[e.to] {
                width[e.to] = through;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    width[dst]
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> Report {
    let mut report = Report::new("fig8", "unsplittable 200 G flow via the node-splitting gadget");
    let wan = ab_wan();
    let table = ModulationTable::paper_default();
    let penalty = PenaltyPolicy::paper_example();

    // Plain augmentation: parallel 100+100 edges — widest single path 100.
    let plain = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
    let plain_width = widest_single_path(&plain.problem.net, 0, 1);
    report.line(format!(
        "plain augmentation: widest single path A→B = {plain_width:.0} G \
         (a 200 G unsplittable flow is UNROUTABLE)"
    ));

    // Gadget: single 200 G path exists, total still capped at 200.
    let gp = augment_unsplittable(&wan, &DemandMatrix::new(), &table, &penalty, &[]);
    let gadget_width = widest_single_path(&gp.problem.net, 0, 1);
    let total = rwc_flow::max_flow(&gp.problem.net, 0, 1).value;
    report.line(format!(
        "gadget: widest single path A→B = {gadget_width:.0} G, total max-flow {total:.0} G \
         (paper: single 200 G path, abstracted link stays at 200 G)"
    ));

    let mc = rwc_flow::min_cost_max_flow(&gp.problem.net, 0, 1);
    let upgrades = gadget_upgrades(&gp, &wan, &mc.flow.edge_flows);
    report.line(format!(
        "min-cost max-flow pays penalty {:.0} and upgrades {} link(s) to {}",
        mc.cost,
        upgrades.len(),
        upgrades.first().map(|&(_, m)| m.to_string()).unwrap_or_default()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_enables_single_200g_path() {
        let wan = ab_wan();
        let plain = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        assert_eq!(widest_single_path(&plain.problem.net, 0, 1), 100.0);
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        assert_eq!(widest_single_path(&gp.problem.net, 0, 1), 200.0);
        assert_eq!(rwc_flow::max_flow(&gp.problem.net, 0, 1).value, 200.0);
    }

    #[test]
    fn report_renders() {
        let text = run(Scale::Quick).render();
        assert!(text.contains("UNROUTABLE"));
        assert!(text.contains("200 G"));
    }
}
