//! One module per paper artifact. Every `run(scale)` returns a
//! [`crate::Report`] carrying the printed series and CSV files.

pub mod ablation;
pub mod avail;
pub mod chaos;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod objectives;
pub mod scenario;
pub mod srlg;
pub mod thm1;
pub mod tput;

use crate::{Report, Scale};
use rwc_harness::{CheckpointConfig, ExecutorConfig, SweepCheckpoint};
use rwc_obs::{MetricsObserver, MetricsSnapshot, Observer};
use rwc_optics::ModulationTable;
use rwc_telemetry::{AnalysisMode, FleetAccumulator, FleetConfig, FleetGenerator, GenMode};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static LEGACY_ANALYSIS: AtomicBool = AtomicBool::new(false);
static BATCH_GEN: AtomicBool = AtomicBool::new(false);

/// Process-wide observability sink for experiment runs, mirroring the
/// [`set_analysis_mode`] pattern: `repro --obs-json` installs a
/// [`MetricsObserver`] before dispatching and every experiment routes the
/// pipelines it builds through [`observer`]. Unset (the default), the
/// shared [`rwc_obs::noop`] observer is handed out and the hot paths stay
/// branchless no-ops.
static OBSERVER: OnceLock<Arc<MetricsObserver>> = OnceLock::new();

/// Installs the process-wide metrics observer. First call wins (the
/// registry must outlive every experiment); later calls return `false`
/// and change nothing.
pub fn set_observer(obs: Arc<MetricsObserver>) -> bool {
    OBSERVER.set(obs).is_ok()
}

/// The observer experiments should hand to the pipelines they build —
/// the installed [`MetricsObserver`], or the shared noop.
pub fn observer() -> Arc<dyn Observer> {
    match OBSERVER.get() {
        Some(obs) => Arc::clone(obs) as Arc<dyn Observer>,
        None => rwc_obs::noop(),
    }
}

/// The installed observer's backing registry — the merge target for
/// per-worker registries in [`crate::parallel`]; `None` when
/// observability is off.
pub fn registry() -> Option<&'static rwc_obs::MetricsRegistry> {
    OBSERVER.get().map(|obs| obs.registry())
}

/// Snapshot of the installed observer's metrics; `None` when observability
/// is off.
pub fn metrics() -> Option<MetricsSnapshot> {
    OBSERVER.get().map(|obs| obs.snapshot())
}

/// Selects the fleet-analysis path for every experiment in this process.
/// Defaults to the fused kernel; the `repro --legacy-analysis` flag flips
/// it back to the trace-materialising path for bisection and equivalence
/// re-checks.
pub fn set_analysis_mode(mode: AnalysisMode) {
    LEGACY_ANALYSIS.store(mode == AnalysisMode::Legacy, Ordering::Relaxed);
}

/// The analysis path experiments should use.
pub fn analysis_mode() -> AnalysisMode {
    if LEGACY_ANALYSIS.load(Ordering::Relaxed) {
        AnalysisMode::Legacy
    } else {
        AnalysisMode::Fused
    }
}

/// Selects the trace-generation path for every experiment in this
/// process. Defaults to the serial legacy generator; the `repro
/// --gen-mode batch` flag switches to the counter-based batch pipeline
/// (statistically equivalent fleet, different bytes — see DESIGN.md §13).
pub fn set_gen_mode(mode: GenMode) {
    BATCH_GEN.store(mode == GenMode::Batch, Ordering::Relaxed);
}

/// The trace-generation path experiments should use.
pub fn gen_mode() -> GenMode {
    if BATCH_GEN.load(Ordering::Relaxed) {
        GenMode::Batch
    } else {
        GenMode::Legacy
    }
}

/// The generator every experiment should build from a fleet config:
/// [`FleetGenerator::new`] with the process-wide [`gen_mode`] applied.
pub(crate) fn fleet_generator(cfg: FleetConfig) -> FleetGenerator {
    FleetGenerator::new(cfg).with_gen_mode(gen_mode())
}

/// Checkpoints are written after this many fresh chunk completions. The
/// write happens on the collector thread while workers keep pulling
/// chunks, so the interval trades recovery granularity against checkpoint
/// file churn, not sweep throughput.
pub const CHECKPOINT_EVERY_CHUNKS: u64 = 4;

/// Crash-safety wiring for fleet sweeps, installed once per process by
/// `repro --checkpoint/--resume` (same first-call-wins pattern as the
/// observer above).
#[derive(Debug)]
pub struct CheckpointState {
    /// Where interval checkpoints are written (atomically, temp + rename).
    pub path: PathBuf,
    /// A loaded, envelope-verified checkpoint to restore; `None` starts
    /// the sweep fresh while still writing checkpoints to `path`.
    pub resume: Option<SweepCheckpoint>,
}

static CHECKPOINT: OnceLock<CheckpointState> = OnceLock::new();

/// Installs the process-wide checkpoint plan. First call wins; later
/// calls return `false` and change nothing.
pub fn set_checkpoint(state: CheckpointState) -> bool {
    CHECKPOINT.set(state).is_ok()
}

/// The installed checkpoint plan, if any.
pub fn checkpoint() -> Option<&'static CheckpointState> {
    CHECKPOINT.get()
}

/// The crash-safe fleet sweep every fleet experiment routes through: the
/// process observer and registry, the installed checkpoint plan, and the
/// harness panic-retry policy, all wired into one call. A chunk that
/// panics is retried with jittered backoff; only a chunk that exhausts
/// its budget aborts the experiment.
pub(crate) fn fleet_sweep(gen: &FleetGenerator, table: &ModulationTable) -> FleetAccumulator {
    let state = checkpoint();
    let cfg = ExecutorConfig {
        checkpoint: state.map(|s| CheckpointConfig {
            path: s.path.clone(),
            every_chunks: CHECKPOINT_EVERY_CHUNKS,
        }),
        observer: observer(),
        ..ExecutorConfig::default()
    };
    let resume = state.and_then(|s| s.resume.as_ref());
    match crate::parallel::parallel_fleet_analysis_hardened(
        gen,
        table,
        crate::parallel::default_workers(),
        analysis_mode(),
        registry(),
        &cfg,
        resume,
    ) {
        Ok(acc) => acc,
        Err(err) => panic!("fleet sweep failed: {err}"),
    }
}

/// All experiment ids, in paper order.
pub const ALL: [&str; 17] = [
    "fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "fig5", "fig6b", "fig7", "fig8", "thm1",
    "tput", "avail", "scenario", "faults", "srlg", "objectives",
];

/// Runs one experiment by id (plus the "ablation" extra).
pub fn run(id: &str, scale: Scale) -> Option<Report> {
    Some(match id {
        "fig1" => fig1::run(scale),
        "fig2a" => fig2::run_2a(scale),
        "fig2b" => fig2::run_2b(scale),
        "fig3a" => fig3::run_3a(scale),
        "fig3b" => fig3::run_3b(scale),
        "fig4" | "fig4a" | "fig4b" | "fig4c" => fig4::run(scale),
        "fig5" => fig5::run(scale),
        "fig6b" | "fig6" => fig6::run(scale),
        "fig7" => fig7::run(scale),
        "fig8" => fig8::run(scale),
        "thm1" => thm1::run(scale),
        "tput" => tput::run(scale),
        "avail" => avail::run(scale),
        "scenario" => scenario::run(scale),
        "faults" => faults::run(scale),
        "srlg" => srlg::run(scale),
        "objectives" => objectives::run(scale),
        "ablation" => ablation::run(scale),
        "chaos" => chaos::run(scale),
        _ => return None,
    })
}
