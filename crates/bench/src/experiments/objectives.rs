//! TE objective zoo on the augmented scaled mesh: every [`rwc_te::TeObjective`]
//! solved by both LP backends on the identical problem, plus the min-MLU
//! envelope-dominance and warm-drift sub-stage. The printed table is the
//! human twin of the `objectives` stage in `BENCH_scenario.json` (and the
//! data behind the CI jq gates).

use crate::perf::{objectives_perf, ObjectivesPerf};
use crate::{Report, Scale};

fn render(report: &mut Report, perf: &ObjectivesPerf) {
    report.line(format!(
        "scaled mesh x{} (augmented: {} commodities, {} fake upgrade edges)",
        perf.scale_factor, perf.commodities, perf.fake_edges
    ));
    report.line(
        "objective                        sparse        dense        |delta|   sparse/dense us"
            .to_string(),
    );
    for arm in &perf.arms {
        report.line(format!(
            "{:<32} {:>10.4} {:>12.4} {:>12.3e}   {:>6} / {:>6}{}",
            arm.objective,
            arm.sparse_headline,
            arm.dense_headline,
            arm.agreement_delta,
            arm.sparse_solve_micros,
            arm.dense_solve_micros,
            if arm.solved { "" } else { "  [FAILED]" },
        ));
    }
    report.line(format!(
        "all objectives solved: {}; worst cross-backend disagreement {:.3e} (gate 1e-6)",
        perf.all_solved, perf.max_agreement_delta
    ));
    let mm = &perf.min_mlu;
    report.line(format!(
        "min-MLU envelope {:.4} dominates every member optimum (max single-TM {:.4})",
        mm.envelope_mlu, mm.max_single_tm_mlu
    ));
    report.line(format!(
        "min-MLU rhs-only TM drift ({} rounds): warm hit rate {:.0}% \
         ({}/{} attempts), sparse {:.1}x faster than dense",
        mm.rounds,
        100.0 * mm.warm_hit_rate,
        mm.warm_hits,
        mm.warm_attempts,
        mm.sparse_speedup,
    ));
    report.csv(
        "objectives.csv",
        std::iter::once("objective,solved,sparse,dense,delta".to_string())
            .chain(perf.arms.iter().map(|a| {
                format!(
                    "{},{},{},{},{}",
                    a.objective, a.solved, a.sparse_headline, a.dense_headline, a.agreement_delta
                )
            }))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n",
    );
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("objectives", "TE objective zoo: five formulations, two LP backends");
    let perf = objectives_perf(scale);
    render(&mut report, &perf);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_zoo_solves_and_backends_agree() {
        let perf = objectives_perf(Scale::Scaled(2));
        assert_eq!(perf.arms.len(), 5, "all five objectives run");
        assert!(perf.all_solved, "{perf:?}");
        assert!(perf.max_agreement_delta <= 1e-6, "{perf:?}");
        assert!(perf.fake_edges > 0, "augmentation produced no fake edges");
        let mm = &perf.min_mlu;
        assert!(
            mm.max_single_tm_mlu <= mm.envelope_mlu + 1e-6,
            "envelope dominance broken: {mm:?}"
        );
        // MinMlu TM drift is demand-rhs-only, so after the first cold
        // solve every round must warm-start — the same contract as the
        // MaxThroughput fast-resolve path.
        assert_eq!(mm.warm_attempts, mm.rounds - 1, "{mm:?}");
        assert_eq!(mm.warm_hits, mm.warm_attempts, "{mm:?}");
        let mut report = Report::new("objectives", "test");
        render(&mut report, &perf);
    }
}
