//! A week-in-the-life scenario: telemetry → run/walk/crawl controller →
//! hourly TE rounds through the graph abstraction, against a pinned
//! binary-policy counterfactual. This is the paper's whole §1–§4 pipeline
//! in one run.

use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_core::prelude::*;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::swan::SwanTe;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;

fn build(scale: Scale) -> (Scenario, SimDuration) {
    build_arm(scale, false)
}

/// Builds the scenario with the round engine pinned to either the
/// incremental path (`full_rebuild = false`, the default) or the
/// rebuild-everything escape hatch. Exposed so the perf harness and the
/// byte-identity integration tests drive the exact experiment
/// configuration rather than an approximation of it.
pub fn build_arm(scale: Scale, full_rebuild: bool) -> (Scenario, SimDuration) {
    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let horizon = match scale {
        Scale::Quick => SimDuration::from_days(7),
        Scale::Full | Scale::Scaled(_) => SimDuration::from_days(60),
    };
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 13.2,
        fiber_baseline_sd_db: 0.2,
        wavelength_jitter_sd_db: 0.4,
        ..FleetConfig::paper()
    };
    let config = ScenarioConfig { full_rebuild, ..ScenarioConfig::default() };
    let scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .observer(super::observer())
        .build()
        .expect("scenario experiment wiring is valid");
    (scenario, horizon)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("scenario", "week-in-the-life: dynamic fleet vs binary counterfactual");
    let (mut scenario, horizon) = build(scale);
    let result = scenario
        .run(horizon, &SwanTe::default())
        .expect("scenario horizon fits its telemetry");
    report.line(format!(
        "{} TE rounds over {horizon}: mean dynamic-over-binary gain {:.1}%",
        result.samples.len(),
        100.0 * result.mean_gain()
    ));
    report.line(format!(
        "{} degradations ridden out as flaps, {} hard downs, {} reconfiguration downtime, \
         {:.0} G total churn",
        result.flaps,
        result.hard_downs,
        result.reconfig_downtime,
        result.total_churn()
    ));
    let series: Vec<(f64, f64)> = result
        .samples
        .iter()
        .map(|s| (s.time.since_epoch().as_hours_f64(), s.throughput))
        .collect();
    report.csv("scenario_dynamic_throughput.csv", series_csv("hours,dynamic_gbps", &series));
    let series: Vec<(f64, f64)> = result
        .samples
        .iter()
        .map(|s| (s.time.since_epoch().as_hours_f64(), s.static_throughput))
        .collect();
    report.csv("scenario_static_throughput.csv", series_csv("hours,static_gbps", &series));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_experiment_runs() {
        let r = run(Scale::Quick);
        assert_eq!(r.csv.len(), 2);
        assert!(r.render().contains("TE rounds"));
    }

    #[test]
    fn dynamic_dominates_binary_on_average() {
        let (mut scenario, horizon) = build(Scale::Quick);
        let result = scenario.run(horizon, &SwanTe::default()).unwrap();
        assert!(result.mean_gain() >= 0.0, "gain={}", result.mean_gain());
        // Per-sample: dynamic never does worse than the binary
        // counterfactual by more than solver noise.
        for s in &result.samples {
            assert!(
                s.throughput >= s.static_throughput - 5.0,
                "at {}: dynamic {} vs binary {}",
                s.time,
                s.throughput,
                s.static_throughput
            );
        }
    }
}
