//! SRLG campaign: correlated amplifier-span outages, with and without
//! make-before-break reconfiguration.
//!
//! Two questions the paper's availability argument leaves open at fleet
//! scale. First, what happens when faults are *correlated*: one amplifier
//! serves every wavelength on a fiber segment, so a single outage takes
//! down all links sharing that span — a shared-risk link group (SRLG) —
//! and availability math that assumes independent failures undercounts
//! the damage. Second, whether staged make-before-break reconfiguration
//! (prepare → drain → commit, rollback on failure) actually converts
//! would-be capacity losses into clean rollbacks when flaky hardware
//! strikes mid-change.
//!
//! The experiment runs the same seeded fault plan — amplifier-span SRLG
//! events layered over per-link transceiver faults — through the full
//! pipeline twice: once with make-before-break (the default) and once
//! with the legacy break-then-make path, then reports the outage split
//! (correlated vs independent link-ticks) and the rollback accounting.

use crate::parallel::parallel_pair;
use crate::report::series_csv;
use crate::{Report, Scale};
use rwc_core::prelude::*;
use rwc_faults::{FaultPlan, FaultPlanConfig};
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::swan::SwanTe;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;

/// Fig. 7 fleet with links 0 and 2 sharing one fiber segment — the SRLG
/// an amplifier event takes down in a single shot.
fn build(scale: Scale, make_before_break: bool) -> (Scenario, SimDuration, FaultPlan) {
    build_arm(scale, make_before_break, false)
}

/// Builds one SRLG arm with the round engine pinned to either the
/// incremental path or the `full_rebuild` escape hatch; exposed for the
/// byte-identity integration tests.
pub fn build_arm(
    scale: Scale,
    make_before_break: bool,
    full_rebuild: bool,
) -> (Scenario, SimDuration, FaultPlan) {
    let mut wan = builders::fig7_example();
    let shared = wan.link(LinkId(0)).fiber_id;
    wan.link_mut(LinkId(2)).fiber_id = shared;
    let fiber_of_link: Vec<usize> =
        wan.links().map(|(_, link)| link.fiber_id).collect();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let horizon = match scale {
        Scale::Quick => SimDuration::from_days(7),
        Scale::Full | Scale::Scaled(_) => SimDuration::from_days(60),
    };
    // Marginal SNR baselines so the fleet is already walking between
    // rungs when the amplifier events land.
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 12.8,
        fiber_baseline_sd_db: 0.3,
        wavelength_jitter_sd_db: 0.4,
        ..FleetConfig::paper()
    };
    let plan = FaultPlanConfig {
        n_links: wan.n_links(),
        horizon,
        // Enough transceiver flakiness that staged commits fail mid-way
        // and the rollback path gets exercised.
        bvt_rate_per_link_day: 1.5,
        bvt_mean_duration: SimDuration::from_hours(8),
        // The SRLG layer: amplifier-span outages per *fiber segment*.
        amplifier_rate_per_fiber_day: 0.25,
        amplifier_mean_duration: SimDuration::from_hours(2),
        amplifier_mean_severity_db: 14.0,
        fiber_of_link,
        seed: 0x5A16,
        ..FaultPlanConfig::default()
    }
    .generate();
    let config = ScenarioConfig {
        fault_plan: Some(plan.clone()),
        make_before_break,
        full_rebuild,
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .observer(super::observer())
        .build()
        .expect("SRLG campaign wiring is valid");
    (scenario, horizon, plan)
}

fn run_arm(scale: Scale, make_before_break: bool) -> (ScenarioReport, FaultPlan, SimDuration) {
    let (mut scenario, horizon, plan) = build(scale, make_before_break);
    let result = scenario
        .run(horizon, &SwanTe::default())
        .expect("SRLG campaign horizon fits its telemetry");
    (result, plan, horizon)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "srlg",
        "correlated SRLG fault domains, make-before-break vs break-then-make",
    );
    // The two arms replay the same fault plan independently — run them
    // concurrently; the pair comes back in (MBB, legacy) order.
    let ((mbb, plan, horizon), (legacy, _, _)) =
        parallel_pair(|| run_arm(scale, true), || run_arm(scale, false));

    let (bvt_events, _, _, optical_events) = plan.class_counts();
    report.line(format!(
        "injected over {horizon}: {optical_events} amplifier-span (SRLG) events across \
         {} correlated faults, {bvt_events} per-link BVT faults",
        plan.correlated_count(),
    ));
    report.line(format!(
        "outage attribution (MBB arm): {} correlated vs {} independent link-ticks — \
         {:.1}% of outage time traces to shared fiber segments",
        mbb.correlated_outage_link_ticks,
        mbb.independent_outage_link_ticks,
        100.0 * mbb.correlated_outage_share(),
    ));
    report.line(format!(
        "make-before-break: {} failed changes, {} rolled back cleanly, availability {:.5}, \
         mean gain {:.1}%",
        mbb.failed_changes,
        mbb.rolled_back_changes,
        mbb.availability(),
        100.0 * mbb.mean_gain(),
    ));
    report.line(format!(
        "break-then-make:   {} failed changes, {} rolled back, availability {:.5}, \
         mean gain {:.1}%",
        legacy.failed_changes,
        legacy.rolled_back_changes,
        legacy.availability(),
        100.0 * legacy.mean_gain(),
    ));
    report.line(format!(
        "downtime: {} (MBB) vs {} (legacy); TE fallbacks {} vs {}",
        mbb.reconfig_downtime,
        legacy.reconfig_downtime,
        mbb.te_fallbacks,
        legacy.te_fallbacks,
    ));

    let series: Vec<(f64, f64)> = mbb
        .samples
        .iter()
        .map(|s| (s.time.since_epoch().as_hours_f64(), s.throughput))
        .collect();
    report.csv("srlg_mbb_throughput.csv", series_csv("hours,dynamic_gbps", &series));
    let series: Vec<(f64, f64)> = legacy
        .samples
        .iter()
        .map(|s| (s.time.since_epoch().as_hours_f64(), s.throughput))
        .collect();
    report.csv("srlg_legacy_throughput.csv", series_csv("hours,dynamic_gbps", &series));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srlg_experiment_runs() {
        let r = run(Scale::Quick);
        let text = r.render();
        assert!(text.contains("SRLG"));
        assert!(text.contains("make-before-break"));
        assert_eq!(r.csv.len(), 2);
    }

    #[test]
    fn srlg_campaign_is_deterministic_and_correlated() {
        let (a, plan, _) = run_arm(Scale::Quick, true);
        let (b, _, _) = run_arm(Scale::Quick, true);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must reproduce byte-identically"
        );
        // The plan really schedules shared-segment events, and whenever
        // outage occurred at all, some of it is attributed correlated.
        assert!(plan.correlated_count() > 0, "no SRLG events generated");
        if a.outage_link_ticks > 0 {
            assert!(
                a.correlated_outage_link_ticks > 0,
                "amplifier campaign produced outage but none attributed correlated"
            );
        }
    }
}
