//! Theorem 1, executed: min-cost max-flow on the augmented graph G′
//! equals max-flow on the dynamic-capacity graph G, across hard-coded and
//! randomised topologies.

use crate::{Report, Scale};
use rwc_core::augment::AugmentConfig;
use rwc_core::penalty::PenaltyPolicy;
use rwc_core::theorem::check_single_commodity;
use rwc_topology::graph::NodeId;
use rwc_topology::random::{waxman, WaxmanConfig};
use rwc_topology::{builders, WanTopology};
use rwc_util::rng::Xoshiro256;
use rwc_util::units::Db;
use std::fmt::Write as _;

fn config() -> AugmentConfig {
    AugmentConfig { penalty: PenaltyPolicy::Uniform(10.0), ..Default::default() }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("thm1", "Theorem 1: min-cost max-flow on G′ ≡ max-flow on G");
    let trials = match scale {
        Scale::Quick => 20,
        Scale::Full | Scale::Scaled(_) => 200,
    };

    let mut csv = String::from("case,static_gbps,augmented_gbps,upgraded_gbps,holds\n");
    let mut all_hold = true;
    let mut run_case = |name: &str, wan: &WanTopology, src: NodeId, dst: NodeId| {
        let r = check_single_commodity(wan, &config(), src, dst);
        all_hold &= r.holds;
        let _ = writeln!(
            csv,
            "{name},{},{},{},{}",
            r.static_value, r.augmented_value, r.upgraded_value, r.holds
        );
        r
    };

    // Named topologies.
    let abilene = builders::abilene();
    let r = run_case(
        "abilene SEA→NYC",
        &abilene,
        abilene.node_by_name("SEA").unwrap(),
        abilene.node_by_name("NYC").unwrap(),
    );
    report.line(format!(
        "abilene SEA→NYC: static {:.0} G, dynamic {:.0} G, holds={}",
        r.static_value, r.augmented_value, r.holds
    ));
    let b4 = builders::b4_like();
    let r = run_case("b4 US-W1→EU-1", &b4, NodeId(0), NodeId(6));
    report.line(format!(
        "b4-like US-W1→EU-1: static {:.0} G, dynamic {:.0} G, holds={}",
        r.static_value, r.augmented_value, r.holds
    ));

    // Randomised sweep.
    let mut rng = Xoshiro256::seed_from_u64(0x7733);
    let mut held = 0usize;
    let mut gains = Vec::new();
    for seed in 0..trials as u64 {
        let mut wan =
            waxman(&WaxmanConfig { seed, n_nodes: 10, ..WaxmanConfig::default() });
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(rng.uniform_in(6.6, 14.5)));
        }
        let src = NodeId(rng.below(wan.n_nodes()));
        let mut dst = NodeId(rng.below(wan.n_nodes()));
        if dst == src {
            dst = NodeId((src.0 + 1) % wan.n_nodes());
        }
        let r = run_case(&format!("waxman#{seed}"), &wan, src, dst);
        if r.holds {
            held += 1;
        }
        if r.static_value > 0.0 {
            gains.push(r.augmented_value / r.static_value - 1.0);
        }
    }
    report.line(format!("random Waxman sweep: {held}/{trials} equivalences hold"));
    if !gains.is_empty() {
        let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
        report.line(format!(
            "mean single-pair max-flow gain from dynamic capacities: {:.0}%",
            100.0 * mean_gain
        ));
    }
    // Multicommodity corollary on the Fig. 7 scenario.
    {
        use rwc_core::theorem::check_multicommodity;
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5));
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0));
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = rwc_te::demand::DemandMatrix::new();
        dm.add(a, b, rwc_util::units::Gbps(125.0), rwc_te::demand::Priority::Elastic);
        dm.add(c, d, rwc_util::units::Gbps(125.0), rwc_te::demand::Priority::Elastic);
        let mc = check_multicommodity(&wan, &config(), &dm);
        all_hold &= mc.holds;
        report.line(format!(
            "multicommodity corollary (Fig. 7 demands): static {:.0} G, augmented {:.0} G, \
             upgraded {:.0} G, holds={}",
            mc.static_total, mc.augmented_total, mc.upgraded_total, mc.holds
        ));
    }
    report.line(format!("ALL CASES HOLD: {all_hold}"));
    report.csv("thm1_equivalence.csv", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_hold() {
        let text = run(Scale::Quick).render();
        assert!(text.contains("ALL CASES HOLD: true"), "{text}");
        assert!(text.contains("20/20"));
    }
}
