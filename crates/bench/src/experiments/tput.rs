//! The paper's closing simulation: "we … simulate the throughput gains
//! from deploying our approach."
//!
//! For each topology (Abilene, B4-like, Waxman) and TE algorithm (SWAN-,
//! B4-, CSPF-style), sweep a gravity demand matrix from light to
//! overloaded and compare the throughput of static 100 G links against
//! dynamic capacities via the graph abstraction. Expected shape: identical
//! under light load, and a widening dynamic-capacity win as demand grows —
//! bounded by each link's SNR headroom.

use crate::{Report, Scale};
use rwc_core::{augment, translate, AugmentConfig, PenaltyPolicy};
use rwc_te::b4::B4Te;
use rwc_te::cspf::CspfTe;
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::TeProblem;
use rwc_te::swan::SwanTe;
use rwc_te::TeAlgorithm;
use rwc_topology::random::{waxman, WaxmanConfig};
use rwc_topology::{builders, WanTopology};
use rwc_util::units::Gbps;
use std::fmt::Write as _;

fn topologies() -> Vec<(&'static str, WanTopology)> {
    vec![
        ("abilene", builders::abilene()),
        ("b4-like", builders::b4_like()),
        ("waxman16", waxman(&WaxmanConfig { n_nodes: 16, seed: 5, ..Default::default() })),
    ]
}

fn algorithms() -> Vec<(&'static str, Box<dyn TeAlgorithm>)> {
    vec![
        ("swan", Box::new(SwanTe::default())),
        ("b4", Box::new(B4Te::default())),
        ("cspf", Box::new(CspfTe::default())),
    ]
}

/// One measurement cell.
pub struct Cell {
    /// Topology name.
    pub topology: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Demand multiplier.
    pub load: f64,
    /// Static-capacity throughput.
    pub static_tput: f64,
    /// Dynamic-capacity throughput (augmented).
    pub dynamic_tput: f64,
    /// Links upgraded by translation.
    pub upgrades: usize,
}

/// Sweeps all cells (shared with the Criterion benches).
pub fn sweep(scale: Scale) -> Vec<Cell> {
    let loads: &[f64] = match scale {
        Scale::Quick => &[0.5, 1.0, 1.5, 2.0],
        Scale::Full | Scale::Scaled(_) => &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0],
    };
    let mut cells = Vec::new();
    for (topo_name, wan) in topologies() {
        // Base demand: total volume ≈ half the network's static capacity.
        let base_volume = wan.total_capacity() * 0.5;
        for (algo_name, algo) in algorithms() {
            for &load in loads {
                let dm = DemandMatrix::gravity(&wan, Gbps(base_volume.value()), 11)
                    .scaled(load);
                let static_problem = TeProblem::from_wan(&wan, &dm);
                let static_sol = algo.solve(&static_problem);
                let cfg = AugmentConfig {
                    penalty: PenaltyPolicy::Uniform(1.0),
                    ..Default::default()
                };
                let aug = augment(&wan, &dm, &cfg, &[]);
                let dyn_sol = algo.solve(&aug.problem);
                let tr = translate(&aug, &wan, &dyn_sol).expect("experiment translation on solver output");
                cells.push(Cell {
                    topology: topo_name,
                    algorithm: algo_name,
                    load,
                    static_tput: static_sol.total,
                    dynamic_tput: dyn_sol.total,
                    upgrades: tr.upgrades.len(),
                });
            }
        }
    }
    cells
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report =
        Report::new("tput", "throughput: static 100 G vs dynamic capacities (TE simulation)");
    let cells = sweep(scale);
    let mut csv =
        String::from("topology,algorithm,load,static_gbps,dynamic_gbps,gain_pct,upgrades\n");
    report.line(format!(
        "{:<10} {:<6} {:>5} {:>12} {:>12} {:>8} {:>9}",
        "topology", "algo", "load", "static Gbps", "dynamic Gbps", "gain%", "upgrades"
    ));
    for c in &cells {
        let gain = if c.static_tput > 0.0 {
            100.0 * (c.dynamic_tput / c.static_tput - 1.0)
        } else {
            0.0
        };
        report.line(format!(
            "{:<10} {:<6} {:>5.2} {:>12.0} {:>12.0} {:>8.1} {:>9}",
            c.topology, c.algorithm, c.load, c.static_tput, c.dynamic_tput, gain, c.upgrades
        ));
        let _ = writeln!(
            csv,
            "{},{},{},{:.1},{:.1},{:.2},{}",
            c.topology, c.algorithm, c.load, c.static_tput, c.dynamic_tput, gain, c.upgrades
        );
    }
    // Headline: gain at the heaviest load, averaged over cells.
    let heavy: Vec<&Cell> =
        cells.iter().filter(|c| c.load == cells.last().unwrap().load).collect();
    let mean_gain = heavy
        .iter()
        .filter(|c| c.static_tput > 0.0)
        .map(|c| c.dynamic_tput / c.static_tput - 1.0)
        .sum::<f64>()
        / heavy.len() as f64;
    report.line(format!(
        "mean throughput gain at the heaviest load: {:.0}% (paper argues 75–100% capacity \
         headroom on most links)",
        100.0 * mean_gain
    ));
    report.csv("tput_static_vs_dynamic.csv", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_never_loses_and_wins_under_load() {
        let cells = sweep(Scale::Quick);
        for c in &cells {
            assert!(
                c.dynamic_tput >= c.static_tput - 1.0,
                "{}/{} load {}: dynamic {} < static {}",
                c.topology,
                c.algorithm,
                c.load,
                c.dynamic_tput,
                c.static_tput
            );
        }
        // Under the heaviest load, dynamic must win somewhere substantial.
        let max_gain = cells
            .iter()
            .filter(|c| c.static_tput > 0.0)
            .map(|c| c.dynamic_tput / c.static_tput)
            .fold(0.0f64, f64::max);
        assert!(max_gain > 1.15, "best gain only {max_gain}");
    }

    #[test]
    fn light_load_has_no_gain() {
        let cells = sweep(Scale::Quick);
        for c in cells.iter().filter(|c| c.load <= 0.5) {
            let gain = c.dynamic_tput / c.static_tput.max(1.0);
            assert!(gain < 1.1, "{}/{}: light-load gain {gain}", c.topology, c.algorithm);
        }
    }

    #[test]
    fn upgrades_grow_with_load() {
        let cells = sweep(Scale::Quick);
        // For swan on abilene, upgrades at load 2.0 >= upgrades at 0.5.
        let ups = |load: f64| {
            cells
                .iter()
                .find(|c| c.topology == "abilene" && c.algorithm == "swan" && c.load == load)
                .unwrap()
                .upgrades
        };
        assert!(ups(2.0) >= ups(0.5));
    }
}
