//! # rwc-bench
//!
//! The figure-reproduction harness: one experiment per table/figure of the
//! paper, shared between the `repro` binary (which prints the series and
//! writes CSV artifacts) and the Criterion benches (which time the
//! underlying kernels).
//!
//! Run everything:
//!
//! ```text
//! cargo run -p rwc-bench --release --bin repro -- all
//! cargo run -p rwc-bench --release --bin repro -- --full fig2a   # paper-scale fleet
//! ```

// `deny` rather than `forbid`: the counting allocator in [`alloc`] needs a
// scoped `allow` for its `GlobalAlloc` forwarding; everything else stays
// unsafe-free.
#![deny(unsafe_code)]

pub mod alloc;
pub mod cli;
pub mod experiments;
pub mod parallel;
pub mod perf;
pub mod report;

pub use report::{Report, Scale};
