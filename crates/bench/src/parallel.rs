//! Parallel fleet analysis and the experiment-arm driver.
//!
//! The `--full` reproduction sweeps 2,000 links × 87,600 samples. Links
//! are generated independently from `(seed, link_id)`, so the sweep is
//! embarrassingly parallel. Work is distributed through a **shared
//! atomic-counter chunk queue** rather than fixed striping: workers pull
//! the next contiguous chunk of link ids off the counter as they finish,
//! so one slow stretch of links (long traces, pathological SNR walks)
//! cannot idle the rest of the pool the way a pre-assigned stripe can.
//!
//! Determinism is preserved by separating *scheduling* from *merging*:
//! whichever worker processes chunk `c`, its partial accumulator lands in
//! slot `c`, and slots merge in chunk order — the exact link order of a
//! sequential sweep, regardless of thread count or scheduling jitter.
//!
//! [`parallel_arms`] generalises the same pattern to whole experiment
//! arms (srlg's two arms, the ablation grid, multi-seed campaigns): each
//! closure runs on the scoped pool, results come back in input order.

use rwc_obs::{MetricsObserver, MetricsRegistry, Observer};
use rwc_optics::ModulationTable;
use rwc_telemetry::analysis::LinkAnalysis;
use rwc_telemetry::{AnalysisMode, FleetAccumulator, FleetGenerator, FleetKernel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Analyses the whole fleet across `n_threads` workers pulling chunks
/// from a shared queue, on the fused fast path. The merged result is
/// identical to a sequential sweep for every thread count.
pub fn parallel_fleet_analysis(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
) -> FleetAccumulator {
    parallel_fleet_analysis_with(gen, table, n_threads, AnalysisMode::Fused)
}

/// [`parallel_fleet_analysis`] with an explicit analysis path. Each worker
/// owns one [`FleetKernel`], so on the fused path a sweep's steady-state
/// allocations are `n_threads` sample buffers — not a trace per link.
pub fn parallel_fleet_analysis_with(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
    mode: AnalysisMode,
) -> FleetAccumulator {
    parallel_fleet_analysis_observed(gen, table, n_threads, mode, None)
}

/// [`parallel_fleet_analysis_with`] with observability: each worker owns a
/// private [`MetricsObserver`] wired into its [`FleetKernel`] (no shared
/// atomics on the per-sample hot path), and the per-worker snapshots are
/// absorbed into `registry` once the pool drains. Counter and histogram-
/// bucket addition commute, so the merged metrics are identical to a
/// sequential sweep's regardless of thread count or chunk scheduling —
/// the same contract the accumulator merge already keeps. The legacy
/// (trace-materialising) path predates the kernel instrumentation and
/// publishes nothing.
pub fn parallel_fleet_analysis_observed(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
    mode: AnalysisMode,
    registry: Option<&MetricsRegistry>,
) -> FleetAccumulator {
    assert!(n_threads > 0, "need at least one worker");
    let n_links = gen.n_links();
    // Several chunks per worker so the queue can actually rebalance;
    // chunky enough that the counter isn't contended per link.
    let chunk = n_links.div_ceil(n_threads * 4).max(1);
    let n_chunks = n_links.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<FleetAccumulator>>> =
        (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..n_threads.min(n_chunks) {
            scope.spawn(|| {
                // Per-worker registry: the kernel publishes episode
                // counters without cross-thread contention.
                let worker_obs = registry.map(|_| Arc::new(MetricsObserver::new()));
                let mut kernel = match &worker_obs {
                    Some(obs) => {
                        FleetKernel::with_observer(Arc::clone(obs) as Arc<dyn Observer>)
                    }
                    None => FleetKernel::new(),
                }; // reused across chunks
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let mut acc = FleetAccumulator::new();
                    let start = c * chunk;
                    let end = (start + chunk).min(n_links);
                    for link_id in start..end {
                        match mode {
                            AnalysisMode::Fused => {
                                acc.push(&kernel.analyze_generated(gen, link_id, table));
                            }
                            AnalysisMode::Legacy => {
                                let link = gen.link(link_id);
                                acc.push(&LinkAnalysis::new(&link.trace, table));
                            }
                        }
                    }
                    *slots[c].lock().expect("slot poisoned") = Some(acc);
                }
                if let (Some(registry), Some(obs)) = (registry, worker_obs) {
                    registry.absorb(&obs.snapshot());
                }
            });
        }
    });
    // Merge in chunk order = link-id order = the sequential order.
    let mut merged = FleetAccumulator::new();
    for slot in slots {
        let partial = slot.into_inner().expect("slot poisoned").expect("chunk not processed");
        merged.merge(partial);
    }
    merged
}

/// Runs independent experiment arms concurrently on a scoped pool and
/// returns their results **in input order** — the deterministic-merge
/// contract: output depends only on the arms, never on scheduling.
///
/// Arms are pulled from the same atomic-counter queue as the fleet sweep,
/// so a long arm (srlg's MBB leg, a slow ablation cell) doesn't serialise
/// behind a fixed assignment. Panics in an arm propagate to the caller.
pub fn parallel_arms<T: Send>(arms: Vec<Box<dyn FnOnce() -> T + Send + '_>>) -> Vec<T> {
    /// A queued arm: taken exactly once by whichever worker claims its index.
    type QueuedArm<'a, T> = Mutex<Option<Box<dyn FnOnce() -> T + Send + 'a>>>;
    let n = arms.len();
    if n == 0 {
        return Vec::new();
    }
    let queue: Vec<QueuedArm<'_, T>> = arms.into_iter().map(|a| Mutex::new(Some(a))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..default_workers().min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let arm = queue[i].lock().expect("arm poisoned").take().expect("arm taken twice");
                *slots[i].lock().expect("slot poisoned") = Some(arm());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("arm not run"))
        .collect()
}

/// Two-arm convenience for A/B experiments (MBB vs legacy, reactive vs
/// predictive): runs both concurrently, returns them as a pair.
pub fn parallel_pair<T: Send, A, B>(a: A, b: B) -> (T, T)
where
    A: FnOnce() -> T + Send,
    B: FnOnce() -> T + Send,
{
    let mut results = parallel_arms(vec![Box::new(a) as Box<_>, Box::new(b) as Box<_>]);
    let second = results.pop().expect("two arms in, two out");
    let first = results.pop().expect("two arms in, two out");
    (first, second)
}

/// Picks a sensible worker count for this machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_telemetry::FleetConfig;
    use rwc_util::time::SimDuration;
    use rwc_util::units::{Db, Gbps};

    fn small() -> FleetGenerator {
        FleetGenerator::new(FleetConfig {
            n_fibers: 2,
            wavelengths_per_fiber: 10,
            horizon: SimDuration::from_days(30),
            ..FleetConfig::paper()
        })
    }

    #[test]
    fn parallel_matches_sequential() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let sequential = gen.fleet_analysis(&table);
        for threads in [1, 2, 3, 7] {
            let parallel = parallel_fleet_analysis(&gen, &table, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            assert_eq!(parallel.total_gain(), sequential.total_gain(), "threads={threads}");
            assert_eq!(
                parallel.fraction_hdr_below(Db(2.0)),
                sequential.fraction_hdr_below(Db(2.0)),
                "threads={threads}"
            );
            assert_eq!(
                parallel.fraction_feasible_at_least(Gbps(175.0)),
                sequential.fraction_feasible_at_least(Gbps(175.0)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn observed_parallel_metrics_match_sequential() {
        let gen = small();
        let table = ModulationTable::paper_default();
        // Sequential reference: one kernel publishing into one registry.
        let seq_obs = Arc::new(MetricsObserver::new());
        let mut kernel = FleetKernel::with_observer(Arc::clone(&seq_obs) as Arc<dyn Observer>);
        let mut seq_acc = FleetAccumulator::new();
        for link_id in 0..gen.n_links() {
            seq_acc.push(&kernel.analyze_generated(&gen, link_id, &table));
        }
        let seq_metrics = seq_obs.snapshot().to_json();
        for threads in [1, 2, 5] {
            let registry = MetricsRegistry::new();
            let acc = parallel_fleet_analysis_observed(
                &gen,
                &table,
                threads,
                AnalysisMode::Fused,
                Some(&registry),
            );
            assert_eq!(
                serde_json::to_string(&acc).unwrap(),
                serde_json::to_string(&seq_acc).unwrap(),
                "threads={threads}"
            );
            assert_eq!(
                registry.snapshot().to_json(),
                seq_metrics,
                "per-worker metrics merge diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn fused_and_legacy_modes_are_byte_identical() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let fused = parallel_fleet_analysis_with(&gen, &table, 3, AnalysisMode::Fused);
        let legacy = parallel_fleet_analysis_with(&gen, &table, 3, AnalysisMode::Legacy);
        assert_eq!(
            serde_json::to_string(&fused).expect("accumulator serializes"),
            serde_json::to_string(&legacy).expect("accumulator serializes"),
            "fused parallel sweep diverged from the legacy path"
        );
    }

    #[test]
    fn arms_return_in_input_order() {
        // More arms than workers, deliberately uneven, values distinct:
        // results must come back exactly in input order.
        let arms: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..37)
            .map(|i| {
                Box::new(move || {
                    // Uneven busywork so completion order scrambles.
                    let spins = (37 - i) * 1000;
                    let mut acc = 0usize;
                    for k in 0..spins {
                        acc = acc.wrapping_add(k);
                    }
                    std::hint::black_box(acc); // keep the busywork alive
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = parallel_arms(arms);
        assert_eq!(results, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn pair_preserves_sides() {
        let (a, b) = parallel_pair(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn empty_arms_are_fine() {
        let results: Vec<u8> = parallel_arms(Vec::new());
        assert!(results.is_empty());
    }

    #[test]
    fn default_workers_sane() {
        let w = default_workers();
        assert!((1..=16).contains(&w));
    }
}
