//! Parallel fleet analysis.
//!
//! The `--full` reproduction sweeps 2,000 links × 87,600 samples. Links
//! are generated independently from `(seed, link_id)`, so the sweep is
//! embarrassingly parallel: each worker analyses a stripe of link ids into
//! its own [`FleetAccumulator`], and the stripes merge at the end.
//! Determinism is preserved — the merged statistics are identical to a
//! sequential sweep regardless of thread count.

use rwc_optics::ModulationTable;
use rwc_telemetry::analysis::LinkAnalysis;
use rwc_telemetry::{FleetAccumulator, FleetGenerator};

/// Analyses the whole fleet across `n_threads` workers.
pub fn parallel_fleet_analysis(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
) -> FleetAccumulator {
    assert!(n_threads > 0, "need at least one worker");
    let n_links = gen.n_links();
    let stripe = n_links.div_ceil(n_threads);
    let mut partials: Vec<FleetAccumulator> = Vec::with_capacity(n_threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut acc = FleetAccumulator::new();
                    let start = w * stripe;
                    let end = ((w + 1) * stripe).min(n_links);
                    for link_id in start..end {
                        let link = gen.link(link_id);
                        acc.push(&LinkAnalysis::new(&link.trace, table));
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    let mut merged = FleetAccumulator::new();
    for p in partials {
        merged.merge(p);
    }
    merged
}

/// Picks a sensible worker count for this machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_telemetry::FleetConfig;
    use rwc_util::time::SimDuration;
    use rwc_util::units::{Db, Gbps};

    fn small() -> FleetGenerator {
        FleetGenerator::new(FleetConfig {
            n_fibers: 2,
            wavelengths_per_fiber: 10,
            horizon: SimDuration::from_days(30),
            ..FleetConfig::paper()
        })
    }

    #[test]
    fn parallel_matches_sequential() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let sequential = gen.fleet_analysis(&table);
        for threads in [1, 2, 3, 7] {
            let parallel = parallel_fleet_analysis(&gen, &table, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            assert_eq!(parallel.total_gain(), sequential.total_gain(), "threads={threads}");
            assert_eq!(
                parallel.fraction_hdr_below(Db(2.0)),
                sequential.fraction_hdr_below(Db(2.0)),
                "threads={threads}"
            );
            assert_eq!(
                parallel.fraction_feasible_at_least(Gbps(175.0)),
                sequential.fraction_feasible_at_least(Gbps(175.0)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn default_workers_sane() {
        let w = default_workers();
        assert!(w >= 1 && w <= 16);
    }
}
