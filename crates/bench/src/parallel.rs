//! Parallel fleet analysis and the experiment-arm driver.
//!
//! The `--full` reproduction sweeps 2,000 links × 87,600 samples. Links
//! are generated independently from `(seed, link_id)`, so the sweep is
//! embarrassingly parallel. Work is distributed through a **shared
//! atomic-counter chunk queue** rather than fixed striping: workers pull
//! the next contiguous chunk of link ids off the counter as they finish,
//! so one slow stretch of links (long traces, pathological SNR walks)
//! cannot idle the rest of the pool the way a pre-assigned stripe can.
//!
//! Determinism is preserved by separating *scheduling* from *merging*:
//! whichever worker processes chunk `c`, its partial accumulator lands in
//! slot `c`, and slots merge in chunk order — the exact link order of a
//! sequential sweep, regardless of thread count or scheduling jitter.
//!
//! The chunk loop itself now lives in `rwc-harness`: the sweep runs under
//! [`rwc_harness::run_fleet_sweep`], which adds panic isolation (a chunk
//! that panics is retried with jittered backoff instead of tearing down
//! the pool), a poison-free mpsc merge handoff, and optional
//! checkpoint/resume. The functions here are the bench-flavoured
//! front-ends that preserve the original infallible signatures.
//!
//! [`parallel_arms`] generalises the same pattern to whole experiment
//! arms (srlg's two arms, the ablation grid, multi-seed campaigns): each
//! closure runs on the scoped pool, results come back in input order.

use rwc_harness::{
    ExecutorConfig, HarnessError, SweepCheckpoint, SweepOutcome, SweepSpec,
};
use rwc_obs::MetricsRegistry;
use rwc_optics::ModulationTable;
use rwc_telemetry::{AnalysisMode, FleetAccumulator, FleetGenerator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Analyses the whole fleet across `n_threads` workers pulling chunks
/// from a shared queue, on the fused fast path. The merged result is
/// identical to a sequential sweep for every thread count.
pub fn parallel_fleet_analysis(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
) -> FleetAccumulator {
    parallel_fleet_analysis_with(gen, table, n_threads, AnalysisMode::Fused)
}

/// [`parallel_fleet_analysis`] with an explicit analysis path. Each worker
/// owns one [`FleetKernel`], so on the fused path a sweep's steady-state
/// allocations are `n_threads` sample buffers — not a trace per link.
pub fn parallel_fleet_analysis_with(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
    mode: AnalysisMode,
) -> FleetAccumulator {
    parallel_fleet_analysis_observed(gen, table, n_threads, mode, None)
}

/// [`parallel_fleet_analysis_with`] with observability: each worker owns a
/// private [`MetricsObserver`] wired into its [`FleetKernel`] (no shared
/// atomics on the per-sample hot path), and the per-worker snapshots are
/// absorbed into `registry` once the pool drains. Counter and histogram-
/// bucket addition commute, so the merged metrics are identical to a
/// sequential sweep's regardless of thread count or chunk scheduling —
/// the same contract the accumulator merge already keeps. The legacy
/// (trace-materialising) path predates the kernel instrumentation and
/// publishes nothing.
pub fn parallel_fleet_analysis_observed(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
    mode: AnalysisMode,
    registry: Option<&MetricsRegistry>,
) -> FleetAccumulator {
    match parallel_fleet_analysis_hardened(
        gen,
        table,
        n_threads,
        mode,
        registry,
        &ExecutorConfig::default(),
        None,
    ) {
        Ok(acc) => acc,
        // The default config has no chaos plan, so a failure here is a
        // real chunk panic that survived its retry budget.
        Err(err) => panic!("fleet sweep failed: {err}"),
    }
}

/// The fully hardened sweep: the bench front-end over
/// [`rwc_harness::run_fleet_sweep`]. Panicking chunks are retried with
/// jittered backoff; `cfg.checkpoint` enables interval checkpointing and
/// `resume` restores a previous run's completed chunks (the merged result
/// is byte-identical to an uninterrupted sweep). The per-chunk metrics
/// snapshots are absorbed into `registry` in chunk order, which matches
/// the per-worker absorb of earlier revisions because counter and
/// histogram-bucket addition commute.
///
/// `cfg.chaos` must not carry a kill budget here — mid-run kills are a
/// chaos-experiment concern and are driven through the harness directly.
pub fn parallel_fleet_analysis_hardened(
    gen: &FleetGenerator,
    table: &ModulationTable,
    n_threads: usize,
    mode: AnalysisMode,
    registry: Option<&MetricsRegistry>,
    cfg: &ExecutorConfig,
    resume: Option<&SweepCheckpoint>,
) -> Result<FleetAccumulator, HarnessError> {
    assert!(n_threads > 0, "need at least one worker");
    assert!(
        cfg.chaos.as_ref().is_none_or(|p| p.kill_after_chunks.is_none()),
        "kill plans belong to the chaos experiment, not the bench sweep"
    );
    let spec = SweepSpec {
        gen,
        table,
        mode,
        n_threads,
        collect_metrics: registry.is_some(),
    };
    match rwc_harness::run_fleet_sweep(&spec, cfg, resume)? {
        SweepOutcome::Completed(result) => {
            if let (Some(registry), Some(metrics)) = (registry, &result.metrics) {
                registry.absorb(metrics);
            }
            Ok(result.accumulator)
        }
        SweepOutcome::Killed { .. } => unreachable!("no kill plan configured"),
    }
}

/// Runs independent experiment arms concurrently on a scoped pool and
/// returns their results **in input order** — the deterministic-merge
/// contract: output depends only on the arms, never on scheduling.
///
/// Arms are pulled from the same atomic-counter queue as the fleet sweep,
/// so a long arm (srlg's MBB leg, a slow ablation cell) doesn't serialise
/// behind a fixed assignment. Panics in an arm propagate to the caller.
/// Results come back over an mpsc channel instead of shared `Mutex`
/// slots, so a panicking arm can never poison a lock another worker (or
/// the collector) would have to unwrap.
pub fn parallel_arms<T: Send>(arms: Vec<Box<dyn FnOnce() -> T + Send + '_>>) -> Vec<T> {
    /// A queued arm: taken exactly once by whichever worker claims its index.
    type QueuedArm<'a, T> = Mutex<Option<Box<dyn FnOnce() -> T + Send + 'a>>>;
    let n = arms.len();
    if n == 0 {
        return Vec::new();
    }
    let queue: Vec<QueuedArm<'_, T>> = arms.into_iter().map(|a| Mutex::new(Some(a))).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..default_workers().min(n) {
            let tx = tx.clone();
            let queue = &queue;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The lock is held only for the take — arm() runs outside
                // it, so even an arm that panics leaves no poisoned lock.
                let arm = queue[i].lock().expect("arm queue poisoned").take();
                let arm = arm.expect("arm taken twice");
                tx.send((i, arm())).ok();
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().map(|s| s.expect("arm not run")).collect()
}

/// Two-arm convenience for A/B experiments (MBB vs legacy, reactive vs
/// predictive): runs both concurrently, returns them as a pair.
pub fn parallel_pair<T: Send, A, B>(a: A, b: B) -> (T, T)
where
    A: FnOnce() -> T + Send,
    B: FnOnce() -> T + Send,
{
    let mut results = parallel_arms(vec![Box::new(a) as Box<_>, Box::new(b) as Box<_>]);
    let second = results.pop().expect("two arms in, two out");
    let first = results.pop().expect("two arms in, two out");
    (first, second)
}

/// Picks a sensible worker count for this machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_obs::{MetricsObserver, Observer};
    use rwc_telemetry::{FleetConfig, FleetKernel};
    use rwc_util::time::SimDuration;
    use rwc_util::units::{Db, Gbps};
    use std::sync::Arc;

    fn small() -> FleetGenerator {
        FleetGenerator::new(FleetConfig {
            n_fibers: 2,
            wavelengths_per_fiber: 10,
            horizon: SimDuration::from_days(30),
            ..FleetConfig::paper()
        })
    }

    #[test]
    fn parallel_matches_sequential() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let sequential = gen.fleet_analysis(&table);
        for threads in [1, 2, 3, 7] {
            let parallel = parallel_fleet_analysis(&gen, &table, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            assert_eq!(parallel.total_gain(), sequential.total_gain(), "threads={threads}");
            assert_eq!(
                parallel.fraction_hdr_below(Db(2.0)),
                sequential.fraction_hdr_below(Db(2.0)),
                "threads={threads}"
            );
            assert_eq!(
                parallel.fraction_feasible_at_least(Gbps(175.0)),
                sequential.fraction_feasible_at_least(Gbps(175.0)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn observed_parallel_metrics_match_sequential() {
        let gen = small();
        let table = ModulationTable::paper_default();
        // Sequential reference: one kernel publishing into one registry.
        let seq_obs = Arc::new(MetricsObserver::new());
        let mut kernel = FleetKernel::with_observer(Arc::clone(&seq_obs) as Arc<dyn Observer>);
        let mut seq_acc = FleetAccumulator::new();
        for link_id in 0..gen.n_links() {
            seq_acc.push(&kernel.analyze_generated(&gen, link_id, &table));
        }
        let seq_metrics = seq_obs.snapshot().to_json();
        for threads in [1, 2, 5] {
            let registry = MetricsRegistry::new();
            let acc = parallel_fleet_analysis_observed(
                &gen,
                &table,
                threads,
                AnalysisMode::Fused,
                Some(&registry),
            );
            assert_eq!(
                serde_json::to_string(&acc).unwrap(),
                serde_json::to_string(&seq_acc).unwrap(),
                "threads={threads}"
            );
            assert_eq!(
                registry.snapshot().to_json(),
                seq_metrics,
                "per-worker metrics merge diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn fused_and_legacy_modes_are_byte_identical() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let fused = parallel_fleet_analysis_with(&gen, &table, 3, AnalysisMode::Fused);
        let legacy = parallel_fleet_analysis_with(&gen, &table, 3, AnalysisMode::Legacy);
        assert_eq!(
            serde_json::to_string(&fused).expect("accumulator serializes"),
            serde_json::to_string(&legacy).expect("accumulator serializes"),
            "fused parallel sweep diverged from the legacy path"
        );
    }

    #[test]
    fn panicking_chunk_no_longer_sinks_the_sweep() {
        // Regression: under the old Mutex-slot merge, a worker panic
        // poisoned the slot and the whole sweep died with it. Now the
        // harness catches the panic, retries the chunk, and the sweep
        // completes with byte-identical results and metrics.
        let gen = small();
        let table = ModulationTable::paper_default();
        let clean_registry = MetricsRegistry::new();
        let clean = parallel_fleet_analysis_observed(
            &gen,
            &table,
            3,
            AnalysisMode::Fused,
            Some(&clean_registry),
        );
        let chaotic_registry = MetricsRegistry::new();
        let cfg = ExecutorConfig {
            chaos: Some(rwc_harness::ChaosPlan::new(42).with_panic_chunk(0).with_panic_chunk(3)),
            ..ExecutorConfig::default()
        };
        let chaotic = parallel_fleet_analysis_hardened(
            &gen,
            &table,
            3,
            AnalysisMode::Fused,
            Some(&chaotic_registry),
            &cfg,
            None,
        )
        .expect("panicking chunks retry instead of failing the sweep");
        assert_eq!(
            serde_json::to_string(&chaotic).unwrap(),
            serde_json::to_string(&clean).unwrap(),
        );
        assert_eq!(chaotic_registry.snapshot().to_json(), clean_registry.snapshot().to_json());
    }

    #[test]
    fn exhausted_retry_budget_surfaces_as_typed_error() {
        let gen = small();
        let table = ModulationTable::paper_default();
        let cfg = ExecutorConfig {
            retry: rwc_harness::RetryPolicy { budget: 0, ..rwc_harness::RetryPolicy::default() },
            chaos: Some(rwc_harness::ChaosPlan::new(1).with_panic_chunk(2).with_poison_attempts(9)),
            ..ExecutorConfig::default()
        };
        match parallel_fleet_analysis_hardened(
            &gen,
            &table,
            2,
            AnalysisMode::Fused,
            None,
            &cfg,
            None,
        ) {
            Err(HarnessError::ChunkFailed { chunk, .. }) => assert_eq!(chunk, 2),
            other => panic!("expected ChunkFailed, got {other:?}"),
        }
    }

    #[test]
    fn arms_return_in_input_order() {
        // More arms than workers, deliberately uneven, values distinct:
        // results must come back exactly in input order.
        let arms: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..37)
            .map(|i| {
                Box::new(move || {
                    // Uneven busywork so completion order scrambles.
                    let spins = (37 - i) * 1000;
                    let mut acc = 0usize;
                    for k in 0..spins {
                        acc = acc.wrapping_add(k);
                    }
                    std::hint::black_box(acc); // keep the busywork alive
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = parallel_arms(arms);
        assert_eq!(results, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn pair_preserves_sides() {
        let (a, b) = parallel_pair(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn empty_arms_are_fine() {
        let results: Vec<u8> = parallel_arms(Vec::new());
        assert!(results.is_empty());
    }

    #[test]
    fn default_workers_sane() {
        let w = default_workers();
        assert!((1..=16).contains(&w));
    }
}
