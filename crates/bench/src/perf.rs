//! Machine-readable performance digest of the scenario round engine —
//! the payload behind `repro --bench-json` and the CI perf-smoke gate.
//!
//! Four arms of the *same* week-in-the-life scenario:
//!
//! | arm           | round engine            | TE solver            |
//! |---------------|-------------------------|----------------------|
//! | `full`        | rebuild everything      | SWAN (stateless)     |
//! | `incremental` | dirty-link + memo       | SWAN (stateless)     |
//! | `exact_cold`  | rebuild everything      | exact LP, cold       |
//! | `exact_warm`  | dirty-link + memo       | exact LP, warm-start |
//!
//! The SWAN pair must produce **byte-identical** reports (the incremental
//! engine is an optimisation, not an approximation) and is where the
//! headline `solve_speedup` comes from. The exact pair exercises the
//! warm-started flat simplex: objectives agree to solver tolerance, so
//! the digest reports the worst per-round throughput delta alongside the
//! warm-start hit rate.
//!
//! Timing lives in [`ScenarioTiming`] sidecars and never in the reports
//! themselves, so the determinism comparisons stay meaningful.

use crate::Scale;
use rwc_core::scenario::{Scenario, ScenarioConfig, ScenarioReport, ScenarioTiming};
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::exact::{ExactTe, IncrementalExactTe};
use rwc_te::swan::SwanTe;
use rwc_te::TeAlgorithm;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;
use rwc_util::time::SimDuration;
use rwc_util::units::Gbps;
use serde::{Deserialize, Serialize};

/// Timing digest of one scenario arm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArmPerf {
    /// TE rounds the arm completed.
    pub rounds: u64,
    /// Rounds per wall-clock second over the whole run.
    pub rounds_per_sec: f64,
    /// Median per-round solve time (static baseline + augmentation +
    /// augmented solve), microseconds.
    pub solve_p50_micros: u64,
    /// 99th-percentile per-round solve time, microseconds.
    pub solve_p99_micros: u64,
    /// Total microseconds spent in TE solves.
    pub total_solve_micros: u64,
}

impl ArmPerf {
    fn from_timing(t: &ScenarioTiming) -> Self {
        Self {
            rounds: t.solve_micros.len() as u64,
            rounds_per_sec: t.rounds_per_sec(),
            solve_p50_micros: t.solve_percentile_micros(0.50),
            solve_p99_micros: t.solve_percentile_micros(0.99),
            total_solve_micros: t.total_solve_micros(),
        }
    }
}

/// The `BENCH_scenario.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioPerf {
    /// Experiment id (always `"scenario"`).
    pub experiment: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Full-rebuild engine, SWAN solver.
    pub full: ArmPerf,
    /// Incremental engine, SWAN solver.
    pub incremental: ArmPerf,
    /// `full.total_solve_micros / incremental.total_solve_micros`.
    pub solve_speedup: f64,
    /// Whether the SWAN pair's reports serialized byte-identically.
    pub reports_identical: bool,
    /// Full-rebuild engine, cold exact LP.
    pub exact_cold: ArmPerf,
    /// Incremental engine, warm-started exact LP.
    pub exact_warm: ArmPerf,
    /// `exact_cold.total_solve_micros / exact_warm.total_solve_micros`.
    pub exact_solve_speedup: f64,
    /// Warm starts attempted by the incremental exact arm.
    pub warm_attempts: u64,
    /// Warm starts that reached optimality without a cold fallback.
    pub warm_hits: u64,
    /// `warm_hits / warm_attempts` in `[0, 1]`.
    pub warm_hit_rate: f64,
    /// Worst per-round |warm − cold| throughput difference (Gbps) between
    /// the exact arms — bounded by LP tolerance, not zero, because warm
    /// and cold may land on different optimal vertices.
    pub max_throughput_delta: f64,
}

/// Builds the perf scenario: continental-scale Abilene rather than the
/// experiment's 5-link Fig. 7 example, because the round-engine
/// optimisations (warm simplex bases, dirty-link patching) only show
/// their worth once the augmented LP has real size. SNR baselines sit
/// comfortably above the rung thresholds so ladders keep their shape
/// most rounds — the regime warm starts are designed for.
fn perf_build(scale: Scale, full_rebuild: bool) -> (Scenario, SimDuration) {
    let wan = builders::abilene();
    let pick = |n: &str| wan.node_by_name(n).expect("abilene site");
    let mut dm = DemandMatrix::new();
    for (s, t) in
        [("SEA", "NYC"), ("LAX", "WDC"), ("SNV", "CHI"), ("DEN", "ATL"), ("KSC", "NYC"), ("HOU", "CHI")]
    {
        dm.add(pick(s), pick(t), Gbps(120.0), Priority::Elastic);
    }
    let horizon = match scale {
        Scale::Quick => SimDuration::from_days(7),
        Scale::Full => SimDuration::from_days(30),
    };
    let fleet = FleetConfig {
        n_fibers: 2,
        wavelengths_per_fiber: 7,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 14.5,
        fiber_baseline_sd_db: 0.1,
        wavelength_jitter_sd_db: 0.15,
        ..FleetConfig::paper()
    };
    let config = ScenarioConfig { full_rebuild, ..ScenarioConfig::default() };
    (Scenario::new(wan, fleet, dm, config), horizon)
}

fn run_arm(
    scale: Scale,
    full_rebuild: bool,
    algorithm: &dyn TeAlgorithm,
) -> (ScenarioReport, ScenarioTiming) {
    let (mut s, horizon) = perf_build(scale, full_rebuild);
    s.try_run_timed(horizon, algorithm).expect("perf scenario wiring is valid")
}

/// Runs the four arms (sequentially, so the timings aren't fighting each
/// other for cores) and assembles the digest.
pub fn scenario_perf(scale: Scale) -> ScenarioPerf {
    let (full_report, full_t) = run_arm(scale, true, &SwanTe::default());
    let (inc_report, inc_t) = run_arm(scale, false, &SwanTe::default());
    let (cold_report, cold_t) = run_arm(scale, true, &ExactTe::default());
    let warm_algo = IncrementalExactTe::default();
    let (warm_report, warm_t) = run_arm(scale, false, &warm_algo);
    let stats = warm_algo.warm_stats().unwrap_or_default();

    let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
    let max_throughput_delta = cold_report
        .samples
        .iter()
        .zip(&warm_report.samples)
        .map(|(c, w)| (c.throughput - w.throughput).abs())
        .fold(0.0f64, f64::max);

    ScenarioPerf {
        experiment: "scenario".into(),
        scale: match scale {
            Scale::Quick => "quick".into(),
            Scale::Full => "full".into(),
        },
        solve_speedup: ratio(full_t.total_solve_micros(), inc_t.total_solve_micros()),
        reports_identical: serde_json::to_string(&full_report).expect("report serializes")
            == serde_json::to_string(&inc_report).expect("report serializes"),
        full: ArmPerf::from_timing(&full_t),
        incremental: ArmPerf::from_timing(&inc_t),
        exact_solve_speedup: ratio(cold_t.total_solve_micros(), warm_t.total_solve_micros()),
        exact_cold: ArmPerf::from_timing(&cold_t),
        exact_warm: ArmPerf::from_timing(&warm_t),
        warm_attempts: stats.warm_attempts,
        warm_hits: stats.warm_hits,
        warm_hit_rate: stats.warm_hit_rate(),
        max_throughput_delta,
    }
}

impl ScenarioPerf {
    /// Pretty JSON for `BENCH_scenario.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf digest serializes")
    }

    /// Parses a digest (e.g. the committed baseline).
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// CI regression gate: errors when incremental-engine throughput has
    /// collapsed to less than half the committed baseline. The 2× band
    /// absorbs runner-to-runner noise while still catching a lost
    /// optimisation (which shows up as ~5–10×).
    pub fn check_against_baseline(&self, baseline: &ScenarioPerf) -> Result<(), String> {
        let floor = baseline.incremental.rounds_per_sec / 2.0;
        if self.incremental.rounds_per_sec < floor {
            return Err(format!(
                "perf regression: incremental engine at {:.1} rounds/sec, \
                 below half the baseline {:.1}",
                self.incremental.rounds_per_sec, baseline.incremental.rounds_per_sec
            ));
        }
        if !self.reports_identical {
            return Err("incremental engine diverged from full rebuild".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_round_trips_and_gates() {
        let perf = scenario_perf(Scale::Quick);
        assert!(perf.reports_identical, "incremental must match full rebuild");
        assert!(perf.full.rounds > 0 && perf.full.rounds == perf.incremental.rounds);
        assert!(perf.warm_attempts > 0, "warm arm never attempted a warm start");
        assert!(
            perf.warm_hit_rate > 0.5,
            "warm starts mostly missing: {:.2}",
            perf.warm_hit_rate
        );
        // Warm and cold exact solves agree to LP tolerance per round.
        assert!(
            perf.max_throughput_delta < 1e-3,
            "warm exact diverged from cold by {} Gbps",
            perf.max_throughput_delta
        );
        let json = perf.to_json();
        let back = ScenarioPerf::from_json(&json).expect("digest parses back");
        assert_eq!(json, back.to_json(), "digest must round-trip");
        // A digest always clears its own baseline.
        perf.check_against_baseline(&back).expect("self-comparison passes");
        // And a 10× faster baseline trips the gate.
        let mut fast = back.clone();
        fast.incremental.rounds_per_sec = perf.incremental.rounds_per_sec * 10.0;
        assert!(perf.check_against_baseline(&fast).is_err());
    }
}
