//! Machine-readable performance digest of the scenario round engine —
//! the payload behind `repro --bench-json` and the CI perf-smoke gate.
//!
//! Four arms of the *same* week-in-the-life scenario:
//!
//! | arm           | round engine            | TE solver            |
//! |---------------|-------------------------|----------------------|
//! | `full`        | rebuild everything      | SWAN (stateless)     |
//! | `incremental` | dirty-link + memo       | SWAN (stateless)     |
//! | `exact_cold`  | rebuild everything      | exact LP, cold       |
//! | `exact_warm`  | dirty-link + memo       | exact LP, warm-start |
//!
//! The SWAN pair must produce **byte-identical** reports (the incremental
//! engine is an optimisation, not an approximation) and is where the
//! headline `solve_speedup` comes from. The exact pair exercises the
//! warm-started flat simplex: objectives agree to solver tolerance, so
//! the digest reports the worst per-round throughput delta alongside the
//! warm-start hit rate.
//!
//! Timing lives in [`ScenarioTiming`] sidecars and never in the reports
//! themselves, so the determinism comparisons stay meaningful.

use crate::Scale;
use rwc_core::scenario::{Scenario, ScenarioConfig, ScenarioReport, ScenarioTiming};
use rwc_lp::LpBackend;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::problem::TeProblem;
use rwc_te::swan::SwanTe;
use rwc_te::{TeAlgorithm, TeFormulation, TeObjective, TeSolver, WarmStartPolicy};
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::time::SimDuration;
use rwc_util::units::Gbps;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing digest of one scenario arm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArmPerf {
    /// TE rounds the arm completed.
    pub rounds: u64,
    /// Rounds per wall-clock second over the whole run.
    pub rounds_per_sec: f64,
    /// Median per-round solve time (static baseline + augmentation +
    /// augmented solve), microseconds.
    pub solve_p50_micros: u64,
    /// 99th-percentile per-round solve time, microseconds.
    pub solve_p99_micros: u64,
    /// Total microseconds spent in TE solves.
    pub total_solve_micros: u64,
}

impl ArmPerf {
    fn from_timing(t: &ScenarioTiming) -> Self {
        Self {
            rounds: t.solve_micros.len() as u64,
            rounds_per_sec: t.rounds_per_sec(),
            solve_p50_micros: t.solve_percentile_micros(0.50),
            solve_p99_micros: t.solve_percentile_micros(0.99),
            total_solve_micros: t.total_solve_micros(),
        }
    }
}

/// The `BENCH_scenario.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioPerf {
    /// Experiment id (always `"scenario"`).
    pub experiment: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Full-rebuild engine, SWAN solver.
    pub full: ArmPerf,
    /// Incremental engine, SWAN solver.
    pub incremental: ArmPerf,
    /// `full.total_solve_micros / incremental.total_solve_micros`.
    pub solve_speedup: f64,
    /// Whether the SWAN pair's reports serialized byte-identically.
    pub reports_identical: bool,
    /// Full-rebuild engine, cold exact LP.
    pub exact_cold: ArmPerf,
    /// Incremental engine, warm-started exact LP.
    pub exact_warm: ArmPerf,
    /// `exact_cold.total_solve_micros / exact_warm.total_solve_micros`.
    pub exact_solve_speedup: f64,
    /// Warm starts attempted by the incremental exact arm.
    pub warm_attempts: u64,
    /// Warm starts that reached optimality without a cold fallback.
    pub warm_hits: u64,
    /// `warm_hits / warm_attempts` in `[0, 1]`.
    pub warm_hit_rate: f64,
    /// Worst per-round |warm − cold| throughput difference (Gbps) between
    /// the exact arms — bounded by LP tolerance, not zero, because warm
    /// and cold may land on different optimal vertices.
    pub max_throughput_delta: f64,
    /// Large-topology TE stage: both LP backends on a `--scale`-multiplied
    /// replicated mesh. `Option` so baselines from before the sparse
    /// backend still parse (the shim reads a missing field as `None`).
    pub large_te: Option<LargeTePerf>,
    /// Objective-zoo stage: every [`TeObjective`] solved on the augmented
    /// scaled mesh by both LP backends, plus the min-MLU envelope/drift
    /// sub-stage. `Option` for the same baseline-compatibility reason as
    /// `large_te`.
    pub objectives: Option<ObjectivesPerf>,
}

/// One LP backend's arm of the [`LargeTePerf`] stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LargeTeArm {
    /// Drifted TE rounds solved.
    pub rounds: u64,
    /// Rounds per second of pure solve time (cold first round included).
    pub rounds_per_sec: f64,
    /// Median per-round solve time, microseconds.
    pub solve_p50_micros: u64,
    /// 99th-percentile per-round solve time, microseconds.
    pub solve_p99_micros: u64,
    /// Total microseconds across all rounds.
    pub total_solve_micros: u64,
}

/// The `large_te` stage of `BENCH_scenario.json`: the same drifting
/// sequence of exact TE rounds on a replicated-mesh topology
/// ([`builders::scaled_mesh`]), solved once per LP backend. This is where
/// the sparse revised simplex earns its keep — the CI gate asserts
/// `sparse_speedup >= 5` at the smoke scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LargeTePerf {
    /// Mesh replication factor used for this run.
    pub scale_factor: u64,
    /// Directed TE edges of the composite topology.
    pub links: u64,
    /// Commodities in the demand matrix.
    pub commodities: u64,
    /// Structural columns of the lowered sparse LP.
    pub lp_cols: u64,
    /// Constraint rows of the lowered sparse LP (capacities are bounds
    /// for single-commodity programs and rows otherwise).
    pub lp_rows: u64,
    /// Sparse revised-simplex backend.
    pub sparse: LargeTeArm,
    /// Dense tableau backend (the escape hatch).
    pub dense: LargeTeArm,
    /// `sparse.rounds_per_sec / dense.rounds_per_sec`.
    pub sparse_speedup: f64,
    /// Mean product-form eta updates between basis refactorisations in
    /// the sparse arm — the refactorisation-policy health metric.
    pub eta_updates_per_refactor: f64,
}

fn percentile_micros(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn large_te_arm(rounds: &[TeProblem], backend: LpBackend) -> (LargeTeArm, rwc_lp::SolverStats) {
    let te = TeSolver::builder().backend(backend).build().expect("default TE solver");
    let mut micros: Vec<u64> = Vec::with_capacity(rounds.len());
    for p in rounds {
        let t0 = Instant::now();
        let sol = te.try_solve(p).expect("large TE round solves");
        std::hint::black_box(sol.total);
        micros.push(t0.elapsed().as_micros().max(1) as u64);
    }
    let total: u64 = micros.iter().sum();
    micros.sort_unstable();
    let arm = LargeTeArm {
        rounds: rounds.len() as u64,
        rounds_per_sec: rounds.len() as f64 / (total as f64 / 1e6),
        solve_p50_micros: percentile_micros(&micros, 0.50),
        solve_p99_micros: percentile_micros(&micros, 0.99),
        total_solve_micros: total,
    };
    (arm, te.warm_stats().unwrap_or_default())
}

/// Runs the large-topology TE stage: a replicated mesh at the scale's
/// replication factor, one cross-replica commodity per replica plus an
/// end-to-end long haul, capacities drifting every round — solved by the
/// sparse backend and then the dense escape hatch on identical inputs.
fn large_te_instance(factor: usize) -> (WanTopology, DemandMatrix) {
    let wan = builders::scaled_mesh(factor, 500.0);
    let pick = |name: String| wan.node_by_name(&name).expect("scaled mesh site");
    let mut dm = DemandMatrix::new();
    // One cross-replica commodity per stride-spaced replica, at most 8:
    // columns grow as edges × commodities, so the commodity count must
    // stay bounded for the ≥10k-edge scales to remain about topology
    // size, not LP blow-up.
    let stride = factor.div_ceil(8).max(1);
    for i in (0..factor).step_by(stride) {
        let s = pick(format!("S{i}-{}", 3 + (i % 3)));
        let t = pick(format!("S{}-4", (i + 1) % factor));
        if s != t {
            dm.add(s, t, Gbps(60.0), Priority::Elastic);
        }
    }
    if factor > 1 {
        // End-to-end long haul across all replicas (self-demand at x1).
        let (s, t) = (pick("S0-5".into()), pick(format!("S{}-5", factor - 1)));
        dm.add(s, t, Gbps(80.0), Priority::Elastic);
    }
    (wan, dm)
}

pub fn large_te_perf(scale: Scale) -> LargeTePerf {
    let factor = match scale {
        Scale::Quick => 6,
        Scale::Full => 10,
        Scale::Scaled(n) => (n as usize).max(1),
    };
    let (wan, dm) = large_te_instance(factor);
    let base = TeProblem::from_wan(&wan, &dm);
    const ROUNDS: usize = 6;
    let rounds: Vec<TeProblem> = (0..ROUNDS)
        .map(|round| {
            let mut p = base.clone();
            for l in 0..wan.n_links() {
                // Deterministic ±9% capacity drift, same pattern for both
                // backends.
                let phase = (round * (l + 3)) % 7;
                let factor = 0.91 + 0.03 * phase as f64;
                p.override_link_capacity(LinkId(l), wan.link(LinkId(l)).capacity().value() * factor);
            }
            p
        })
        .collect();
    let lowered = TeFormulation::default()
        .lower(&base)
        .expect("max-throughput lowering is always valid")
        .sparse_lp();
    let (sparse, sparse_stats) = large_te_arm(&rounds, LpBackend::Sparse);
    // The dense tableau grows as rows × (cols + rows) with O(rows · cols)
    // work per pivot: beyond this factor it needs minutes per round (and
    // gigabytes at --scale 300), which is the regime this stage exists to
    // show the sparse backend escaping. Skip it rather than hang the
    // digest; a zeroed arm (rounds == 0) marks the skip in the JSON.
    const DENSE_ARM_MAX_FACTOR: usize = 16;
    let dense = if factor <= DENSE_ARM_MAX_FACTOR {
        large_te_arm(&rounds, LpBackend::Dense).0
    } else {
        LargeTeArm {
            rounds: 0,
            rounds_per_sec: 0.0,
            solve_p50_micros: 0,
            solve_p99_micros: 0,
            total_solve_micros: 0,
        }
    };
    let ratio = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
    LargeTePerf {
        scale_factor: factor as u64,
        links: base.net.n_edges() as u64,
        commodities: base.commodities.len() as u64,
        lp_cols: lowered.n_vars() as u64,
        lp_rows: lowered.n_rows() as u64,
        sparse_speedup: ratio(sparse.rounds_per_sec, dense.rounds_per_sec),
        eta_updates_per_refactor: ratio(
            sparse_stats.eta_updates as f64,
            sparse_stats.refactorizations as f64,
        ),
        sparse,
        dense,
    }
}

/// One objective's arm of the [`ObjectivesPerf`] stage: the same lowered
/// problem solved by both LP backends, compared on the objective's
/// headline value (total throughput, MLU, or the concurrency factor λ).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectiveArm {
    /// The formulation's algorithm name (e.g. `"exact-lp:min-mlu"`).
    pub objective: String,
    /// Whether both backends reached optimality.
    pub solved: bool,
    /// Headline value from the sparse revised simplex.
    pub sparse_headline: f64,
    /// Headline value from the dense tableau.
    pub dense_headline: f64,
    /// `|sparse_headline - dense_headline|` — gated at 1e-6 in CI.
    pub agreement_delta: f64,
    /// Sparse-backend solve time, microseconds.
    pub sparse_solve_micros: u64,
    /// Dense-backend solve time, microseconds.
    pub dense_solve_micros: u64,
}

/// The min-MLU sub-stage: envelope dominance plus warm-start behaviour
/// under rhs-only traffic-matrix drift (the `MinMlu` twin of the
/// max-throughput fast-resolve path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMluPerf {
    /// Optimal MLU over the whole traffic-matrix envelope.
    pub envelope_mlu: f64,
    /// Max over the envelope's members of each single-TM optimal MLU.
    /// Must be `<= envelope_mlu + 1e-6`: routing that works for every
    /// matrix at once can never beat routing tuned to one matrix.
    pub max_single_tm_mlu: f64,
    /// Drift rounds solved by each backend.
    pub rounds: u64,
    /// Warm starts attempted by the sparse arm across the drift rounds.
    pub warm_attempts: u64,
    /// Warm starts that reached optimality without a cold fallback.
    pub warm_hits: u64,
    /// `warm_hits / warm_attempts` in `[0, 1]`.
    pub warm_hit_rate: f64,
    /// Dense total drift time / sparse total drift time.
    pub sparse_speedup: f64,
}

/// The `objectives` stage of `BENCH_scenario.json`: the whole
/// [`TeObjective`] zoo on one augmented scaled-mesh instance (fake
/// upgrade edges included, so the unsplittable gadget and the reduction
/// readout have real work to do), each objective solved by both backends.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectivesPerf {
    /// Mesh replication factor used for this stage.
    pub scale_factor: u64,
    /// Commodities in the demand matrix.
    pub commodities: u64,
    /// Fake upgrade edges the augmentation injected.
    pub fake_edges: u64,
    /// One arm per objective, in declaration order.
    pub arms: Vec<ObjectiveArm>,
    /// Whether every arm solved on both backends.
    pub all_solved: bool,
    /// Worst cross-backend headline disagreement across the arms.
    pub max_agreement_delta: f64,
    /// The min-MLU envelope/drift sub-stage.
    pub min_mlu: MinMluPerf,
}

/// Headline value of a solve under an objective: the quantity the two
/// backends must agree on at 1e-6 (LP objectives differ by the sparse
/// tie-break epsilon, so the comparison happens at the solution level).
fn headline(objective: &TeObjective, solve: &rwc_te::TeSolve) -> f64 {
    match objective {
        TeObjective::MinMlu { .. } => solve.mlu.expect("min-MLU solve reports MLU"),
        TeObjective::MaxConcurrentFlow => solve.lambda.expect("concurrent solve reports lambda"),
        _ => solve.solution.total,
    }
}

fn timed_solve(solver: &TeSolver, problem: &TeProblem) -> (Option<rwc_te::TeSolve>, u64) {
    let t0 = Instant::now();
    let solve = solver.solve_detailed(problem).ok();
    (solve, t0.elapsed().as_micros().max(1) as u64)
}

/// Optimal MLU of one traffic-matrix set on `problem`, sparse backend.
fn min_mlu_of(problem: &TeProblem, traffic_matrices: Vec<Vec<f64>>) -> f64 {
    let solver = TeSolver::builder()
        .objective(TeObjective::MinMlu { traffic_matrices })
        .build()
        .expect("min-MLU solver config is valid");
    let solve = solver.solve_detailed(problem).expect("min-MLU instance solves");
    solve.mlu.expect("min-MLU solve reports MLU")
}

/// Runs the objective-zoo stage: augments the scaled mesh (some links get
/// SNR headroom so fake upgrade rungs exist), then solves every objective
/// with both backends on the identical augmented problem, plus the
/// min-MLU envelope-dominance check and warm-start drift sub-stage.
pub fn objectives_perf(scale: Scale) -> ObjectivesPerf {
    use rwc_core::{augment, AugmentConfig};
    use rwc_util::units::Db;

    let factor = match scale {
        Scale::Quick => 4,
        Scale::Full => 6,
        // Every arm runs the dense backend, so this stage stays at
        // tableau-reachable sizes regardless of `--scale`.
        Scale::Scaled(n) => (n as usize).clamp(1, 8),
    };
    let (mut wan, dm) = large_te_instance(factor);
    // Alternate SNR so every third link has headroom for upgrade rungs
    // (same 7.5/13 dB split as the Fig. 7 worked example): the gadget and
    // the reduction readout need fake edges to be non-trivial.
    for l in 0..wan.n_links() {
        wan.set_snr(LinkId(l), if l % 3 == 0 { Db(13.0) } else { Db(7.5) });
    }
    let aug = augment(&wan, &dm, &AugmentConfig::default(), &[]);
    let problem = &aug.problem;
    let fake_edges = problem
        .origins
        .iter()
        .filter(|o| matches!(o, rwc_te::problem::EdgeOrigin::Fake { .. }))
        .count() as u64;

    // Traffic-matrix envelope for the MinMlu arms: the base demands plus
    // a peak-shifted and a scaled-down variant (per-commodity phase so
    // the matrices genuinely disagree about where load lands).
    let base_tm: Vec<f64> = problem.commodities.iter().map(|c| c.demand).collect();
    let k = base_tm.len();
    let tms: Vec<Vec<f64>> = (0..3)
        .map(|j| {
            (0..k)
                .map(|i| base_tm[i] * (0.7 + 0.15 * j as f64 + 0.1 * ((i + j) % 3) as f64))
                .collect()
        })
        .collect();

    let objectives = [
        TeObjective::MaxThroughput,
        TeObjective::MinMlu { traffic_matrices: tms.clone() },
        TeObjective::MaxConcurrentFlow,
        TeObjective::Unsplittable,
        TeObjective::CapacityReduction,
    ];
    let mut arms = Vec::with_capacity(objectives.len());
    for objective in &objectives {
        let build = |backend| {
            TeSolver::builder()
                .objective(objective.clone())
                .backend(backend)
                .build()
                .expect("objective-zoo solver config is valid")
        };
        let (sparse, sparse_micros) = timed_solve(&build(LpBackend::Sparse), problem);
        let (dense, dense_micros) = timed_solve(&build(LpBackend::Dense), problem);
        let (sparse_headline, dense_headline) = (
            sparse.as_ref().map_or(f64::NAN, |s| headline(objective, s)),
            dense.as_ref().map_or(f64::NAN, |s| headline(objective, s)),
        );
        arms.push(ObjectiveArm {
            objective: objective.algorithm_name().to_string(),
            solved: sparse.is_some() && dense.is_some(),
            sparse_headline,
            dense_headline,
            agreement_delta: (sparse_headline - dense_headline).abs(),
            sparse_solve_micros: sparse_micros,
            dense_solve_micros: dense_micros,
        });
    }
    let all_solved = arms.iter().all(|a| a.solved);
    let max_agreement_delta =
        arms.iter().map(|a| a.agreement_delta).fold(0.0f64, f64::max);

    // Envelope dominance: the envelope optimum must cover every member
    // matrix's own optimum.
    let envelope_mlu = min_mlu_of(problem, tms.clone());
    let max_single_tm_mlu = tms
        .iter()
        .map(|tm| min_mlu_of(problem, vec![tm.clone()]))
        .fold(0.0f64, f64::max);

    // Rhs-only TM drift: the same solver re-targeted each round via
    // `set_objective` (identical LP pattern, drifted demand rhs), sparse
    // vs dense. This is the MinMlu twin of the warm fast-resolve path.
    const DRIFT_ROUNDS: usize = 8;
    let drift_tms = |round: usize| -> Vec<Vec<f64>> {
        let scale = 0.75 + 0.03 * round as f64;
        tms.iter().map(|tm| tm.iter().map(|d| d * scale).collect()).collect()
    };
    let drift_arm = |backend| -> (u64, rwc_lp::SolverStats) {
        let mut solver = TeSolver::builder()
            .objective(TeObjective::MinMlu { traffic_matrices: drift_tms(0) })
            .backend(backend)
            .build()
            .expect("min-MLU solver config is valid");
        let mut total = 0u64;
        for round in 0..DRIFT_ROUNDS {
            solver
                .set_objective(TeObjective::MinMlu { traffic_matrices: drift_tms(round) })
                .expect("drifted traffic matrices stay valid");
            let t0 = Instant::now();
            solver.solve_detailed(problem).expect("drift round solves");
            total += t0.elapsed().as_micros().max(1) as u64;
        }
        (total, solver.warm_stats().unwrap_or_default())
    };
    let (sparse_total, sparse_stats) = drift_arm(LpBackend::Sparse);
    let (dense_total, _) = drift_arm(LpBackend::Dense);

    ObjectivesPerf {
        scale_factor: factor as u64,
        commodities: problem.commodities.len() as u64,
        fake_edges,
        arms,
        all_solved,
        max_agreement_delta,
        min_mlu: MinMluPerf {
            envelope_mlu,
            max_single_tm_mlu,
            rounds: DRIFT_ROUNDS as u64,
            warm_attempts: sparse_stats.warm_attempts,
            warm_hits: sparse_stats.warm_hits,
            warm_hit_rate: sparse_stats.warm_hit_rate(),
            sparse_speedup: if sparse_total == 0 {
                0.0
            } else {
                dense_total as f64 / sparse_total as f64
            },
        },
    }
}

/// Builds the perf scenario: continental-scale Abilene rather than the
/// experiment's 5-link Fig. 7 example, because the round-engine
/// optimisations (warm simplex bases, dirty-link patching) only show
/// their worth once the augmented LP has real size. SNR baselines sit
/// comfortably above the rung thresholds so ladders keep their shape
/// most rounds — the regime warm starts are designed for.
fn perf_build(scale: Scale, full_rebuild: bool) -> (Scenario, SimDuration) {
    let wan = builders::abilene();
    let pick = |n: &str| wan.node_by_name(n).expect("abilene site");
    let mut dm = DemandMatrix::new();
    for (s, t) in
        [("SEA", "NYC"), ("LAX", "WDC"), ("SNV", "CHI"), ("DEN", "ATL"), ("KSC", "NYC"), ("HOU", "CHI")]
    {
        dm.add(pick(s), pick(t), Gbps(120.0), Priority::Elastic);
    }
    let horizon = match scale {
        Scale::Quick => SimDuration::from_days(7),
        Scale::Full | Scale::Scaled(_) => SimDuration::from_days(30),
    };
    let fleet = FleetConfig {
        n_fibers: 2,
        wavelengths_per_fiber: 7,
        horizon: horizon + SimDuration::from_days(1),
        fiber_baseline_mean_db: 14.5,
        fiber_baseline_sd_db: 0.1,
        wavelength_jitter_sd_db: 0.15,
        ..FleetConfig::paper()
    };
    let config = ScenarioConfig { full_rebuild, ..ScenarioConfig::default() };
    let scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .build()
        .expect("perf scenario wiring is valid");
    (scenario, horizon)
}

fn run_arm(
    scale: Scale,
    full_rebuild: bool,
    algorithm: &dyn TeAlgorithm,
) -> (ScenarioReport, ScenarioTiming) {
    let (mut s, horizon) = perf_build(scale, full_rebuild);
    let report = s.run(horizon, algorithm).expect("perf scenario wiring is valid");
    let timing = s.last_timing().cloned().expect("run always records timing");
    (report, timing)
}

/// Runs the four arms (sequentially, so the timings aren't fighting each
/// other for cores) and assembles the digest.
pub fn scenario_perf(scale: Scale) -> ScenarioPerf {
    let (full_report, full_t) = run_arm(scale, true, &SwanTe::default());
    let (inc_report, inc_t) = run_arm(scale, false, &SwanTe::default());
    let cold_algo = TeSolver::builder()
        .warm_start(WarmStartPolicy::AlwaysCold)
        .build()
        .expect("default TE solver");
    let (cold_report, cold_t) = run_arm(scale, true, &cold_algo);
    let warm_algo = TeSolver::builder().build().expect("default TE solver");
    let (warm_report, warm_t) = run_arm(scale, false, &warm_algo);
    let stats = warm_algo.warm_stats().unwrap_or_default();

    let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
    let max_throughput_delta = cold_report
        .samples
        .iter()
        .zip(&warm_report.samples)
        .map(|(c, w)| (c.throughput - w.throughput).abs())
        .fold(0.0f64, f64::max);

    ScenarioPerf {
        experiment: "scenario".into(),
        scale: scale.label(),
        solve_speedup: ratio(full_t.total_solve_micros(), inc_t.total_solve_micros()),
        reports_identical: serde_json::to_string(&full_report).expect("report serializes")
            == serde_json::to_string(&inc_report).expect("report serializes"),
        full: ArmPerf::from_timing(&full_t),
        incremental: ArmPerf::from_timing(&inc_t),
        exact_solve_speedup: ratio(cold_t.total_solve_micros(), warm_t.total_solve_micros()),
        exact_cold: ArmPerf::from_timing(&cold_t),
        exact_warm: ArmPerf::from_timing(&warm_t),
        warm_attempts: stats.warm_attempts,
        warm_hits: stats.warm_hits,
        warm_hit_rate: stats.warm_hit_rate(),
        max_throughput_delta,
        large_te: Some(large_te_perf(scale)),
        objectives: Some(objectives_perf(scale)),
    }
}

impl ScenarioPerf {
    /// Pretty JSON for `BENCH_scenario.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf digest serializes")
    }

    /// Parses a digest (e.g. the committed baseline).
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// CI regression gate: errors when incremental-engine throughput has
    /// collapsed to less than half the committed baseline. The 2× band
    /// absorbs runner-to-runner noise while still catching a lost
    /// optimisation (which shows up as ~5–10×).
    pub fn check_against_baseline(&self, baseline: &ScenarioPerf) -> Result<(), String> {
        let floor = baseline.incremental.rounds_per_sec / 2.0;
        if self.incremental.rounds_per_sec < floor {
            return Err(format!(
                "perf regression: incremental engine at {:.1} rounds/sec, \
                 below half the baseline {:.1}",
                self.incremental.rounds_per_sec, baseline.incremental.rounds_per_sec
            ));
        }
        if !self.reports_identical {
            return Err("incremental engine diverged from full rebuild".into());
        }
        if let (Some(lt), Some(base)) = (&self.large_te, &baseline.large_te) {
            let floor = base.sparse.rounds_per_sec / 2.0;
            if lt.sparse.rounds_per_sec < floor {
                return Err(format!(
                    "perf regression: sparse large-TE arm at {:.1} rounds/sec, \
                     below half the baseline {:.1}",
                    lt.sparse.rounds_per_sec, base.sparse.rounds_per_sec
                ));
            }
        }
        if let Some(obj) = &self.objectives {
            if !obj.all_solved {
                return Err("objective-zoo stage: not every objective solved".into());
            }
            if obj.max_agreement_delta > 1e-6 {
                return Err(format!(
                    "objective-zoo stage: backends disagree by {:.3e} (gate 1e-6)",
                    obj.max_agreement_delta
                ));
            }
            if obj.min_mlu.max_single_tm_mlu > obj.min_mlu.envelope_mlu + 1e-6 {
                return Err(format!(
                    "objective-zoo stage: a single-TM optimum ({:.6}) beat the \
                     envelope optimum ({:.6}) — envelope dominance broken",
                    obj.min_mlu.max_single_tm_mlu, obj.min_mlu.envelope_mlu
                ));
            }
        }
        Ok(())
    }
}

/// Timing + allocation digest of one fleet-analysis arm (fused or legacy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetArmPerf {
    /// Links analysed.
    pub links: u64,
    /// SNR samples generated and analysed (`links × ticks`).
    pub samples: u64,
    /// Wall-clock seconds for the sweep.
    pub elapsed_secs: f64,
    /// Links analysed per wall-clock second.
    pub links_per_sec: f64,
    /// Samples analysed per wall-clock second.
    pub samples_per_sec: f64,
    /// Bytes allocated during the sweep (allocation-counter proxy).
    pub alloc_bytes: u64,
    /// Allocation calls during the sweep.
    pub alloc_count: u64,
    /// Peak live heap bytes while the sweep ran — the RSS proxy.
    pub peak_live_bytes: u64,
}

/// Generation-only stage of the fleet digest: single-threaded trace
/// synthesis with no analysis attached, serial legacy generator vs the
/// counter-based batch pipeline (DESIGN.md §13). The tentpole target is
/// `speedup >= 5`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationPerf {
    /// Serial Xoshiro generation (the pre-batch path).
    pub legacy: FleetArmPerf,
    /// Counter-based blockwise generation.
    pub batch: FleetArmPerf,
    /// `legacy.elapsed_secs / batch.elapsed_secs`, single-threaded.
    pub speedup: f64,
}

/// The `BENCH_fleet.json` payload: fused vs legacy fleet analysis of the
/// scale's fleet, plus the byte-identity verdict between the two paths
/// and the generation-only legacy-vs-batch stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetPerf {
    /// Experiment id (always `"fleet"`).
    pub experiment: String,
    /// `"quick"`, `"full"`, or `"fleet_xN"`.
    pub scale: String,
    /// Worker threads used by both arms.
    pub n_threads: u64,
    /// Fused single-pass kernel sweep.
    pub fused: FleetArmPerf,
    /// Legacy trace-materialising sweep.
    pub legacy: FleetArmPerf,
    /// `legacy.elapsed_secs / fused.elapsed_secs`.
    pub speedup: f64,
    /// `legacy.alloc_bytes / fused.alloc_bytes`.
    pub alloc_ratio: f64,
    /// Whether the two accumulators serialized byte-identically.
    pub accumulators_identical: bool,
    /// Generation-only stage, legacy vs batch.
    pub generation: GenerationPerf,
}

fn fleet_arm(
    gen: &rwc_telemetry::FleetGenerator,
    table: &rwc_optics::ModulationTable,
    n_threads: usize,
    mode: rwc_telemetry::AnalysisMode,
) -> (rwc_telemetry::FleetAccumulator, FleetArmPerf) {
    let samples_per_link = gen.config().horizon.ticks(gen.config().tick);
    let started = std::time::Instant::now();
    let (acc, alloc) = crate::alloc::measure(|| {
        crate::parallel::parallel_fleet_analysis_with(gen, table, n_threads, mode)
    });
    let elapsed = started.elapsed().as_secs_f64();
    let links = gen.n_links() as u64;
    let samples = links * samples_per_link;
    let perf = FleetArmPerf {
        links,
        samples,
        elapsed_secs: elapsed,
        links_per_sec: links as f64 / elapsed,
        samples_per_sec: samples as f64 / elapsed,
        alloc_bytes: alloc.bytes,
        alloc_count: alloc.count,
        peak_live_bytes: alloc.peak_live_bytes,
    };
    (acc, perf)
}

/// One single-threaded generation-only pass over the fleet: every link's
/// trace synthesised into a reused buffer, no analysis attached. The
/// generator's own [`rwc_telemetry::GenMode`] decides the path.
fn generation_arm(gen: &rwc_telemetry::FleetGenerator) -> FleetArmPerf {
    let samples_per_link = gen.config().horizon.ticks(gen.config().tick);
    let started = std::time::Instant::now();
    let (_, alloc) = crate::alloc::measure(|| {
        let mut scratch = rwc_telemetry::BatchScratch::default();
        let mut buf: Vec<f64> = Vec::new();
        let mut sink = 0.0f64;
        for link in 0..gen.n_links() {
            gen.generate_link_into(link, &mut scratch, &mut buf);
            sink += buf[buf.len() - 1];
        }
        sink
    });
    let elapsed = started.elapsed().as_secs_f64();
    let links = gen.n_links() as u64;
    let samples = links * samples_per_link;
    FleetArmPerf {
        links,
        samples,
        elapsed_secs: elapsed,
        links_per_sec: links as f64 / elapsed,
        samples_per_sec: samples as f64 / elapsed,
        alloc_bytes: alloc.bytes,
        alloc_count: alloc.count,
        peak_live_bytes: alloc.peak_live_bytes,
    }
}

/// Runs the generation-only pair (serial legacy vs counter-based batch,
/// both single-threaded on the same fleet) and assembles the stage.
pub fn generation_perf(cfg: FleetConfig) -> GenerationPerf {
    let legacy_gen = rwc_telemetry::FleetGenerator::new(cfg.clone());
    let batch_gen =
        rwc_telemetry::FleetGenerator::new(cfg).with_gen_mode(rwc_telemetry::GenMode::Batch);
    let legacy = generation_arm(&legacy_gen);
    let batch = generation_arm(&batch_gen);
    let speedup =
        if batch.elapsed_secs == 0.0 { 0.0 } else { legacy.elapsed_secs / batch.elapsed_secs };
    GenerationPerf { legacy, batch, speedup }
}

/// Runs the fused and legacy fleet sweeps back to back (same fleet, same
/// worker count), plus the generation-only stage, and assembles the
/// digest.
pub fn fleet_perf(scale: Scale) -> FleetPerf {
    let gen = rwc_telemetry::FleetGenerator::new(scale.fleet());
    let table = rwc_optics::ModulationTable::paper_default();
    let n_threads = crate::parallel::default_workers();
    let (fused_acc, fused) = fleet_arm(&gen, &table, n_threads, rwc_telemetry::AnalysisMode::Fused);
    let (legacy_acc, legacy) =
        fleet_arm(&gen, &table, n_threads, rwc_telemetry::AnalysisMode::Legacy);
    let accumulators_identical = serde_json::to_string(&fused_acc).expect("accumulator serializes")
        == serde_json::to_string(&legacy_acc).expect("accumulator serializes");
    let ratio = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
    FleetPerf {
        experiment: "fleet".into(),
        scale: scale.label(),
        n_threads: n_threads as u64,
        speedup: ratio(legacy.elapsed_secs, fused.elapsed_secs),
        alloc_ratio: ratio(legacy.alloc_bytes as f64, fused.alloc_bytes as f64),
        fused,
        legacy,
        accumulators_identical,
        generation: generation_perf(scale.fleet()),
    }
}

impl FleetPerf {
    /// Pretty JSON for `BENCH_fleet.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet digest serializes")
    }

    /// Parses a digest.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// CI regression gate: errors when fused fleet throughput or batch
    /// generation throughput has fallen below half the committed
    /// baseline, or the fused path has diverged from legacy. Same 2×
    /// noise band as the scenario gate.
    pub fn check_against_baseline(&self, baseline: &FleetPerf) -> Result<(), String> {
        let floor = baseline.fused.links_per_sec / 2.0;
        if self.fused.links_per_sec < floor {
            return Err(format!(
                "perf regression: fused fleet analysis at {:.1} links/sec, \
                 below half the baseline {:.1}",
                self.fused.links_per_sec, baseline.fused.links_per_sec
            ));
        }
        if !self.accumulators_identical {
            return Err("fused fleet analysis diverged from the legacy path".into());
        }
        let gen_floor = baseline.generation.batch.samples_per_sec / 2.0;
        if self.generation.batch.samples_per_sec < gen_floor {
            return Err(format!(
                "perf regression: batch generation at {:.3e} samples/sec, \
                 below half the baseline {:.3e}",
                self.generation.batch.samples_per_sec, baseline.generation.batch.samples_per_sec
            ));
        }
        Ok(())
    }
}

/// The committed `ci/perf_baseline.json`: one scenario digest plus one
/// fleet digest, gated together by `repro --bench-json --perf-baseline`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfBaseline {
    /// Round-engine baseline (PR 3 machinery).
    pub scenario: ScenarioPerf,
    /// Fleet-analysis baseline.
    pub fleet: FleetPerf,
}

/// Why a committed perf baseline could not be used. Distinguishing I/O
/// from schema trouble lets `repro` exit with distinct codes: a CI runner
/// that lost the artifact reads differently from a stale baseline format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// The baseline file could not be read at all.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O message.
        message: String,
    },
    /// The file read but is not a valid `PerfBaseline` (truncated mid-
    /// write, hand-edited, or produced by an incompatible revision).
    Schema {
        /// The offending path.
        path: String,
        /// What failed to parse.
        message: String,
    },
}

impl std::fmt::Display for PerfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfError::Io { path, message } => {
                write!(f, "cannot read perf baseline {path}: {message}")
            }
            PerfError::Schema { path, message } => {
                write!(f, "perf baseline {path} does not parse: {message}")
            }
        }
    }
}

impl std::error::Error for PerfError {}

impl PerfBaseline {
    /// Pretty JSON for the committed baseline file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    /// Parses the committed baseline file.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Loads the committed baseline, mapping every failure mode to a
    /// typed [`PerfError`] — a missing, truncated or schema-mismatched
    /// file becomes a clean nonzero exit in `repro`, never a panic.
    pub fn load(path: &std::path::Path) -> Result<Self, PerfError> {
        let shown = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| PerfError::Io { path: shown.clone(), message: e.to_string() })?;
        Self::from_json(&text).map_err(|message| PerfError::Schema { path: shown, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_load_maps_failure_modes_to_typed_errors() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // Missing file → Io.
        let missing = dir.join(format!("rwc_perf_missing_{pid}.json"));
        match PerfBaseline::load(&missing) {
            Err(PerfError::Io { path, .. }) => assert!(path.contains("rwc_perf_missing")),
            other => panic!("expected Io, got {other:?}"),
        }

        // Truncated JSON → Schema.
        let committed = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ci/perf_baseline.json"),
        )
        .expect("committed baseline exists");
        PerfBaseline::from_json(&committed).expect("committed baseline parses");
        let truncated_path = dir.join(format!("rwc_perf_trunc_{pid}.json"));
        std::fs::write(&truncated_path, &committed[..committed.len() / 2]).unwrap();
        match PerfBaseline::load(&truncated_path) {
            Err(PerfError::Schema { .. }) => {}
            other => panic!("expected Schema for truncation, got {other:?}"),
        }
        std::fs::remove_file(&truncated_path).ok();

        // Valid JSON, wrong shape → Schema.
        let mismatched_path = dir.join(format!("rwc_perf_shape_{pid}.json"));
        std::fs::write(&mismatched_path, r#"{"scenario": 3, "fleet": []}"#).unwrap();
        match PerfBaseline::load(&mismatched_path) {
            Err(PerfError::Schema { .. }) => {}
            other => panic!("expected Schema for shape mismatch, got {other:?}"),
        }
        std::fs::remove_file(&mismatched_path).ok();
    }

    #[test]
    fn fleet_digest_gates_and_round_trips() {
        let quick = Scale::Quick;
        // A reduced-quick fleet keeps this test fast: 2 fibers, 60 days.
        let mut cfg = quick.fleet();
        cfg.n_fibers = 2;
        cfg.horizon = rwc_util::time::SimDuration::from_days(60);
        let gen = rwc_telemetry::FleetGenerator::new(cfg.clone());
        let table = rwc_optics::ModulationTable::paper_default();
        let (fused_acc, fused) =
            fleet_arm(&gen, &table, 2, rwc_telemetry::AnalysisMode::Fused);
        let (legacy_acc, legacy) =
            fleet_arm(&gen, &table, 2, rwc_telemetry::AnalysisMode::Legacy);
        assert_eq!(fused.links, legacy.links);
        assert_eq!(fused.samples, legacy.samples);
        assert!(fused.links_per_sec > 0.0);
        assert_eq!(
            serde_json::to_string(&fused_acc).unwrap(),
            serde_json::to_string(&legacy_acc).unwrap(),
            "fused arm diverged from legacy"
        );
        // The fused path must allocate far less: no per-link trace clone,
        // no per-call HDR clone.
        assert!(
            fused.alloc_bytes * 2 < legacy.alloc_bytes,
            "fused {} bytes vs legacy {} bytes",
            fused.alloc_bytes,
            legacy.alloc_bytes
        );
        let generation = generation_perf(cfg);
        assert_eq!(generation.legacy.samples, generation.batch.samples);
        assert!(generation.batch.samples_per_sec > 0.0);
        let perf = FleetPerf {
            experiment: "fleet".into(),
            scale: quick.label(),
            n_threads: 2,
            speedup: legacy.elapsed_secs / fused.elapsed_secs,
            alloc_ratio: legacy.alloc_bytes as f64 / fused.alloc_bytes as f64,
            fused,
            legacy,
            accumulators_identical: true,
            generation,
        };
        let json = perf.to_json();
        let back = FleetPerf::from_json(&json).expect("digest parses back");
        assert_eq!(json, back.to_json(), "digest must round-trip");
        perf.check_against_baseline(&back).expect("self-comparison passes");
        let mut fast = back.clone();
        fast.fused.links_per_sec = perf.fused.links_per_sec * 10.0;
        assert!(perf.check_against_baseline(&fast).is_err());
        let mut gen_fast = perf.clone();
        gen_fast.generation.batch.samples_per_sec =
            perf.generation.batch.samples_per_sec * 10.0;
        assert!(perf.check_against_baseline(&gen_fast).is_err());
        let mut diverged = back;
        diverged.accumulators_identical = false;
        assert!(diverged.check_against_baseline(&perf).is_err());
    }

    #[test]
    fn digest_round_trips_and_gates() {
        let perf = scenario_perf(Scale::Quick);
        assert!(perf.reports_identical, "incremental must match full rebuild");
        assert!(perf.full.rounds > 0 && perf.full.rounds == perf.incremental.rounds);
        assert!(perf.warm_attempts > 0, "warm arm never attempted a warm start");
        assert!(
            perf.warm_hit_rate > 0.5,
            "warm starts mostly missing: {:.2}",
            perf.warm_hit_rate
        );
        // Warm and cold exact solves agree to LP tolerance per round.
        assert!(
            perf.max_throughput_delta < 1e-3,
            "warm exact diverged from cold by {} Gbps",
            perf.max_throughput_delta
        );
        let json = perf.to_json();
        let back = ScenarioPerf::from_json(&json).expect("digest parses back");
        assert_eq!(json, back.to_json(), "digest must round-trip");
        // A digest always clears its own baseline.
        perf.check_against_baseline(&back).expect("self-comparison passes");
        // And a 10× faster baseline trips the gate.
        let mut fast = back.clone();
        fast.incremental.rounds_per_sec = perf.incremental.rounds_per_sec * 10.0;
        assert!(perf.check_against_baseline(&fast).is_err());
    }
}
