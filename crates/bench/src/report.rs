//! Experiment output plumbing.

use std::fmt::Write as _;
use std::path::Path;

/// How big to run the synthetic corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced fleet (fast; CI-friendly): 200 links over 120 days.
    Quick,
    /// Paper scale: 2,000 links over 2.5 years, 250 tickets over 7 months.
    Full,
    /// The paper fleet multiplied: `Scaled(n)` runs `n × 2,000` links at
    /// the full horizon (`repro --scale N`). Non-fleet experiments treat
    /// it as `Full` — the knob exists to stress the fleet pipeline, e.g.
    /// `--scale 10` for a 20,000-link sweep.
    Scaled(u32),
}

impl Scale {
    /// Fleet configuration at this scale.
    pub fn fleet(self) -> rwc_telemetry::FleetConfig {
        let mut cfg = rwc_telemetry::FleetConfig::paper();
        match self {
            Scale::Quick => {
                cfg.n_fibers = 5; // 200 links
                cfg.horizon = rwc_util::time::SimDuration::from_days(120);
            }
            Scale::Full => {}
            Scale::Scaled(n) => {
                assert!(n > 0, "--scale must be at least 1");
                cfg.n_fibers *= n as usize;
            }
        }
        cfg
    }

    /// Ticket-corpus configuration at this scale.
    pub fn tickets(self) -> rwc_failures::TicketConfig {
        let mut cfg = rwc_failures::TicketConfig::paper();
        if self == Scale::Quick {
            cfg.n_events = 250; // the paper's count is already cheap
        }
        cfg
    }

    /// Digest label: `quick`, `full`, or `fleet_x<N>`.
    pub fn label(self) -> String {
        match self {
            Scale::Quick => "quick".into(),
            Scale::Full => "full".into(),
            Scale::Scaled(n) => format!("fleet_x{n}"),
        }
    }
}

/// Output of one experiment: human-readable lines plus CSV artifacts.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. "fig2a").
    pub id: String,
    /// One-line title.
    pub title: String,
    /// Printable findings.
    pub lines: Vec<String>,
    /// `(file name, contents)` CSV artifacts.
    pub csv: Vec<(String, String)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Self { id: id.into(), title: title.into(), ..Default::default() }
    }

    /// Appends a formatted line.
    pub fn line(&mut self, text: impl Into<String>) {
        self.lines.push(text.into());
    }

    /// Appends a CSV artifact.
    pub fn csv(&mut self, name: &str, content: String) {
        self.csv.push((name.into(), content));
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for l in &self.lines {
            let _ = writeln!(out, "  {l}");
        }
        out
    }

    /// Writes CSV artifacts into `dir` (created if needed).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, content) in &self.csv {
            let path = dir.join(name);
            std::fs::write(&path, content)?;
            written.push(path.display().to_string());
        }
        Ok(written)
    }
}

/// Renders `(x, y)` series as a two-column CSV.
pub fn series_csv(header: &str, series: &[(f64, f64)]) -> String {
    let mut s = String::from(header);
    s.push('\n');
    for (x, y) in series {
        let _ = writeln!(s, "{x},{y}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert_eq!(Scale::Full.fleet().n_links(), 2000);
        assert_eq!(Scale::Quick.fleet().n_links(), 200);
        assert!(Scale::Quick.fleet().horizon < Scale::Full.fleet().horizon);
    }

    #[test]
    fn report_render() {
        let mut r = Report::new("figX", "demo");
        r.line("hello");
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("hello"));
    }

    #[test]
    fn csv_render() {
        let csv = series_csv("x,y", &[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn csv_write() {
        let dir = std::env::temp_dir().join("rwc_report_test");
        let mut r = Report::new("t", "t");
        r.csv("a.csv", "x\n1\n".into());
        let written = r.write_csv(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert!(std::fs::read_to_string(&written[0]).unwrap().contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
