//! Byte-identity of the incremental round engine.
//!
//! The dirty-link augmenter, static-solve memo, and counterfactual cache
//! are pure performance machinery: with the `full_rebuild` escape hatch
//! flipped, the exact same experiments must produce the exact same
//! serialized [`ScenarioReport`], byte for byte. Any divergence means an
//! engine cache leaked into the results.

use rwc_bench::experiments::{faults, srlg};
use rwc_bench::Scale;
use rwc_core::scenario::ScenarioReport;
use rwc_te::swan::SwanTe;

fn json(report: &ScenarioReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn faults_report_is_byte_identical_incremental_vs_full_rebuild() {
    let (mut inc, horizon, _) = faults::build_arm(Scale::Quick, false);
    let (mut full, _, _) = faults::build_arm(Scale::Quick, true);
    let inc_report = inc.run(horizon, &SwanTe::default()).unwrap();
    let full_report = full.run(horizon, &SwanTe::default()).unwrap();
    assert_eq!(json(&inc_report), json(&full_report));
}

#[test]
fn srlg_reports_are_byte_identical_incremental_vs_full_rebuild() {
    for mbb in [false, true] {
        let (mut inc, horizon, _) = srlg::build_arm(Scale::Quick, mbb, false);
        let (mut full, _, _) = srlg::build_arm(Scale::Quick, mbb, true);
        let inc_report = inc.run(horizon, &SwanTe::default()).unwrap();
        let full_report = full.run(horizon, &SwanTe::default()).unwrap();
        assert_eq!(json(&inc_report), json(&full_report), "make_before_break={mbb}");
    }
}
