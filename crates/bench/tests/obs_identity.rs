//! Observability must be a pure sidecar: attaching a collecting
//! [`MetricsObserver`] to the pipeline cannot change a single byte of the
//! serialized [`ScenarioReport`]. The observer is never consulted by the
//! decision logic and never touches the RNG stream, so an observed run
//! and a blind run of the same seeded scenario are the same run.

use rwc_core::prelude::*;
use rwc_faults::FaultPlanConfig;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::swan::SwanTe;
use rwc_telemetry::FleetConfig;
use rwc_topology::builders;
use std::sync::Arc;

fn campaign(obs: Arc<dyn Observer>) -> ScenarioReport {
    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: SimDuration::from_days(4),
        fiber_baseline_mean_db: 12.8,
        fiber_baseline_sd_db: 0.4,
        wavelength_jitter_sd_db: 0.6,
        ..FleetConfig::paper()
    };
    // A fault plan dense enough to drive every instrumented path:
    // retries, quarantines, stale holds, TE fallbacks.
    let plan = FaultPlanConfig {
        n_links: 5,
        horizon: SimDuration::from_days(3),
        bvt_rate_per_link_day: 2.0,
        telemetry_rate_per_link_day: 1.5,
        te_rate_per_day: 1.0,
        bvt_mean_duration: SimDuration::from_hours(8),
        seed: 0x0B5,
        ..FaultPlanConfig::default()
    }
    .generate();
    let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
    let mut scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .observer(obs)
        .build()
        .expect("campaign wiring is valid");
    scenario.run(SimDuration::from_days(3), &SwanTe::default()).unwrap()
}

#[test]
fn observed_and_blind_runs_serialize_byte_identically() {
    let blind = campaign(rwc_obs::noop());
    let metrics = Arc::new(MetricsObserver::new());
    let observed = campaign(Arc::clone(&metrics) as Arc<dyn Observer>);
    assert_eq!(
        serde_json::to_string(&blind).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "attaching an observer changed the report"
    );
    // And the comparison is not vacuous: the observed run really collected.
    let snap = metrics.snapshot();
    assert!(snap.counters["scenario.ticks"] > 0, "no ticks counted");
    assert!(snap.counters["te.rounds"] > 0, "no TE rounds counted");
    assert!(
        snap.counters["controller.decisions.hold"]
            + snap.counters["controller.decisions.step"]
            + snap.counters["controller.decisions.down"]
            > 0,
        "no controller decisions counted"
    );
    assert!(
        snap.counters["scenario.faults.bvt"]
            + snap.counters["scenario.faults.telemetry"]
            + snap.counters["scenario.faults.te"]
            > 0,
        "fault plan injected nothing"
    );
    assert!(snap.histograms["te.round_micros"].count > 0, "no round timing recorded");
}

#[test]
fn repeated_observed_runs_collect_identical_metrics() {
    let a = Arc::new(MetricsObserver::new());
    let b = Arc::new(MetricsObserver::new());
    campaign(Arc::clone(&a) as Arc<dyn Observer>);
    campaign(Arc::clone(&b) as Arc<dyn Observer>);
    let (mut sa, mut sb) = (a.snapshot(), b.snapshot());
    // Wall-clock histograms legitimately differ run to run; everything
    // simulation-derived (counters, sim-time histograms, gauges) must not.
    for s in [&mut sa, &mut sb] {
        s.histograms.retain(|name, _| !name.ends_with("_micros"));
    }
    assert_eq!(sa.to_json(), sb.to_json(), "sim-derived metrics must be deterministic");
}
