//! Soak test for the serve daemon: every chaos arm must converge to the
//! byte-identical reference report, with the damage fully accounted in
//! `serve.*` counters and memory bounded by the counting allocator.
//!
//! Arms, all over the same small fleet and seed:
//!
//! 1. **plain** — sharded serving, no trouble;
//! 2. **shard panics** — chaos-injected panics mid-soak, restarts within
//!    budget;
//! 3. **kill + resume** — the daemon is killed abruptly mid-fleet
//!    (`kill -9` semantics: no final checkpoint) and a new daemon resumes
//!    from the periodic per-shard checkpoints;
//! 4. **queue overload** — tiny queues, repeated full-fleet replay until
//!    convergence, rejections expected and counted.
//!
//! The oracle is serialized JSON of the accumulator and the merged
//! pipeline metrics — every f64 bit participates.

use rwc_bench::alloc;
use rwc_harness::ChaosPlan;
use rwc_serve::{batch_reference, Daemon, ServeCheckpointConfig, ServeConfig, ShedPolicy};
use rwc_telemetry::FleetConfig;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn soak_config() -> ServeConfig {
    let mut cfg = ServeConfig::for_fleet(FleetConfig::small());
    cfg.n_shards = 4;
    cfg.restart.base_backoff = Duration::from_millis(1);
    cfg
}

fn reference(cfg: &ServeConfig) -> (String, String) {
    let (acc, metrics) = batch_reference(cfg);
    (serde_json::to_string(&acc).unwrap(), metrics.to_json())
}

fn drive_to_completion(daemon: &Daemon) {
    let links: Vec<usize> = (0..daemon.n_links()).collect();
    let n = links.len() as u64;
    let start = Instant::now();
    while daemon.completed_links() < n {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "soak arm failed to converge: {}/{n}",
            daemon.completed_links()
        );
        daemon.ingest(&links).expect("ingest while converging");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn assert_identical(arm: &str, daemon: Daemon, want: &(String, String)) {
    let report = daemon.drain().expect("clean drain");
    assert_eq!(
        serde_json::to_string(&report.accumulator).unwrap(),
        want.0,
        "{arm}: accumulator drifted from the batch reference"
    );
    assert_eq!(
        report.pipeline_metrics.to_json(),
        want.1,
        "{arm}: pipeline metrics drifted from the batch reference"
    );
    // The overload ledger closes exactly on every arm.
    assert_eq!(
        report.counter("serve.ingested"),
        report.counter("serve.links_completed")
            + report.counter("serve.shed_oldest")
            + report.counter("serve.shed_deadline")
            + report.counter("serve.inflight_drops"),
        "{arm}: ingest ledger must close"
    );
}

#[test]
fn soak_plain_sharded_run_matches_batch_and_memory_is_bounded() {
    let cfg = soak_config();
    let want = reference(&cfg);
    let (daemon, delta) = alloc::measure(|| {
        let daemon = Daemon::start(cfg).unwrap();
        drive_to_completion(&daemon);
        daemon
    });
    // The whole soak — 40 links of 60-day traces through 4 shards — must
    // run in bounded memory: traces are analysed per-link and dropped,
    // never accumulated. 256 MiB is ~10x headroom over the observed peak.
    assert!(
        delta.peak_live_bytes < 256 << 20,
        "peak live bytes {} exceeds the soak bound",
        delta.peak_live_bytes
    );
    assert_identical("plain", daemon, &want);
}

#[test]
fn soak_shard_panics_mid_run_converge_to_reference() {
    let mut cfg = soak_config();
    cfg.restart.budget = 2;
    cfg.chaos = Some(ChaosPlan {
        seed: 41,
        panic_chunks: BTreeSet::from([5, 17, 23]),
        kill_after_chunks: None,
        poison_attempts: 1,
    });
    let want = reference(&cfg);
    let daemon = Daemon::start(cfg).unwrap();
    drive_to_completion(&daemon);
    assert!(daemon.is_ready(), "single panics stay within the restart budget");
    let metrics = daemon.serve_metrics();
    assert_eq!(metrics.counters["serve.shard_panics"], 3);
    assert_eq!(metrics.counters["serve.shard_restarts"], 3);
    assert_eq!(metrics.counters["serve.requeued"], 3);
    assert_identical("panics", daemon, &want);
}

#[test]
fn soak_kill_and_resume_matches_uninterrupted_run() {
    let dir = std::env::temp_dir()
        .join(format!("rwc_serve_soak_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = soak_config();
    cfg.checkpoint = Some(ServeCheckpointConfig { dir: dir.clone(), every_links: 2 });
    let want = reference(&cfg);
    let n = cfg.n_links() as u64;

    // First life: serve until at least half the fleet is done, then die
    // abruptly — no drain, no final checkpoint.
    let daemon = Daemon::start(cfg.clone()).unwrap();
    let links: Vec<usize> = (0..cfg.n_links()).collect();
    daemon.ingest(&links).unwrap();
    let start = Instant::now();
    while daemon.completed_links() < n / 2 {
        assert!(start.elapsed() < Duration::from_secs(60), "first life stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    let first_life = daemon.kill();
    assert!(
        first_life.counters["serve.checkpoints_written"] > 0,
        "periodic checkpoints ran before the kill"
    );

    // Second life: restore from the per-shard checkpoints and replay the
    // whole fleet — restored links dedupe, missing links re-run.
    let daemon = Daemon::start(cfg).unwrap();
    let restored = daemon.completed_links();
    assert!(restored > 0, "periodic checkpoints restore completed work");
    assert!(restored <= n, "restore cannot invent links");
    // Replay the whole fleet once explicitly: every restored link must
    // dedupe. (drive_to_completion skips ingest entirely when the first
    // life happened to finish the fleet before the kill landed, so the
    // dedupe assertion has to run on its own receipt.)
    let replay = daemon.ingest(&links).unwrap();
    assert!(
        replay.duplicates >= restored,
        "replaying restored links counts as duplicates: {replay:?}"
    );
    drive_to_completion(&daemon);
    assert_identical("kill+resume", daemon, &want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_queue_overload_converges_with_rejections_counted() {
    let mut cfg = soak_config();
    cfg.n_shards = 2;
    cfg.queue_capacity = 2;
    cfg.shed_policy = ShedPolicy::RejectNewest;
    let want = reference(&cfg);
    let daemon = Daemon::start(cfg).unwrap();
    drive_to_completion(&daemon);
    let metrics = daemon.serve_metrics();
    assert!(
        metrics.counters["serve.rejected"] > 0,
        "a 40-link replay through 2x2 queue slots must hit backpressure"
    );
    assert_identical("overload", daemon, &want);
}
