//! Algorithm 1: graph augmentation.
//!
//! For every physical link whose measured SNR supports a rate above its
//! configured one, insert *fake* parallel edges carrying the extra
//! capacity, each annotated with a penalty. An unmodified TE algorithm run
//! on the augmented graph will route over a fake edge exactly when the
//! extra capacity buys more than the penalty costs — and that routing *is*
//! the upgrade decision (read back by [`mod@crate::translate`]).
//!
//! Two ladder treatments are provided:
//!
//! - **single-step** (the paper's Algorithm 1, `U[v,w]` as one number):
//!   one fake edge per direction with capacity `feasible − current`;
//! - **multi-step**: one fake edge per intermediate rung, each carrying
//!   that rung's increment with its own penalty, letting the optimiser
//!   choose *how far* up the ladder to go, not just whether.

use crate::penalty::PenaltyPolicy;
use rwc_optics::{Modulation, ModulationTable};
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::{EdgeOrigin, TeProblem};
use rwc_topology::wan::{LinkId, WanTopology};

/// Augmentation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentConfig {
    /// Hardware modulation table (thresholds may include guard margins).
    pub table: ModulationTable,
    /// Penalty policy for fake (and real) edge costs.
    pub penalty: PenaltyPolicy,
    /// If true, add one fake edge per rung between the current and the
    /// fastest feasible rate; if false, a single fake edge to the fastest
    /// feasible rate (the paper's formulation).
    pub multi_step: bool,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            table: ModulationTable::paper_default(),
            penalty: PenaltyPolicy::default(),
            multi_step: false,
        }
    }
}

/// One fake edge of the augmented problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FakeEdge {
    /// Index of the edge in the augmented problem's network.
    pub edge_index: usize,
    /// The physical link it would upgrade.
    pub link: LinkId,
    /// Direction (`true` = the link's `a→b`).
    pub forward: bool,
    /// The rung this edge's capacity belongs to.
    pub target: Modulation,
    /// Extra capacity the edge carries (Gbps).
    pub extra_capacity: f64,
    /// Per-unit-flow penalty charged on it.
    pub penalty: f64,
}

/// The augmented TE problem plus the fake-edge ledger.
#[derive(Debug, Clone)]
pub struct AugmentedProblem {
    /// The problem handed to the (unmodified) TE algorithm.
    pub problem: TeProblem,
    /// Fake edges in insertion order.
    pub fake_edges: Vec<FakeEdge>,
    /// Number of real edges (the prefix of the edge list).
    pub n_real_edges: usize,
}

impl AugmentedProblem {
    /// Fake edges touching a given link.
    pub fn fakes_of(&self, link: LinkId) -> Vec<&FakeEdge> {
        self.fake_edges.iter().filter(|f| f.link == link).collect()
    }
}

/// Algorithm 1. `current_traffic` supplies the per-link load used by
/// traffic-dependent penalty policies (indexed by `LinkId`; links beyond
/// its length count as idle).
///
/// ```
/// use rwc_core::augment::{augment, AugmentConfig};
/// use rwc_te::demand::DemandMatrix;
/// use rwc_util::units::Db;
///
/// let mut wan = rwc_topology::builders::fig7_example();
/// for (id, _) in wan.clone().links() {
///     wan.set_snr(id, Db(7.5)); // healthy at 100 G, no headroom
/// }
/// wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0)); // can run 200 G
///
/// let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
/// // One upgradable link → one fake edge per direction.
/// assert_eq!(aug.fake_edges.len(), 2);
/// assert_eq!(aug.problem.net.n_edges(), aug.n_real_edges + 2);
/// ```
pub fn augment(
    wan: &WanTopology,
    demands: &DemandMatrix,
    config: &AugmentConfig,
    current_traffic: &[f64],
) -> AugmentedProblem {
    let mut problem = TeProblem::from_wan(wan, demands);
    let n_real_edges = problem.net.n_edges();

    // Apply the policy's real-edge costs (unit weights etc.).
    if !config.penalty.real_cost_is_zero() {
        let mut net = rwc_flow::network::FlowNetwork::new(problem.net.n_nodes());
        for (i, e) in problem.net.edges().iter().enumerate() {
            let link = wan.link(LinkId(i / 2));
            net.add_edge(e.from, e.to, e.capacity, config.penalty.real_cost(link));
        }
        problem.net = net;
    }

    let mut fake_edges = Vec::new();
    for (id, link) in wan.links() {
        let traffic = current_traffic.get(id.0).copied().unwrap_or(0.0);
        for (target, extra, penalty) in link_steps(link, config, traffic) {
            append_fake_pair(&mut problem, &mut fake_edges, link, id, target, extra, penalty);
        }
    }
    AugmentedProblem { problem, fake_edges, n_real_edges }
}

/// The fake-edge ladder for one link: `(target rung, extra capacity,
/// penalty)` per step, exactly as `augment` would emit it. Shared by the
/// full and incremental paths so both compute bit-identical gadgets.
fn link_steps(
    link: &rwc_topology::wan::WanLink,
    config: &AugmentConfig,
    traffic: f64,
) -> Vec<(Modulation, f64, f64)> {
    let upgrades = config.table.upgrades(link.snr, link.modulation);
    let Some(&fastest) = upgrades.last() else {
        return Vec::new();
    };
    let steps: Vec<(Modulation, f64)> = if config.multi_step {
        // One increment per rung: capacity deltas between consecutive
        // rungs starting from the current rate.
        let mut prev = link.capacity().value();
        upgrades
            .iter()
            .map(|&m| {
                let delta = m.capacity().value() - prev;
                prev = m.capacity().value();
                (m, delta)
            })
            .collect()
    } else {
        vec![(fastest, fastest.capacity().value() - link.capacity().value())]
    };
    steps
        .into_iter()
        .map(|(target, extra)| {
            debug_assert!(extra > 0.0);
            (target, extra, config.penalty.fake_cost(link, target, traffic))
        })
        .collect()
}

/// Appends one ladder step's forward/backward fake-edge pair to the
/// problem and the ledger, in the exact order `augment` uses.
fn append_fake_pair(
    problem: &mut TeProblem,
    fake_edges: &mut Vec<FakeEdge>,
    link: &rwc_topology::wan::WanLink,
    id: LinkId,
    target: Modulation,
    extra: f64,
    penalty: f64,
) {
    for forward in [true, false] {
        let (from, to) = if forward { (link.a.0, link.b.0) } else { (link.b.0, link.a.0) };
        let edge_index = problem.net.add_edge(from, to, extra, penalty);
        problem.origins.push(EdgeOrigin::Fake { link: id, forward });
        fake_edges.push(FakeEdge {
            edge_index,
            link: id,
            forward,
            target,
            extra_capacity: extra,
            penalty,
        });
    }
}

/// Counters describing how the incremental augmenter serviced requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AugmentStats {
    /// Requests that rebuilt the whole problem (first call, or structural
    /// change: topology shape, demand structure or config).
    pub full_rebuilds: u64,
    /// Requests serviced by patching dirty links in place.
    pub in_place_patches: u64,
    /// Requests where a dirty link's ladder changed shape, forcing a
    /// rebuild of the fake-edge suffix (real edges untouched).
    pub suffix_rebuilds: u64,
    /// Total dirty links across all incremental requests.
    pub dirty_links: u64,
}

/// Cached per-link augmentation state: the inputs the gadget depends on
/// plus the ladder it produced last time.
#[derive(Debug, Clone, PartialEq)]
struct LinkGadget {
    snr_bits: u64,
    modulation: Modulation,
    /// Traffic the penalty was computed from, as bits; constant 0 for
    /// traffic-independent policies so traffic swings don't dirty links.
    traffic_bits: u64,
    steps: Vec<(Modulation, f64, f64)>,
    /// Index of this link's first entry in the fake-edge ledger.
    fake_offset: usize,
}

/// Dirty-link incremental Algorithm 1.
///
/// Owns the augmented problem across rounds. Each call compares every
/// link's gadget inputs (SNR, modulation and — for traffic-dependent
/// penalty policies — current traffic) against the previous round and
/// recomputes only the *dirty* links' ladders:
///
/// - when every dirty ladder keeps its shape (step count), the existing
///   fake edges and ledger entries are patched in place;
/// - when a ladder changes shape, the fake-edge suffix is rebuilt from
///   cached ladders (real edges and commodities are never reconstructed);
/// - any structural change — topology shape, demand structure, config —
///   falls back to a full [`augment`] rebuild.
///
/// The result is guaranteed identical to a fresh [`augment`] call with
/// the same inputs (both paths derive every number through the same
/// [`link_steps`] helper and emit edges in the same order), which is what
/// lets the round engine swap it in without changing any report byte.
#[derive(Debug, Clone, Default)]
pub struct IncrementalAugmenter {
    cached: Option<AugmentedProblem>,
    gadgets: Vec<LinkGadget>,
    config: Option<AugmentConfig>,
    stats: AugmentStats,
}

impl IncrementalAugmenter {
    /// A fresh augmenter with no cached problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage counters.
    pub fn stats(&self) -> AugmentStats {
        self.stats
    }

    /// Drops the cache; the next call rebuilds from scratch.
    pub fn reset(&mut self) {
        self.cached = None;
    }

    /// Incremental [`augment`]: returns a problem identical to
    /// `augment(wan, demands, config, current_traffic)`, patching the
    /// cached one where possible.
    pub fn augment(
        &mut self,
        wan: &WanTopology,
        demands: &DemandMatrix,
        config: &AugmentConfig,
        current_traffic: &[f64],
    ) -> &AugmentedProblem {
        if !self.can_patch(wan, demands, config) {
            return self.rebuild(wan, demands, config, current_traffic);
        }
        let traffic_dependent = matches!(config.penalty, PenaltyPolicy::CurrentTraffic);
        // `can_patch` only returns true with a cached problem; taking it
        // out lets the patch body work on an owned value (no aliasing with
        // the gadget cache) and makes the no-cache path a rebuild instead
        // of a crash.
        let Some(mut aug) = self.cached.take() else {
            return self.rebuild(wan, demands, config, current_traffic);
        };

        // Commodities: structure is unchanged (checked above), volumes may
        // have scaled — patch them all, it's O(#demands).
        for (i, d) in demands.demands().iter().enumerate() {
            aug.problem.commodities[i].demand = d.volume.value();
            aug.problem.demands[i] = *d;
        }

        // Dirty scan + per-link recompute.
        let mut dirty: Vec<LinkId> = Vec::new();
        let mut shape_changed = false;
        for (id, link) in wan.links() {
            let traffic = current_traffic.get(id.0).copied().unwrap_or(0.0);
            let snr_bits = link.snr.value().to_bits();
            let traffic_bits = if traffic_dependent { traffic.to_bits() } else { 0 };
            let g = &self.gadgets[id.0];
            if g.snr_bits == snr_bits
                && g.modulation == link.modulation
                && g.traffic_bits == traffic_bits
            {
                continue;
            }
            let steps = link_steps(link, config, traffic);
            if steps.len() != g.steps.len() {
                shape_changed = true;
            }
            let g = &mut self.gadgets[id.0];
            g.snr_bits = snr_bits;
            g.modulation = link.modulation;
            g.traffic_bits = traffic_bits;
            g.steps = steps;
            dirty.push(id);
            self.stats.dirty_links += 1;
            // Real edges of a dirty link: capacity follows the modulation
            // (cost is policy-constant and the config didn't change).
            let cap = link.capacity().value();
            aug.problem.net.set_capacity(2 * id.0, cap);
            aug.problem.net.set_capacity(2 * id.0 + 1, cap);
        }

        if dirty.is_empty() {
            self.stats.in_place_patches += 1;
        } else if !shape_changed {
            // Every dirty ladder kept its shape: overwrite the existing
            // fake edges and ledger entries in place.
            self.stats.in_place_patches += 1;
            for id in dirty {
                let g = &self.gadgets[id.0];
                for (si, &(target, extra, penalty)) in g.steps.iter().enumerate() {
                    for dir in 0..2 {
                        let fi = g.fake_offset + 2 * si + dir;
                        let f = &mut aug.fake_edges[fi];
                        f.target = target;
                        f.extra_capacity = extra;
                        f.penalty = penalty;
                        aug.problem.net.set_capacity(f.edge_index, extra);
                        aug.problem.net.set_cost(f.edge_index, penalty);
                    }
                }
            }
        } else {
            // A ladder grew or shrank: edge indices after it shift, so
            // rebuild the fake suffix from the cached ladders. Real edges
            // and commodities stay as patched above.
            self.stats.suffix_rebuilds += 1;
            aug.problem.net.truncate_edges(aug.n_real_edges);
            aug.problem.origins.truncate(aug.n_real_edges);
            aug.fake_edges.clear();
            for (id, link) in wan.links() {
                let g = &mut self.gadgets[id.0];
                g.fake_offset = aug.fake_edges.len();
                for &(target, extra, penalty) in &g.steps {
                    append_fake_pair(
                        &mut aug.problem,
                        &mut aug.fake_edges,
                        link,
                        id,
                        target,
                        extra,
                        penalty,
                    );
                }
            }
        }
        self.cached.insert(aug)
    }

    /// Whether the cached problem can be patched to match the new inputs.
    fn can_patch(&self, wan: &WanTopology, demands: &DemandMatrix, config: &AugmentConfig) -> bool {
        let Some(aug) = &self.cached else {
            return false;
        };
        if self.config.as_ref() != Some(config) {
            return false;
        }
        if aug.n_real_edges != 2 * wan.n_links()
            || aug.problem.net.n_nodes() != wan.n_nodes()
            || self.gadgets.len() != wan.n_links()
        {
            return false;
        }
        // Demand structure (endpoints, priority, count) must match; only
        // volumes may change between patches.
        let ds = demands.demands();
        aug.problem.demands.len() == ds.len()
            && aug
                .problem
                .demands
                .iter()
                .zip(ds)
                .all(|(a, b)| a.from == b.from && a.to == b.to && a.priority == b.priority)
    }

    /// Full rebuild through [`augment`], repopulating the gadget cache.
    fn rebuild(
        &mut self,
        wan: &WanTopology,
        demands: &DemandMatrix,
        config: &AugmentConfig,
        current_traffic: &[f64],
    ) -> &AugmentedProblem {
        self.stats.full_rebuilds += 1;
        let traffic_dependent = matches!(config.penalty, PenaltyPolicy::CurrentTraffic);
        let aug = augment(wan, demands, config, current_traffic);
        self.gadgets.clear();
        let mut fake_offset = 0usize;
        for (id, link) in wan.links() {
            let traffic = current_traffic.get(id.0).copied().unwrap_or(0.0);
            let steps = link_steps(link, config, traffic);
            let n = steps.len();
            self.gadgets.push(LinkGadget {
                snr_bits: link.snr.value().to_bits(),
                modulation: link.modulation,
                traffic_bits: if traffic_dependent { traffic.to_bits() } else { 0 },
                steps,
                fake_offset,
            });
            fake_offset += 2 * n;
        }
        self.config = Some(config.clone());
        self.cached.insert(aug)
    }
}

impl PenaltyPolicy {
    /// True when the policy assigns zero cost to real edges (lets
    /// augmentation skip rebuilding the network).
    pub(crate) fn real_cost_is_zero(&self) -> bool {
        !matches!(self, PenaltyPolicy::UnitWeights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;
    use rwc_util::units::{Db, Gbps};

    fn fig7_with_headroom() -> WanTopology {
        // All five links healthy at 100 G; links 0 (A–B) and 1 (C–D) have
        // SNR for 200 G, the rest sit just below the 125 G threshold.
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5));
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0));
        wan
    }

    #[test]
    fn fake_edges_only_where_snr_allows() {
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        // Two upgradable links × two directions × one step = 4 fakes.
        assert_eq!(aug.fake_edges.len(), 4);
        assert_eq!(aug.n_real_edges, 8);
        assert_eq!(aug.problem.net.n_edges(), 12);
        let upgraded: Vec<usize> =
            aug.fake_edges.iter().map(|f| f.link.0).collect();
        assert!(upgraded.iter().all(|&l| l == 0 || l == 1), "{upgraded:?}");
    }

    #[test]
    fn single_step_capacity_is_full_delta() {
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        for f in &aug.fake_edges {
            assert_eq!(f.target, Modulation::Dp16Qam200);
            assert_eq!(f.extra_capacity, 100.0, "200 − 100");
        }
    }

    #[test]
    fn multi_step_builds_ladder() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig { multi_step: true, ..AugmentConfig::default() };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        // 13 dB supports 125/150/175/200: four increments per direction,
        // two links → 16 fakes.
        assert_eq!(aug.fake_edges.len(), 16);
        let link0: Vec<&FakeEdge> =
            aug.fakes_of(rwc_topology::wan::LinkId(0)).into_iter().collect();
        let total_extra: f64 = link0
            .iter()
            .filter(|f| f.forward)
            .map(|f| f.extra_capacity)
            .sum();
        assert_eq!(total_extra, 100.0, "increments sum to the full delta");
        // Increments are 25 each.
        assert!(link0.iter().all(|f| f.extra_capacity == 25.0));
    }

    #[test]
    fn penalty_policy_applied() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::Uniform(100.0),
            ..AugmentConfig::default()
        };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        assert!(aug.fake_edges.iter().all(|f| f.penalty == 100.0));
        // Real edges stay free.
        for i in 0..aug.n_real_edges {
            assert_eq!(aug.problem.net.edge(i).cost, 0.0);
        }
    }

    #[test]
    fn current_traffic_penalty_uses_load() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::CurrentTraffic,
            ..AugmentConfig::default()
        };
        // Link 0 carries 80 G, link 1 idle.
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[80.0, 0.0]);
        for f in &aug.fake_edges {
            let expected = if f.link.0 == 0 { 80.0 } else { 0.0 };
            assert_eq!(f.penalty, expected, "link {}", f.link.0);
        }
    }

    #[test]
    fn unit_weights_cost_real_edges() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::UnitWeights,
            ..AugmentConfig::default()
        };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        for i in 0..aug.problem.net.n_edges() {
            assert_eq!(aug.problem.net.edge(i).cost, 1.0, "edge {i}");
        }
    }

    #[test]
    fn degraded_link_gets_no_fakes() {
        let mut wan = fig7_with_headroom();
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(5.0)); // below 100 G
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        assert!(aug.fakes_of(rwc_topology::wan::LinkId(0)).is_empty());
    }

    #[test]
    fn capacity_reduction_via_reaugmentation() {
        // §4.2: "Reductions in link capacities … handled by removing the
        // corresponding fake edges." Re-running Algorithm 1 after an SNR
        // drop is exactly that removal.
        let mut wan = fig7_with_headroom();
        let before = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(7.0));
        let after = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        assert!(after.fake_edges.len() < before.fake_edges.len());
        assert!(after.fakes_of(rwc_topology::wan::LinkId(1)).is_empty());
    }

    /// Asserts the incremental result is indistinguishable from a fresh
    /// `augment` of the same inputs — networks, ledgers and origins.
    fn assert_identical(inc: &AugmentedProblem, fresh: &AugmentedProblem) {
        assert_eq!(inc.n_real_edges, fresh.n_real_edges);
        assert_eq!(inc.problem.net, fresh.problem.net);
        assert_eq!(inc.fake_edges, fresh.fake_edges);
        assert_eq!(inc.problem.origins, fresh.problem.origins);
        assert_eq!(inc.problem.commodities.len(), fresh.problem.commodities.len());
        for (a, b) in inc.problem.commodities.iter().zip(&fresh.problem.commodities) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.sink, b.sink);
            assert_eq!(a.demand.to_bits(), b.demand.to_bits());
        }
    }

    #[test]
    fn incremental_matches_full_across_snr_drift() {
        let mut wan = fig7_with_headroom();
        let cfg = AugmentConfig::default();
        let mut inc = IncrementalAugmenter::new();
        // Rounds of SNR drift: upgrades appear, change rung and vanish.
        let snrs = [13.0, 13.2, 10.0, 7.0, 13.0, 5.0, 13.5];
        for (round, &snr) in snrs.iter().enumerate() {
            wan.set_snr(rwc_topology::wan::LinkId(round % 2), Db(snr));
            let fresh = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
            let patched = inc.augment(&wan, &DemandMatrix::new(), &cfg, &[]);
            assert_identical(patched, &fresh);
        }
        let stats = inc.stats();
        assert_eq!(stats.full_rebuilds, 1, "only the first call rebuilds: {stats:?}");
        assert!(stats.suffix_rebuilds >= 1, "rung changes force suffix rebuilds: {stats:?}");
    }

    #[test]
    fn incremental_patches_in_place_when_only_traffic_moves() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::CurrentTraffic,
            ..AugmentConfig::default()
        };
        let mut inc = IncrementalAugmenter::new();
        for traffic in [[0.0, 0.0], [80.0, 10.0], [80.0, 10.0], [20.0, 90.0]] {
            let fresh = augment(&wan, &DemandMatrix::new(), &cfg, &traffic);
            let patched = inc.augment(&wan, &DemandMatrix::new(), &cfg, &traffic);
            assert_identical(patched, &fresh);
        }
        let stats = inc.stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.suffix_rebuilds, 0, "same ladder shape: patch in place");
        assert_eq!(stats.in_place_patches, 3);
    }

    #[test]
    fn incremental_tracks_demand_scaling() {
        let wan = fig7_with_headroom();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), rwc_te::demand::Priority::Elastic);
        let cfg = AugmentConfig::default();
        let mut inc = IncrementalAugmenter::new();
        for scale in [1.0, 1.3, 0.7, 1.0] {
            let scaled = dm.scaled(scale);
            let fresh = augment(&wan, &scaled, &cfg, &[]);
            let patched = inc.augment(&wan, &scaled, &cfg, &[]);
            assert_identical(patched, &fresh);
        }
        assert_eq!(inc.stats().full_rebuilds, 1, "volume changes never rebuild");
    }

    #[test]
    fn config_change_forces_full_rebuild() {
        let wan = fig7_with_headroom();
        let mut inc = IncrementalAugmenter::new();
        inc.augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        let multi = AugmentConfig { multi_step: true, ..AugmentConfig::default() };
        let fresh = augment(&wan, &DemandMatrix::new(), &multi, &[]);
        let patched = inc.augment(&wan, &DemandMatrix::new(), &multi, &[]);
        assert_identical(patched, &fresh);
        assert_eq!(inc.stats().full_rebuilds, 2);
    }

    #[test]
    fn total_capacity_bound() {
        // Augmented capacity between two nodes never exceeds the fastest
        // feasible rung.
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        let link = wan.link(rwc_topology::wan::LinkId(0));
        let total: f64 = aug
            .problem
            .net
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.from == link.a.0
                    && e.to == link.b.0
                    && (*i < aug.n_real_edges || aug.fake_edges.iter().any(|f| f.edge_index == *i))
            })
            .map(|(_, e)| e.capacity)
            .sum();
        assert_eq!(Gbps(total), Modulation::Dp16Qam200.capacity());
    }
}
