//! Algorithm 1: graph augmentation.
//!
//! For every physical link whose measured SNR supports a rate above its
//! configured one, insert *fake* parallel edges carrying the extra
//! capacity, each annotated with a penalty. An unmodified TE algorithm run
//! on the augmented graph will route over a fake edge exactly when the
//! extra capacity buys more than the penalty costs — and that routing *is*
//! the upgrade decision (read back by [`mod@crate::translate`]).
//!
//! Two ladder treatments are provided:
//!
//! - **single-step** (the paper's Algorithm 1, `U[v,w]` as one number):
//!   one fake edge per direction with capacity `feasible − current`;
//! - **multi-step**: one fake edge per intermediate rung, each carrying
//!   that rung's increment with its own penalty, letting the optimiser
//!   choose *how far* up the ladder to go, not just whether.

use crate::penalty::PenaltyPolicy;
use rwc_optics::{Modulation, ModulationTable};
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::{EdgeOrigin, TeProblem};
use rwc_topology::wan::{LinkId, WanTopology};

/// Augmentation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentConfig {
    /// Hardware modulation table (thresholds may include guard margins).
    pub table: ModulationTable,
    /// Penalty policy for fake (and real) edge costs.
    pub penalty: PenaltyPolicy,
    /// If true, add one fake edge per rung between the current and the
    /// fastest feasible rate; if false, a single fake edge to the fastest
    /// feasible rate (the paper's formulation).
    pub multi_step: bool,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            table: ModulationTable::paper_default(),
            penalty: PenaltyPolicy::default(),
            multi_step: false,
        }
    }
}

/// One fake edge of the augmented problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FakeEdge {
    /// Index of the edge in the augmented problem's network.
    pub edge_index: usize,
    /// The physical link it would upgrade.
    pub link: LinkId,
    /// Direction (`true` = the link's `a→b`).
    pub forward: bool,
    /// The rung this edge's capacity belongs to.
    pub target: Modulation,
    /// Extra capacity the edge carries (Gbps).
    pub extra_capacity: f64,
    /// Per-unit-flow penalty charged on it.
    pub penalty: f64,
}

/// The augmented TE problem plus the fake-edge ledger.
#[derive(Debug, Clone)]
pub struct AugmentedProblem {
    /// The problem handed to the (unmodified) TE algorithm.
    pub problem: TeProblem,
    /// Fake edges in insertion order.
    pub fake_edges: Vec<FakeEdge>,
    /// Number of real edges (the prefix of the edge list).
    pub n_real_edges: usize,
}

impl AugmentedProblem {
    /// Fake edges touching a given link.
    pub fn fakes_of(&self, link: LinkId) -> Vec<&FakeEdge> {
        self.fake_edges.iter().filter(|f| f.link == link).collect()
    }
}

/// Algorithm 1. `current_traffic` supplies the per-link load used by
/// traffic-dependent penalty policies (indexed by `LinkId`; links beyond
/// its length count as idle).
///
/// ```
/// use rwc_core::augment::{augment, AugmentConfig};
/// use rwc_te::demand::DemandMatrix;
/// use rwc_util::units::Db;
///
/// let mut wan = rwc_topology::builders::fig7_example();
/// for (id, _) in wan.clone().links() {
///     wan.set_snr(id, Db(7.5)); // healthy at 100 G, no headroom
/// }
/// wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0)); // can run 200 G
///
/// let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
/// // One upgradable link → one fake edge per direction.
/// assert_eq!(aug.fake_edges.len(), 2);
/// assert_eq!(aug.problem.net.n_edges(), aug.n_real_edges + 2);
/// ```
pub fn augment(
    wan: &WanTopology,
    demands: &DemandMatrix,
    config: &AugmentConfig,
    current_traffic: &[f64],
) -> AugmentedProblem {
    let mut problem = TeProblem::from_wan(wan, demands);
    let n_real_edges = problem.net.n_edges();

    // Apply the policy's real-edge costs (unit weights etc.).
    if !config.penalty.real_cost_is_zero() {
        let mut net = rwc_flow::network::FlowNetwork::new(problem.net.n_nodes());
        for (i, e) in problem.net.edges().iter().enumerate() {
            let link = wan.link(LinkId(i / 2));
            net.add_edge(e.from, e.to, e.capacity, config.penalty.real_cost(link));
        }
        problem.net = net;
    }

    let mut fake_edges = Vec::new();
    for (id, link) in wan.links() {
        let traffic = current_traffic.get(id.0).copied().unwrap_or(0.0);
        let upgrades = config.table.upgrades(link.snr, link.modulation);
        let Some(&fastest) = upgrades.last() else {
            continue;
        };
        let steps: Vec<(Modulation, f64)> = if config.multi_step {
            // One increment per rung: capacity deltas between consecutive
            // rungs starting from the current rate.
            let mut prev = link.capacity().value();
            upgrades
                .iter()
                .map(|&m| {
                    let delta = m.capacity().value() - prev;
                    prev = m.capacity().value();
                    (m, delta)
                })
                .collect()
        } else {
            vec![(fastest, fastest.capacity().value() - link.capacity().value())]
        };
        for (target, extra) in steps {
            debug_assert!(extra > 0.0);
            let penalty = config.penalty.fake_cost(link, target, traffic);
            for forward in [true, false] {
                let (from, to) =
                    if forward { (link.a.0, link.b.0) } else { (link.b.0, link.a.0) };
                let edge_index = problem.net.add_edge(from, to, extra, penalty);
                problem.origins.push(EdgeOrigin::Fake { link: id, forward });
                fake_edges.push(FakeEdge {
                    edge_index,
                    link: id,
                    forward,
                    target,
                    extra_capacity: extra,
                    penalty,
                });
            }
        }
    }
    AugmentedProblem { problem, fake_edges, n_real_edges }
}

impl PenaltyPolicy {
    /// True when the policy assigns zero cost to real edges (lets
    /// augmentation skip rebuilding the network).
    pub(crate) fn real_cost_is_zero(&self) -> bool {
        !matches!(self, PenaltyPolicy::UnitWeights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;
    use rwc_util::units::{Db, Gbps};

    fn fig7_with_headroom() -> WanTopology {
        // All five links healthy at 100 G; links 0 (A–B) and 1 (C–D) have
        // SNR for 200 G, the rest sit just below the 125 G threshold.
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5));
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0));
        wan
    }

    #[test]
    fn fake_edges_only_where_snr_allows() {
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        // Two upgradable links × two directions × one step = 4 fakes.
        assert_eq!(aug.fake_edges.len(), 4);
        assert_eq!(aug.n_real_edges, 8);
        assert_eq!(aug.problem.net.n_edges(), 12);
        let upgraded: Vec<usize> =
            aug.fake_edges.iter().map(|f| f.link.0).collect();
        assert!(upgraded.iter().all(|&l| l == 0 || l == 1), "{upgraded:?}");
    }

    #[test]
    fn single_step_capacity_is_full_delta() {
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        for f in &aug.fake_edges {
            assert_eq!(f.target, Modulation::Dp16Qam200);
            assert_eq!(f.extra_capacity, 100.0, "200 − 100");
        }
    }

    #[test]
    fn multi_step_builds_ladder() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig { multi_step: true, ..AugmentConfig::default() };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        // 13 dB supports 125/150/175/200: four increments per direction,
        // two links → 16 fakes.
        assert_eq!(aug.fake_edges.len(), 16);
        let link0: Vec<&FakeEdge> =
            aug.fakes_of(rwc_topology::wan::LinkId(0)).into_iter().collect();
        let total_extra: f64 = link0
            .iter()
            .filter(|f| f.forward)
            .map(|f| f.extra_capacity)
            .sum();
        assert_eq!(total_extra, 100.0, "increments sum to the full delta");
        // Increments are 25 each.
        assert!(link0.iter().all(|f| f.extra_capacity == 25.0));
    }

    #[test]
    fn penalty_policy_applied() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::Uniform(100.0),
            ..AugmentConfig::default()
        };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        assert!(aug.fake_edges.iter().all(|f| f.penalty == 100.0));
        // Real edges stay free.
        for i in 0..aug.n_real_edges {
            assert_eq!(aug.problem.net.edge(i).cost, 0.0);
        }
    }

    #[test]
    fn current_traffic_penalty_uses_load() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::CurrentTraffic,
            ..AugmentConfig::default()
        };
        // Link 0 carries 80 G, link 1 idle.
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[80.0, 0.0]);
        for f in &aug.fake_edges {
            let expected = if f.link.0 == 0 { 80.0 } else { 0.0 };
            assert_eq!(f.penalty, expected, "link {}", f.link.0);
        }
    }

    #[test]
    fn unit_weights_cost_real_edges() {
        let wan = fig7_with_headroom();
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::UnitWeights,
            ..AugmentConfig::default()
        };
        let aug = augment(&wan, &DemandMatrix::new(), &cfg, &[]);
        for i in 0..aug.problem.net.n_edges() {
            assert_eq!(aug.problem.net.edge(i).cost, 1.0, "edge {i}");
        }
    }

    #[test]
    fn degraded_link_gets_no_fakes() {
        let mut wan = fig7_with_headroom();
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(5.0)); // below 100 G
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        assert!(aug.fakes_of(rwc_topology::wan::LinkId(0)).is_empty());
    }

    #[test]
    fn capacity_reduction_via_reaugmentation() {
        // §4.2: "Reductions in link capacities … handled by removing the
        // corresponding fake edges." Re-running Algorithm 1 after an SNR
        // drop is exactly that removal.
        let mut wan = fig7_with_headroom();
        let before = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(7.0));
        let after = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        assert!(after.fake_edges.len() < before.fake_edges.len());
        assert!(after.fakes_of(rwc_topology::wan::LinkId(1)).is_empty());
    }

    #[test]
    fn total_capacity_bound() {
        // Augmented capacity between two nodes never exceeds the fastest
        // feasible rung.
        let wan = fig7_with_headroom();
        let aug = augment(&wan, &DemandMatrix::new(), &AugmentConfig::default(), &[]);
        let link = wan.link(rwc_topology::wan::LinkId(0));
        let total: f64 = aug
            .problem
            .net
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.from == link.a.0
                    && e.to == link.b.0
                    && (*i < aug.n_real_edges || aug.fake_edges.iter().any(|f| f.edge_index == *i))
            })
            .map(|(_, e)| e.capacity)
            .sum();
        assert_eq!(Gbps(total), Modulation::Dp16Qam200.capacity());
    }
}
