//! The run/walk/crawl controller.
//!
//! The paper's titular policy: drive each link as fast as its SNR allows
//! (**run**), step it down to an intermediate rate when the signal degrades
//! (**walk**), fall back to the 50 G floor rather than declaring the link
//! down (**crawl**), and only fail it when even the floor is infeasible.
//!
//! Two safeguards keep the fleet from flapping — the failure mode §2.1
//! warns about when operating close to threshold:
//!
//! - **hysteresis**: stepping *up* requires the SNR to clear the target
//!   rung's threshold by `upgrade_margin`; stepping down happens as soon
//!   as the current rung is infeasible (safety is never delayed);
//! - **dwell**: after any change, upgrades are suppressed for `dwell`
//!   (downgrades are still immediate).
//!
//! Every reconfiguration is executed through the [`rwc_optics::bvt`]
//! model, so downtime accounting reflects the procedure in use (legacy
//! ≈ 68 s vs efficient ≈ 35 ms).

use crate::error::RwcError;
use rwc_obs::{Event, Observer};
use rwc_optics::bvt::{Bvt, BvtError, BvtFault, LatencyModel, PreparedChange, ReconfigProcedure};
use rwc_optics::{Modulation, ModulationTable};
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Controller tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hardware threshold table.
    pub table: ModulationTable,
    /// Extra SNR (beyond the rung threshold) required to step up.
    pub upgrade_margin: Db,
    /// Minimum time between *upgrades* on one link.
    pub dwell: SimDuration,
    /// BVT procedure used for changes.
    pub procedure: ReconfigProcedure,
    /// BVT latency model.
    pub latency: LatencyModel,
    /// Whether the controller may step links *up* on its own when margin
    /// allows (standalone "run" mode). Set false when a TE layer owns the
    /// upgrade decision through the graph abstraction — the controller
    /// then only handles safety (walk/crawl/down).
    pub auto_upgrade: bool,
    /// Retry budget per modulation change: a change is attempted
    /// `1 + max_retries` times before the failure counts against the link.
    pub max_retries: u32,
    /// Control-plane backoff between retry attempts, charged as downtime
    /// (the carrier is typically unlocked while the module recovers).
    pub retry_backoff: SimDuration,
    /// Fractional jitter on [`ControllerConfig::retry_backoff`]: each
    /// backoff is scaled by a seeded draw from `1 ± retry_jitter`, so
    /// links in the same fault domain that fail at the same instant don't
    /// stampede their retries in lockstep. `0.0` disables jitter.
    pub retry_jitter: f64,
    /// Watchdog deadline for the commit phase of a staged change: a
    /// commit still mid-phase at the deadline is abandoned as a typed
    /// [`BvtError::StageTimeout`] instead of hanging. Must clear the
    /// legacy procedure's latency tail (≈400 s observed at p-max).
    pub commit_deadline: SimDuration,
    /// Extra SNR margin [`Controller::prepare_change`] demands beyond the
    /// target rung's threshold before reserving it. Zero by default: the
    /// TE layer's upgrade decisions already ride on observed SNR, and the
    /// controller's own upgrade path applies `upgrade_margin` at decision
    /// time.
    pub prepare_margin: Db,
    /// Consecutive failed changes after which a link is quarantined —
    /// pinned to its last safe modulation with further changes suppressed.
    pub quarantine_after: u32,
    /// How long a quarantined link stays pinned before changes are
    /// allowed again.
    pub quarantine_hold: SimDuration,
    /// Last-known-good SNR policy: when a reading is missing, the most
    /// recent one no older than this bound is used instead. Beyond it the
    /// link holds position and is marked degraded rather than acted on.
    pub snr_staleness_bound: SimDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            table: ModulationTable::paper_default(),
            upgrade_margin: Db(1.0),
            dwell: SimDuration::from_hours(1),
            procedure: ReconfigProcedure::Efficient,
            latency: LatencyModel::default(),
            auto_upgrade: true,
            max_retries: 2,
            retry_backoff: SimDuration::from_millis(100),
            retry_jitter: 0.5,
            commit_deadline: SimDuration::from_secs(600),
            prepare_margin: Db(0.0),
            quarantine_after: 3,
            quarantine_hold: SimDuration::from_hours(4),
            snr_staleness_bound: SimDuration::from_minutes(45),
        }
    }
}

impl ControllerConfig {
    /// Starts a validating builder seeded with the defaults. Prefer this
    /// over struct-literal updates for new code: [`ControllerConfigBuilder::build`]
    /// rejects nonsense (negative margins, jitter outside `[0, 1]`) as a
    /// typed [`RwcError::Config`] instead of a panic deep in the run.
    pub fn builder() -> ControllerConfigBuilder {
        ControllerConfigBuilder { config: Self::default() }
    }
}

/// Validating builder for [`ControllerConfig`]; see [`ControllerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ControllerConfigBuilder {
    config: ControllerConfig,
}

impl ControllerConfigBuilder {
    /// Hardware threshold table.
    pub fn table(mut self, table: ModulationTable) -> Self {
        self.config.table = table;
        self
    }

    /// Extra SNR required to step up.
    pub fn upgrade_margin(mut self, margin: Db) -> Self {
        self.config.upgrade_margin = margin;
        self
    }

    /// Minimum time between upgrades on one link.
    pub fn dwell(mut self, dwell: SimDuration) -> Self {
        self.config.dwell = dwell;
        self
    }

    /// BVT procedure used for changes.
    pub fn procedure(mut self, procedure: ReconfigProcedure) -> Self {
        self.config.procedure = procedure;
        self
    }

    /// BVT latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Whether the controller may step links up on its own.
    pub fn auto_upgrade(mut self, on: bool) -> Self {
        self.config.auto_upgrade = on;
        self
    }

    /// Retry budget per modulation change.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Control-plane backoff between retry attempts.
    pub fn retry_backoff(mut self, backoff: SimDuration) -> Self {
        self.config.retry_backoff = backoff;
        self
    }

    /// Fractional jitter on the retry backoff, in `[0, 1]`.
    pub fn retry_jitter(mut self, jitter: f64) -> Self {
        self.config.retry_jitter = jitter;
        self
    }

    /// Watchdog deadline for the commit phase of a staged change.
    pub fn commit_deadline(mut self, deadline: SimDuration) -> Self {
        self.config.commit_deadline = deadline;
        self
    }

    /// Extra SNR margin demanded by `prepare_change`.
    pub fn prepare_margin(mut self, margin: Db) -> Self {
        self.config.prepare_margin = margin;
        self
    }

    /// Consecutive failures after which a link is quarantined.
    pub fn quarantine_after(mut self, failures: u32) -> Self {
        self.config.quarantine_after = failures;
        self
    }

    /// How long a quarantined link stays pinned.
    pub fn quarantine_hold(mut self, hold: SimDuration) -> Self {
        self.config.quarantine_hold = hold;
        self
    }

    /// Last-known-good SNR staleness bound.
    pub fn snr_staleness_bound(mut self, bound: SimDuration) -> Self {
        self.config.snr_staleness_bound = bound;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ControllerConfig, RwcError> {
        let c = &self.config;
        if c.upgrade_margin.value() < 0.0 {
            return Err(RwcError::Config(format!(
                "upgrade_margin must be non-negative, got {}",
                c.upgrade_margin
            )));
        }
        if c.prepare_margin.value() < 0.0 {
            return Err(RwcError::Config(format!(
                "prepare_margin must be non-negative, got {}",
                c.prepare_margin
            )));
        }
        if !(0.0..=1.0).contains(&c.retry_jitter) {
            return Err(RwcError::Config(format!(
                "retry_jitter must be within [0, 1], got {}",
                c.retry_jitter
            )));
        }
        if c.quarantine_after == 0 {
            return Err(RwcError::Config(
                "quarantine_after must be at least 1 (0 would quarantine a link \
                 before its first failure)"
                    .into(),
            ));
        }
        if c.table.entries().is_empty() {
            return Err(RwcError::Config("modulation table has no rungs".into()));
        }
        Ok(self.config)
    }
}

/// What the controller decided for one link at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Keep the current rate.
    Hold,
    /// Reconfigure to a different rung (up or down).
    StepTo(Modulation),
    /// Not even the slowest rung is feasible: the link is down.
    Down,
}

/// Controller's view of one link's operational health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkHealth {
    /// Operating normally.
    Healthy,
    /// Recent reconfiguration failures or stale telemetry — changes are
    /// still attempted, but the link is on notice.
    Degraded,
    /// Too many consecutive failures: pinned to its last safe modulation
    /// until the hold-down expires.
    Quarantined,
}

#[derive(Debug, Clone)]
struct LinkState {
    last_change: Option<SimTime>,
    down: bool,
    /// Failed changes since the last success (resets on success).
    consecutive_failures: u32,
    /// End of the current quarantine hold-down, if any.
    quarantined_until: Option<SimTime>,
    /// Most recent trusted SNR reading.
    last_good: Option<(SimTime, Db)>,
    /// Telemetry for this link is currently older than the staleness bound.
    stale: bool,
}

impl LinkState {
    fn new() -> Self {
        Self {
            last_change: None,
            down: false,
            consecutive_failures: 0,
            quarantined_until: None,
            last_good: None,
            stale: false,
        }
    }
}

/// Outcome of one controller sweep over the fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// `(link, from, to)` for every reconfiguration applied.
    pub changes: Vec<(LinkId, Modulation, Modulation)>,
    /// Links newly declared down (no feasible rung, or an unrecoverable
    /// reconfiguration failure).
    pub went_down: Vec<LinkId>,
    /// Links recovered from down.
    pub recovered: Vec<LinkId>,
    /// Total reconfiguration downtime accrued this sweep.
    pub downtime: SimDuration,
    /// Downgrades that would have been *failures* on a fixed-capacity
    /// link (SNR below the old rung's threshold but above a lower rung's)
    /// — the paper's "flap instead of fail" count.
    pub failures_avoided: usize,
    /// Retry attempts spent on flaky reconfigurations this sweep.
    pub retries: u32,
    /// Changes that failed even after retries.
    pub reconfig_failures: usize,
    /// Links pushed into quarantine this sweep.
    pub quarantined: Vec<LinkId>,
    /// Links that held position because telemetry was missing and the
    /// last-known-good reading had gone stale.
    pub stale_holds: usize,
}

/// Outcome of executing one modulation change through the BVT model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeResult {
    /// Whether the change is in force on the topology.
    pub applied: bool,
    /// Downtime charged: successful phases, failed partial attempts,
    /// module resets and retry backoff.
    pub downtime: SimDuration,
    /// Retry attempts consumed beyond the first try.
    pub retries: u32,
    /// Whether this failure pushed the link into quarantine.
    pub quarantined: bool,
    /// Whether a failed staged commit was rolled back to the prior
    /// modulation (make-before-break unhappy path). Always `false` on the
    /// direct [`Controller::execute_change`] path.
    pub rolled_back: bool,
}

/// The run/walk/crawl controller for a fleet of links.
#[derive(Debug, Clone)]
pub struct Controller {
    config: ControllerConfig,
    states: Vec<LinkState>,
    /// One transceiver model per link. Modulation registers are slaved to
    /// the topology before every operation; the Bvt carries the fault and
    /// lock state machine.
    bvts: Vec<Bvt>,
    rng: Xoshiro256,
    obs: Arc<dyn Observer>,
}

impl Controller {
    /// Creates a controller for `n_links` links.
    pub fn new(config: ControllerConfig, n_links: usize, seed: u64) -> Self {
        assert!(config.upgrade_margin.value() >= 0.0, "negative margin");
        let bvts = (0..n_links)
            .map(|_| {
                let mut bvt = Bvt::new(Modulation::DpQpsk100).with_model(config.latency.clone());
                bvt.set_procedure(config.procedure);
                bvt
            })
            .collect();
        Self {
            config,
            states: (0..n_links).map(|_| LinkState::new()).collect(),
            bvts,
            rng: Xoshiro256::seed_from_u64(seed),
            obs: rwc_obs::noop(),
        }
    }

    /// Routes this controller's metrics and events (and those of every
    /// per-link transceiver model) to `obs`. Observability is measurement
    /// only: it never changes a decision, a report or the RNG stream.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        for bvt in &mut self.bvts {
            bvt.set_observer(Arc::clone(&obs));
        }
        self.obs = obs;
    }

    /// The configuration in use.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Whether a link is currently declared down.
    pub fn is_down(&self, link: LinkId) -> bool {
        self.states[link.0].down
    }

    /// Whether a link is in its quarantine hold-down at `now`.
    pub fn is_quarantined(&self, link: LinkId, now: SimTime) -> bool {
        self.states[link.0].quarantined_until.is_some_and(|t| now < t)
    }

    /// The link's health as of `now`.
    pub fn health(&self, link: LinkId, now: SimTime) -> LinkHealth {
        let st = &self.states[link.0];
        if st.quarantined_until.is_some_and(|t| now < t) {
            LinkHealth::Quarantined
        } else if st.consecutive_failures > 0 || st.stale {
            LinkHealth::Degraded
        } else {
            LinkHealth::Healthy
        }
    }

    /// The most recent trusted SNR reading for a link.
    pub fn last_good_snr(&self, link: LinkId) -> Option<(SimTime, Db)> {
        self.states[link.0].last_good
    }

    /// Read access to a link's transceiver model.
    pub fn bvt(&self, link: LinkId) -> &Bvt {
        &self.bvts[link.0]
    }

    /// Arms a hardware fault on a link's transceiver: the next applicable
    /// operation on that module fails.
    pub fn inject_bvt_fault(&mut self, link: LinkId, fault: BvtFault) {
        self.bvts[link.0].inject_fault(fault);
    }

    /// Pure decision logic for one link (no state change).
    pub fn decide(&self, link: LinkId, current: Modulation, snr: Db, now: SimTime) -> Decision {
        let table = &self.config.table;
        let state = &self.states[link.0];

        // Safety first: if the current rung is infeasible, step down (or
        // die) immediately — dwell never delays a safety action.
        if !table.supports(snr, current) {
            return match table.feasible(snr) {
                Some(slower) => Decision::StepTo(slower),
                None => Decision::Down,
            };
        }

        // Upgrade path: fastest rung whose threshold + margin clears.
        if !self.config.auto_upgrade {
            return Decision::Hold;
        }
        let dwell_ok = state
            .last_change
            .is_none_or(|t| now.saturating_duration_since(t) >= self.config.dwell);
        if dwell_ok {
            let target = table
                .entries()
                .iter()
                .rev()
                .find(|&&(m, threshold)| snr >= threshold + self.config.upgrade_margin && m.capacity() > current.capacity())
                .map(|&(m, _)| m);
            if let Some(m) = target {
                return Decision::StepTo(m);
            }
        }
        Decision::Hold
    }

    /// Executes one modulation change through the link's transceiver, with
    /// retry-and-bounded-backoff on failure and quarantine when a link
    /// keeps failing. Shared by the safety sweep and the TE upgrade path,
    /// so every change in the system sees the same fault handling.
    ///
    /// On a change that fails out of retries, the module is reset to a
    /// locked state at whatever format its registers landed on, the
    /// topology is synced to that format, and — once the consecutive-
    /// failure budget is spent — the link enters quarantine pinned there.
    /// If the pinned format is not feasible at the last trusted SNR, the
    /// link is declared down instead of carrying a rate the signal cannot
    /// support (a quarantine pin is never infeasible).
    pub fn execute_change(
        &mut self,
        wan: &mut WanTopology,
        link: LinkId,
        target: Modulation,
        now: SimTime,
    ) -> ChangeResult {
        self.expire_quarantine(link, now);
        if self.is_quarantined(link, now) {
            return ChangeResult {
                applied: false,
                downtime: SimDuration::ZERO,
                retries: 0,
                quarantined: true,
                rolled_back: false,
            };
        }
        let current = wan.link(link).modulation;
        self.bvts[link.0].sync_modulation(current);
        if self.obs.enabled() {
            self.obs.event(&Event::ReconfigStarted {
                link: link.0 as u64,
                from_gbps: current.capacity().value(),
                to_gbps: target.capacity().value(),
                staged: false,
            });
        }
        let mut downtime = SimDuration::ZERO;
        let mut retries = 0u32;
        let attempts = 1 + self.config.max_retries;
        for attempt in 0..attempts {
            match self.bvts[link.0].reconfigure(target, &mut self.rng) {
                Ok(report) => {
                    downtime += report.downtime;
                    wan.set_modulation(link, target);
                    let st = &mut self.states[link.0];
                    st.last_change = Some(now);
                    st.consecutive_failures = 0;
                    self.publish_applied(link, target, downtime, retries);
                    return ChangeResult {
                        applied: true,
                        downtime,
                        retries,
                        quarantined: false,
                        rolled_back: false,
                    };
                }
                Err(BvtError::Timeout) => {
                    // Command lost on the management bus: the module never
                    // saw it, the link kept carrying traffic.
                }
                Err(BvtError::ReconfigFailed { elapsed, .. }) => {
                    downtime += elapsed;
                    downtime += self.bvts[link.0].reset(&mut self.rng);
                }
                Err(_) => {
                    // Busy or a register-level rejection: recover the
                    // module before trying again.
                    downtime += self.bvts[link.0].reset(&mut self.rng);
                }
            }
            if attempt + 1 < attempts {
                retries += 1;
                downtime += self.jittered_backoff();
            }
        }
        // Out of retries. Make sure the module is locked at *some* rate and
        // the topology agrees with where the hardware actually landed.
        downtime += self.bvts[link.0].reset(&mut self.rng);
        let landed = self.bvts[link.0].modulation();
        if landed != current {
            wan.set_modulation(link, landed);
        }
        let quarantine_after = self.config.quarantine_after;
        let feasible_at_last_good = self.states[link.0]
            .last_good
            .map(|(_, snr)| self.config.table.supports(snr, landed));
        let st = &mut self.states[link.0];
        st.consecutive_failures += 1;
        let mut quarantined = false;
        if st.consecutive_failures >= quarantine_after {
            st.quarantined_until = Some(now + self.config.quarantine_hold);
            quarantined = true;
            if feasible_at_last_good == Some(false) {
                // Never quarantine into an infeasible rate: the signal
                // cannot carry the pinned format, so this is an outage.
                st.down = true;
            }
        }
        self.publish_failed(link, target, false, quarantined, retries, now);
        ChangeResult { applied: false, downtime, retries, quarantined, rolled_back: false }
    }

    /// Metrics/events for a change that landed. Counter bumps go through
    /// unconditionally (free on the noop observer); the event allocation
    /// is gated on [`Observer::enabled`].
    fn publish_applied(
        &self,
        link: LinkId,
        target: Modulation,
        downtime: SimDuration,
        retries: u32,
    ) {
        self.obs.incr("controller.changes.applied", 1);
        self.obs.incr("controller.retries", retries as u64);
        if self.obs.enabled() {
            self.obs.record("controller.change_downtime_millis", downtime.as_millis() as f64);
            self.obs.event(&Event::ReconfigCommitted {
                link: link.0 as u64,
                to_gbps: target.capacity().value(),
                downtime_millis: downtime.as_millis(),
                retries: retries as u64,
            });
        }
    }

    /// Metrics/events for a change that failed out of retries (rolled
    /// back on the staged path, landed-as-is on the direct path).
    fn publish_failed(
        &self,
        link: LinkId,
        target: Modulation,
        rolled_back: bool,
        quarantined: bool,
        retries: u32,
        now: SimTime,
    ) {
        self.obs.incr("controller.changes.failed", 1);
        self.obs.incr("controller.retries", retries as u64);
        if rolled_back {
            self.obs.incr("controller.changes.rolled_back", 1);
        }
        if quarantined {
            self.obs.incr("controller.quarantines", 1);
        }
        if self.obs.enabled() {
            self.obs.event(&Event::ReconfigAborted {
                link: link.0 as u64,
                to_gbps: target.capacity().value(),
                rolled_back,
            });
            if quarantined {
                self.obs.event(&Event::Quarantine {
                    link: link.0 as u64,
                    until_millis: (now + self.config.quarantine_hold).as_millis(),
                });
            }
        }
    }

    /// Lazily retires an expired quarantine hold. Clearing the
    /// consecutive-failure counter here matters: a link released from
    /// quarantine starts with a clean slate, so its first post-hold
    /// failure does not instantly re-quarantine it.
    fn expire_quarantine(&mut self, link: LinkId, now: SimTime) {
        let st = &mut self.states[link.0];
        if st.quarantined_until.is_some_and(|t| now >= t) {
            st.quarantined_until = None;
            st.consecutive_failures = 0;
        }
    }

    /// One seeded backoff draw: `retry_backoff × (1 ± retry_jitter)`.
    /// Deterministic per controller seed, decorrelated across draws — so
    /// links that fail at the same instant retry at different offsets
    /// instead of stampeding.
    fn jittered_backoff(&mut self) -> SimDuration {
        let j = self.config.retry_jitter;
        if j == 0.0 {
            return self.config.retry_backoff;
        }
        let scale = 1.0 + j * (2.0 * self.rng.uniform() - 1.0);
        SimDuration::from_secs_f64(self.config.retry_backoff.as_secs_f64() * scale.max(0.0))
    }

    /// Stage 1 of a make-before-break change: validate and reserve the
    /// target on the link's transceiver without touching the light.
    ///
    /// Refuses quarantined links with [`RwcError::Quarantined`] and
    /// surfaces the module's own refusals ([`BvtError::InsufficientMargin`]
    /// when the topology's current SNR cannot clear the target by
    /// [`ControllerConfig::prepare_margin`], `Busy`, `AlreadyPrepared`,
    /// bus timeouts) as [`RwcError::Bvt`]. On success nothing optical has
    /// changed and [`Controller::abort_change`] is free.
    pub fn prepare_change(
        &mut self,
        wan: &WanTopology,
        link: LinkId,
        target: Modulation,
        now: SimTime,
    ) -> Result<PreparedChange, RwcError> {
        self.expire_quarantine(link, now);
        if let Some(until) = self.states[link.0].quarantined_until {
            if now < until {
                return Err(RwcError::Quarantined { link, until });
            }
        }
        let current = wan.link(link).modulation;
        self.bvts[link.0].sync_modulation(current);
        let snr = wan.link(link).snr;
        self.bvts[link.0]
            .prepare(target, snr, &self.config.table, self.config.prepare_margin, now)
            .map_err(RwcError::Bvt)
    }

    /// Drops a pending reservation (make-before-break abort). Free — the
    /// prepared change never touched the light. Returns the abandoned
    /// change, if one was pending.
    pub fn abort_change(&mut self, link: LinkId) -> Option<PreparedChange> {
        self.bvts[link.0].abort()
    }

    /// Stage 2 of a make-before-break change: commit the reservation made
    /// by [`Controller::prepare_change`], with the same retry budget as
    /// [`Controller::execute_change`] and the commit watchdog in force.
    ///
    /// On success the topology is stepped to the target. On a commit that
    /// fails out of retries the link is **rolled back**: the module is
    /// reset and re-slaved to the prior modulation, the topology is left
    /// untouched (it never saw the target), and the failure counts toward
    /// quarantine exactly like a direct-path failure — except the link
    /// keeps carrying its old rate, so a failed upgrade costs bounded
    /// downtime instead of an outage.
    pub fn commit_change(
        &mut self,
        wan: &mut WanTopology,
        link: LinkId,
        now: SimTime,
    ) -> ChangeResult {
        let Some(change) = self.bvts[link.0].prepared() else {
            return ChangeResult {
                applied: false,
                downtime: SimDuration::ZERO,
                retries: 0,
                quarantined: false,
                rolled_back: false,
            };
        };
        if self.obs.enabled() {
            self.obs.event(&Event::ReconfigStarted {
                link: link.0 as u64,
                from_gbps: change.from.capacity().value(),
                to_gbps: change.target.capacity().value(),
                staged: true,
            });
        }
        let mut downtime = SimDuration::ZERO;
        let mut retries = 0u32;
        let attempts = 1 + self.config.max_retries;
        for attempt in 0..attempts {
            match self.bvts[link.0].commit(self.config.commit_deadline, &mut self.rng) {
                Ok(report) => {
                    downtime += report.downtime;
                    wan.set_modulation(link, change.target);
                    let st = &mut self.states[link.0];
                    st.last_change = Some(now);
                    st.consecutive_failures = 0;
                    self.publish_applied(link, change.target, downtime, retries);
                    return ChangeResult {
                        applied: true,
                        downtime,
                        retries,
                        quarantined: false,
                        rolled_back: false,
                    };
                }
                Err(BvtError::Timeout) => {
                    // Command lost on the bus; the reservation survived and
                    // an immediate retry is sound.
                }
                Err(
                    BvtError::ReconfigFailed { elapsed, .. }
                    | BvtError::StageTimeout { elapsed, .. },
                ) => {
                    downtime += elapsed;
                    downtime += self.bvts[link.0].reset(&mut self.rng);
                    // The reset dropped the reservation; re-stage for the
                    // next attempt. Re-validation can only fail spuriously
                    // here (same SNR, same table) — treat a refusal as
                    // exhausting the budget.
                    if attempt + 1 < attempts
                        && self.bvts[link.0]
                            .prepare(
                                change.target,
                                wan.link(link).snr,
                                &self.config.table,
                                self.config.prepare_margin,
                                now,
                            )
                            .is_err()
                    {
                        break;
                    }
                }
                Err(_) => {
                    downtime += self.bvts[link.0].reset(&mut self.rng);
                    break;
                }
            }
            if attempt + 1 < attempts {
                retries += 1;
                downtime += self.jittered_backoff();
            }
        }
        // Out of retries: roll back. The reset already recovered a locked
        // module; re-slave it to the modulation the link is still carrying
        // (the topology never stepped, so `change.from` is authoritative).
        downtime += self.bvts[link.0].reset(&mut self.rng);
        self.bvts[link.0].sync_modulation(change.from);
        let quarantine_after = self.config.quarantine_after;
        let feasible_at_last_good = self.states[link.0]
            .last_good
            .map(|(_, snr)| self.config.table.supports(snr, change.from));
        let st = &mut self.states[link.0];
        st.consecutive_failures += 1;
        let mut quarantined = false;
        if st.consecutive_failures >= quarantine_after {
            st.quarantined_until = Some(now + self.config.quarantine_hold);
            quarantined = true;
            if feasible_at_last_good == Some(false) {
                st.down = true;
            }
        }
        self.publish_failed(link, change.target, true, quarantined, retries, now);
        ChangeResult { applied: false, downtime, retries, quarantined, rolled_back: true }
    }

    /// Applies one sweep of SNR readings to the topology, reconfiguring
    /// links as decided and accounting downtime through the BVT model.
    ///
    /// Readings are `Option<Db>`: `Some` is a fresh, trusted reading and
    /// `None` marks one dropped by the telemetry layer. A link with a
    /// dropped reading falls back to its last-known-good SNR if that is
    /// within [`ControllerConfig::snr_staleness_bound`]; otherwise it
    /// holds its current modulation (counted in
    /// [`SweepReport::stale_holds`]) and is reported
    /// [`LinkHealth::Degraded`] until telemetry returns. Links in
    /// quarantine are never reconfigured; if their pinned rate becomes
    /// infeasible they go down rather than flap.
    pub fn sweep(
        &mut self,
        wan: &mut WanTopology,
        readings: &[(LinkId, Option<Db>)],
        now: SimTime,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        for &(link_id, maybe_snr) in readings {
            // Quarantine expiry is checked lazily, per sweep.
            self.expire_quarantine(link_id, now);
            // Resolve the SNR to act on: fresh reading, else last-known-
            // good within the staleness bound, else hold.
            let snr = match maybe_snr {
                Some(snr) => {
                    wan.set_snr(link_id, snr);
                    let st = &mut self.states[link_id.0];
                    st.last_good = Some((now, snr));
                    st.stale = false;
                    snr
                }
                None => match self.states[link_id.0].last_good {
                    Some((t, snr))
                        if now.saturating_duration_since(t)
                            <= self.config.snr_staleness_bound =>
                    {
                        snr
                    }
                    _ => {
                        self.states[link_id.0].stale = true;
                        report.stale_holds += 1;
                        self.obs.incr("controller.stale_holds", 1);
                        continue;
                    }
                },
            };
            let current = wan.link(link_id).modulation;
            let was_down = self.states[link_id.0].down;
            let quarantined = self.is_quarantined(link_id, now);
            let decision = self.decide(link_id, current, snr, now);
            self.obs.incr(
                match decision {
                    Decision::Hold => "controller.decisions.hold",
                    Decision::StepTo(_) => "controller.decisions.step",
                    Decision::Down => "controller.decisions.down",
                },
                1,
            );
            match decision {
                Decision::Hold => {
                    if was_down {
                        // SNR recovered enough for the current rung.
                        self.states[link_id.0].down = false;
                        report.recovered.push(link_id);
                    }
                }
                Decision::Down => {
                    if !was_down {
                        self.states[link_id.0].down = true;
                        report.went_down.push(link_id);
                    }
                }
                Decision::StepTo(target) if quarantined => {
                    // No changes while pinned. A needed *downgrade* means
                    // the pinned rate is no longer feasible: treat as down.
                    if target.capacity() < current.capacity() && !was_down {
                        self.states[link_id.0].down = true;
                        report.went_down.push(link_id);
                    }
                }
                Decision::StepTo(target) => {
                    let downgrade = target.capacity() < current.capacity();
                    let result = self.execute_change(wan, link_id, target, now);
                    report.downtime += result.downtime;
                    report.retries += result.retries;
                    if result.applied {
                        if downgrade {
                            report.failures_avoided += 1;
                        }
                        if was_down {
                            self.states[link_id.0].down = false;
                            report.recovered.push(link_id);
                        }
                        report.changes.push((link_id, current, target));
                    } else {
                        report.reconfig_failures += 1;
                        if result.quarantined {
                            report.quarantined.push(link_id);
                        }
                        if self.states[link_id.0].down && !was_down {
                            report.went_down.push(link_id);
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;

    fn setup() -> (WanTopology, Controller) {
        let wan = builders::fig7_example();
        let controller = Controller::new(ControllerConfig::default(), wan.n_links(), 42);
        (wan, controller)
    }

    fn t(hours: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn run_when_margin_allows() {
        let (_, c) = setup();
        // 14 dB clears 200 G (12.5) + 1 dB margin.
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(14.0), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::Dp16Qam200));
    }

    #[test]
    fn hysteresis_blocks_marginal_upgrade() {
        let (_, c) = setup();
        // 12.8 dB clears the 200 G threshold but not threshold + 1 dB.
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(12.8), t(2));
        // 175 G needs 11.0 + 1.0 = 12.0 ⇒ step to 175, not 200.
        assert_eq!(d, Decision::StepTo(Modulation::Hybrid175));
    }

    #[test]
    fn walk_down_on_degradation() {
        let (_, c) = setup();
        // Running at 200 G, SNR drops to 10.0: 150 G is the fastest
        // feasible rung (9.5 ≤ 10 < 11.0).
        let d = c.decide(LinkId(0), Modulation::Dp16Qam200, Db(10.0), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::Dp8Qam150));
    }

    #[test]
    fn crawl_at_the_floor() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(3.5), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::DpBpsk50));
    }

    #[test]
    fn down_when_nothing_feasible() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::DpBpsk50, Db(1.0), t(2));
        assert_eq!(d, Decision::Down);
    }

    #[test]
    fn hold_in_the_comfortable_zone() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::Dp16Qam200, Db(14.0), t(2));
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn dwell_suppresses_rapid_upgrades_but_not_downgrades() {
        let (mut wan, mut c) = setup();
        // Sweep 1 at t=0: upgrade link 0 to 200 G.
        let r = c.sweep(&mut wan, &[(LinkId(0), Some(Db(14.0)))], t(0));
        assert_eq!(r.changes.len(), 1);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::Dp16Qam200);
        // 15 minutes later SNR recovers after a wobble; dwell (1 h) blocks
        // an upgrade...
        wan.set_modulation(LinkId(0), Modulation::Hybrid175);
        let d = c.decide(LinkId(0), Modulation::Hybrid175, Db(14.0), t(0) + SimDuration::from_minutes(15));
        assert_eq!(d, Decision::Hold, "dwell must block the upgrade");
        // ...but a degradation still acts immediately.
        let d = c.decide(LinkId(0), Modulation::Hybrid175, Db(9.6), t(0) + SimDuration::from_minutes(20));
        assert_eq!(d, Decision::StepTo(Modulation::Dp8Qam150));
    }

    #[test]
    fn sweep_counts_avoided_failures_and_downtime() {
        let (mut wan, mut c) = setup();
        // Link 0 degrades to 5 dB (50 G feasible): flap, not failure.
        // Link 1 dies outright (1 dB).
        let report = c.sweep(
            &mut wan,
            &[(LinkId(0), Some(Db(5.0))), (LinkId(1), Some(Db(1.0)))],
            t(0),
        );
        assert_eq!(report.failures_avoided, 1);
        assert_eq!(report.went_down, vec![LinkId(1)]);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpBpsk50);
        assert!(c.is_down(LinkId(1)));
        assert!(report.downtime > SimDuration::ZERO);
        // Efficient procedure: downtime well under a second.
        assert!(report.downtime < SimDuration::from_secs(1));
    }

    #[test]
    fn recovery_from_down() {
        let (mut wan, mut c) = setup();
        c.sweep(&mut wan, &[(LinkId(0), Some(Db(1.0)))], t(0));
        assert!(c.is_down(LinkId(0)));
        // Light comes back at 8 dB: the link resumes (current rung 50 G is
        // feasible again after the crawl… it was never reconfigured, it
        // was down at 100 G; 8 dB supports 100 G so it simply recovers).
        let report = c.sweep(&mut wan, &[(LinkId(0), Some(Db(8.0)))], t(2));
        assert!(!c.is_down(LinkId(0)));
        assert_eq!(report.recovered, vec![LinkId(0)]);
    }

    #[test]
    fn te_owned_mode_never_upgrades_but_still_protects() {
        let wan = builders::fig7_example();
        let c = Controller::new(
            ControllerConfig { auto_upgrade: false, ..ControllerConfig::default() },
            wan.n_links(),
            11,
        );
        // Plenty of margin, but upgrades belong to the TE layer now.
        assert_eq!(
            c.decide(LinkId(0), Modulation::DpQpsk100, Db(14.0), t(2)),
            Decision::Hold
        );
        // Safety actions still fire.
        assert_eq!(
            c.decide(LinkId(0), Modulation::DpQpsk100, Db(5.0), t(2)),
            Decision::StepTo(Modulation::DpBpsk50)
        );
    }

    /// Quarantines link 0 of a fresh controller by hammering it with
    /// faulted changes; returns it with `last_good` established.
    fn quarantined_setup(config: ControllerConfig) -> (WanTopology, Controller) {
        let mut wan = builders::fig7_example();
        // Armed faults are single-shot: with a retry budget the second
        // attempt would succeed, so failures only stick with no retries.
        let config = ControllerConfig { max_retries: 0, ..config };
        let quarantine_after = config.quarantine_after;
        let mut c = Controller::new(config, wan.n_links(), 9);
        c.sweep(&mut wan, &[(LinkId(0), Some(Db(13.0)))], t(0));
        for _ in 0..quarantine_after {
            c.inject_bvt_fault(LinkId(0), BvtFault::StuckLaser);
            let _ = c.execute_change(&mut wan, LinkId(0), Modulation::Dp16Qam200, t(0));
        }
        assert!(c.is_quarantined(LinkId(0), t(0)));
        (wan, c)
    }

    #[test]
    fn expired_quarantine_resets_the_failure_streak() {
        // quarantine_hold is 4 h; one failure *after* release must not
        // instantly re-quarantine (quarantine_after is 3): the streak that
        // earned the quarantine is forgiven along with the hold.
        let (mut wan, mut c) = quarantined_setup(ControllerConfig::default());
        let after_hold = t(5);
        c.inject_bvt_fault(LinkId(0), BvtFault::StuckLaser);
        let result = c.execute_change(&mut wan, LinkId(0), Modulation::Dp16Qam200, after_hold);
        assert!(!result.applied);
        assert!(!result.quarantined, "first post-hold failure must not re-quarantine");
        assert!(!c.is_quarantined(LinkId(0), after_hold));
        assert_eq!(c.health(LinkId(0), after_hold), LinkHealth::Degraded);
        // A fresh streak of quarantine_after failures still quarantines.
        for _ in 0..2 {
            c.inject_bvt_fault(LinkId(0), BvtFault::StuckLaser);
            let _ = c.execute_change(&mut wan, LinkId(0), Modulation::Dp16Qam200, after_hold);
        }
        assert!(c.is_quarantined(LinkId(0), after_hold));
    }

    #[test]
    fn prepare_change_refuses_quarantined_links() {
        let (wan, mut c) = quarantined_setup(ControllerConfig::default());
        match c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(1)) {
            Err(RwcError::Quarantined { link, until }) => {
                assert_eq!(link, LinkId(0));
                assert_eq!(until, t(0) + SimDuration::from_hours(4));
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        // After the hold the same prepare goes through.
        c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(5)).unwrap();
    }

    #[test]
    fn retry_backoff_is_jittered_but_seed_deterministic() {
        let config = ControllerConfig {
            procedure: ReconfigProcedure::Legacy, // visible backoff share
            retry_backoff: SimDuration::from_secs(30),
            ..ControllerConfig::default()
        };
        let run = |seed: u64| {
            let mut wan = builders::fig7_example();
            let mut c = Controller::new(config.clone(), wan.n_links(), seed);
            c.inject_bvt_fault(LinkId(0), BvtFault::RelockFailure);
            c.sweep(&mut wan, &[(LinkId(0), Some(Db(14.0)))], t(0))
        };
        // Same seed → byte-identical SweepReport, including the jittered
        // backoff downtime.
        assert_eq!(run(7), run(7));
        // Different seeds decorrelate the backoff draws.
        assert_ne!(run(7).downtime, run(8).downtime);
    }

    #[test]
    fn zero_jitter_restores_fixed_backoff() {
        let mut wan = builders::fig7_example();
        let mut c = Controller::new(
            ControllerConfig {
                retry_jitter: 0.0,
                max_retries: 1,
                retry_backoff: SimDuration::from_secs(10),
                // Make everything except the backoff negligible.
                procedure: ReconfigProcedure::Efficient,
                ..ControllerConfig::default()
            },
            wan.n_links(),
            3,
        );
        c.inject_bvt_fault(LinkId(0), BvtFault::MdioTimeout);
        // MdioTimeout costs nothing itself: one retry, exactly one fixed
        // backoff, then success — so downtime ≥ the 10 s backoff and well
        // under 11 s (efficient reconfigure is milliseconds).
        let result = c.execute_change(&mut wan, LinkId(0), Modulation::Dp16Qam200, t(0));
        assert!(result.applied);
        assert_eq!(result.retries, 1);
        assert!(result.downtime >= SimDuration::from_secs(10));
        assert!(result.downtime < SimDuration::from_secs(11));
    }

    #[test]
    fn link_health_state_transitions() {
        // Table-driven walk through the health lattice:
        //   healthy → degraded (failure) → quarantined (streak)
        //           → released (hold expiry) → healthy (success).
        struct Step {
            name: &'static str,
            // What to do before observing: how many faulted changes to run
            // and at what time, followed by a successful change or not.
            faulted_changes: u32,
            successful_change: bool,
            at: SimTime,
            expect: LinkHealth,
        }
        let steps = [
            Step {
                name: "fresh controller is healthy",
                faulted_changes: 0,
                successful_change: false,
                at: t(0),
                expect: LinkHealth::Healthy,
            },
            Step {
                name: "one failure degrades",
                faulted_changes: 1,
                successful_change: false,
                at: t(0),
                expect: LinkHealth::Degraded,
            },
            Step {
                name: "streak quarantines",
                faulted_changes: 2, // total 3 == quarantine_after
                successful_change: false,
                at: t(0),
                expect: LinkHealth::Quarantined,
            },
            Step {
                name: "hold expiry releases to healthy (streak forgiven)",
                faulted_changes: 0,
                successful_change: false,
                at: t(5), // past the 4 h hold
                expect: LinkHealth::Healthy,
            },
            Step {
                name: "post-release failure only degrades",
                faulted_changes: 1,
                successful_change: false,
                at: t(5),
                expect: LinkHealth::Degraded,
            },
            Step {
                name: "a successful change clears the streak",
                faulted_changes: 0,
                successful_change: true,
                at: t(6),
                expect: LinkHealth::Healthy,
            },
        ];
        let mut wan = builders::fig7_example();
        // Armed faults are single-shot, so retries would absorb them and
        // the change would still apply; no retries keeps one fault == one
        // failed change.
        let mut c = Controller::new(
            ControllerConfig { max_retries: 0, ..ControllerConfig::default() },
            wan.n_links(),
            5,
        );
        c.sweep(&mut wan, &[(LinkId(0), Some(Db(13.0)))], t(0));
        for step in steps {
            for _ in 0..step.faulted_changes {
                c.inject_bvt_fault(LinkId(0), BvtFault::StuckLaser);
                let _ = c.execute_change(&mut wan, LinkId(0), Modulation::Dp16Qam200, step.at);
            }
            if step.successful_change {
                let target = if wan.link(LinkId(0)).modulation == Modulation::Dp16Qam200 {
                    Modulation::DpQpsk100
                } else {
                    Modulation::Dp16Qam200
                };
                let result = c.execute_change(&mut wan, LinkId(0), target, step.at);
                assert!(result.applied, "{}: change should apply", step.name);
            }
            // `health` itself is a pure read; expiry is applied by the
            // first operation at `step.at` (execute_change above) or here
            // via an empty-change probe.
            c.expire_quarantine(LinkId(0), step.at);
            assert_eq!(c.health(LinkId(0), step.at), step.expect, "{}", step.name);
        }
    }

    // ---- staged prepare → commit → rollback ---------------------------

    #[test]
    fn staged_change_commits_like_the_direct_path() {
        let (mut wan, mut c) = setup();
        wan.set_snr(LinkId(0), Db(14.0));
        c.sweep(&mut wan, &[(LinkId(1), Some(Db(13.0)))], t(0)); // unrelated
        c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(0)).unwrap();
        // Prepared ≠ committed: the topology still carries the old rate.
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpQpsk100);
        let result = c.commit_change(&mut wan, LinkId(0), t(0));
        assert!(result.applied);
        assert!(!result.rolled_back);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::Dp16Qam200);
    }

    #[test]
    fn prepare_refuses_insufficient_margin_via_config() {
        let mut wan = builders::fig7_example();
        let mut c = Controller::new(
            ControllerConfig { prepare_margin: Db(1.0), ..ControllerConfig::default() },
            wan.n_links(),
            2,
        );
        wan.set_snr(LinkId(0), Db(13.0)); // 200 G needs 12.5 + 1.0 margin
        let err = c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(0)).unwrap_err();
        assert!(
            matches!(err, RwcError::Bvt(BvtError::InsufficientMargin { .. })),
            "{err}"
        );
    }

    #[test]
    fn failed_commit_rolls_back_to_prior_modulation() {
        let mut wan = builders::fig7_example();
        let mut c = Controller::new(
            ControllerConfig { max_retries: 0, ..ControllerConfig::default() },
            wan.n_links(),
            13,
        );
        wan.set_snr(LinkId(0), Db(14.0));
        c.sweep(&mut wan, &[(LinkId(0), Some(Db(14.0)))], t(0));
        // sweep may have auto-upgraded; pin a known starting point.
        wan.set_modulation(LinkId(0), Modulation::DpQpsk100);
        c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(1)).unwrap();
        c.inject_bvt_fault(LinkId(0), BvtFault::RelockFailure);
        let result = c.commit_change(&mut wan, LinkId(0), t(1));
        assert!(!result.applied);
        assert!(result.rolled_back);
        assert!(result.downtime > SimDuration::ZERO, "failed attempt still costs");
        // The link is back where it was: topology untouched, module
        // re-slaved to the prior format, locked and Ready.
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpQpsk100);
        assert_eq!(c.bvt(LinkId(0)).modulation(), Modulation::DpQpsk100);
        assert_eq!(c.bvt(LinkId(0)).status(), rwc_optics::bvt::BvtStatus::Ready);
        assert!(c.bvt(LinkId(0)).locked());
        assert_eq!(c.health(LinkId(0), t(1)), LinkHealth::Degraded);
    }

    #[test]
    fn hung_commit_is_bounded_by_the_watchdog() {
        let mut wan = builders::fig7_example();
        let deadline = SimDuration::from_secs(10);
        let mut c = Controller::new(
            ControllerConfig {
                procedure: ReconfigProcedure::Legacy, // ≈68 s ≫ deadline
                commit_deadline: deadline,
                max_retries: 0,
                retry_jitter: 0.0,
                ..ControllerConfig::default()
            },
            wan.n_links(),
            17,
        );
        wan.set_snr(LinkId(0), Db(14.0));
        c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(0)).unwrap();
        let result = c.commit_change(&mut wan, LinkId(0), t(0));
        assert!(!result.applied);
        assert!(result.rolled_back);
        // Downtime = watchdog deadline + module recovery (laser-up+relock,
        // ≤ ~400 s at the tail) — bounded, not the unbounded hang.
        assert!(result.downtime >= deadline);
        assert!(result.downtime < SimDuration::from_secs(600), "{}", result.downtime);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpQpsk100);
    }

    #[test]
    fn commit_without_prepare_is_a_noop() {
        let (mut wan, mut c) = setup();
        let result = c.commit_change(&mut wan, LinkId(0), t(0));
        assert!(!result.applied);
        assert!(!result.rolled_back);
        assert_eq!(result.downtime, SimDuration::ZERO);
    }

    #[test]
    fn abort_change_is_free() {
        let (mut wan, mut c) = setup();
        wan.set_snr(LinkId(0), Db(14.0));
        c.prepare_change(&wan, LinkId(0), Modulation::Dp16Qam200, t(0)).unwrap();
        let change = c.abort_change(LinkId(0)).expect("a change was pending");
        assert_eq!(change.target, Modulation::Dp16Qam200);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpQpsk100);
        assert_eq!(c.bvt(LinkId(0)).now(), SimTime::EPOCH, "no downtime charged");
        // Slot is free again.
        c.prepare_change(&wan, LinkId(0), Modulation::Hybrid175, t(0)).unwrap();
    }

    #[test]
    fn legacy_procedure_costs_minutes() {
        let wan = builders::fig7_example();
        let mut c = Controller::new(
            ControllerConfig {
                procedure: ReconfigProcedure::Legacy,
                ..ControllerConfig::default()
            },
            wan.n_links(),
            7,
        );
        let mut wan = wan;
        let report = c.sweep(&mut wan, &[(LinkId(0), Some(Db(14.0)))], t(0));
        assert!(report.downtime > SimDuration::from_secs(20), "{}", report.downtime);
    }
}
