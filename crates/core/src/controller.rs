//! The run/walk/crawl controller.
//!
//! The paper's titular policy: drive each link as fast as its SNR allows
//! (**run**), step it down to an intermediate rate when the signal degrades
//! (**walk**), fall back to the 50 G floor rather than declaring the link
//! down (**crawl**), and only fail it when even the floor is infeasible.
//!
//! Two safeguards keep the fleet from flapping — the failure mode §2.1
//! warns about when operating close to threshold:
//!
//! - **hysteresis**: stepping *up* requires the SNR to clear the target
//!   rung's threshold by `upgrade_margin`; stepping down happens as soon
//!   as the current rung is infeasible (safety is never delayed);
//! - **dwell**: after any change, upgrades are suppressed for `dwell`
//!   (downgrades are still immediate).
//!
//! Every reconfiguration is executed through the [`rwc_optics::bvt`]
//! model, so downtime accounting reflects the procedure in use (legacy
//! ≈ 68 s vs efficient ≈ 35 ms).

use rwc_optics::bvt::{LatencyModel, ReconfigProcedure};
use rwc_optics::{Modulation, ModulationTable};
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// Controller tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hardware threshold table.
    pub table: ModulationTable,
    /// Extra SNR (beyond the rung threshold) required to step up.
    pub upgrade_margin: Db,
    /// Minimum time between *upgrades* on one link.
    pub dwell: SimDuration,
    /// BVT procedure used for changes.
    pub procedure: ReconfigProcedure,
    /// BVT latency model.
    pub latency: LatencyModel,
    /// Whether the controller may step links *up* on its own when margin
    /// allows (standalone "run" mode). Set false when a TE layer owns the
    /// upgrade decision through the graph abstraction — the controller
    /// then only handles safety (walk/crawl/down).
    pub auto_upgrade: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            table: ModulationTable::paper_default(),
            upgrade_margin: Db(1.0),
            dwell: SimDuration::from_hours(1),
            procedure: ReconfigProcedure::Efficient,
            latency: LatencyModel::default(),
            auto_upgrade: true,
        }
    }
}

/// What the controller decided for one link at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Keep the current rate.
    Hold,
    /// Reconfigure to a different rung (up or down).
    StepTo(Modulation),
    /// Not even the slowest rung is feasible: the link is down.
    Down,
}

#[derive(Debug, Clone)]
struct LinkState {
    last_change: Option<SimTime>,
    down: bool,
}

/// Outcome of one controller sweep over the fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// `(link, from, to)` for every reconfiguration applied.
    pub changes: Vec<(LinkId, Modulation, Modulation)>,
    /// Links newly declared down (no feasible rung).
    pub went_down: Vec<LinkId>,
    /// Links recovered from down.
    pub recovered: Vec<LinkId>,
    /// Total reconfiguration downtime accrued this sweep.
    pub downtime: SimDuration,
    /// Downgrades that would have been *failures* on a fixed-capacity
    /// link (SNR below the old rung's threshold but above a lower rung's)
    /// — the paper's "flap instead of fail" count.
    pub failures_avoided: usize,
}

/// The run/walk/crawl controller for a fleet of links.
#[derive(Debug, Clone)]
pub struct Controller {
    config: ControllerConfig,
    states: Vec<LinkState>,
    rng: Xoshiro256,
}

impl Controller {
    /// Creates a controller for `n_links` links.
    pub fn new(config: ControllerConfig, n_links: usize, seed: u64) -> Self {
        assert!(config.upgrade_margin.value() >= 0.0, "negative margin");
        Self {
            config,
            states: (0..n_links)
                .map(|_| LinkState { last_change: None, down: false })
                .collect(),
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Whether a link is currently declared down.
    pub fn is_down(&self, link: LinkId) -> bool {
        self.states[link.0].down
    }

    /// Pure decision logic for one link (no state change).
    pub fn decide(&self, link: LinkId, current: Modulation, snr: Db, now: SimTime) -> Decision {
        let table = &self.config.table;
        let state = &self.states[link.0];

        // Safety first: if the current rung is infeasible, step down (or
        // die) immediately — dwell never delays a safety action.
        if !table.supports(snr, current) {
            return match table.feasible(snr) {
                Some(slower) => Decision::StepTo(slower),
                None => Decision::Down,
            };
        }

        // Upgrade path: fastest rung whose threshold + margin clears.
        if !self.config.auto_upgrade {
            return Decision::Hold;
        }
        let dwell_ok = state
            .last_change
            .is_none_or(|t| now.saturating_duration_since(t) >= self.config.dwell);
        if dwell_ok {
            let target = table
                .entries()
                .iter()
                .rev()
                .find(|&&(m, threshold)| snr >= threshold + self.config.upgrade_margin && m.capacity() > current.capacity())
                .map(|&(m, _)| m);
            if let Some(m) = target {
                return Decision::StepTo(m);
            }
        }
        Decision::Hold
    }

    /// Applies one sweep of SNR readings to the topology, reconfiguring
    /// links as decided and accounting downtime through the BVT model.
    pub fn sweep(
        &mut self,
        wan: &mut WanTopology,
        readings: &[(LinkId, Db)],
        now: SimTime,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        for &(link_id, snr) in readings {
            wan.set_snr(link_id, snr);
            let current = wan.link(link_id).modulation;
            let was_down = self.states[link_id.0].down;
            match self.decide(link_id, current, snr, now) {
                Decision::Hold => {
                    if was_down {
                        // SNR recovered enough for the current rung.
                        self.states[link_id.0].down = false;
                        report.recovered.push(link_id);
                    }
                }
                Decision::Down => {
                    if !was_down {
                        self.states[link_id.0].down = true;
                        report.went_down.push(link_id);
                    }
                }
                Decision::StepTo(target) => {
                    let downgrade = target.capacity() < current.capacity();
                    if downgrade {
                        report.failures_avoided += 1;
                    }
                    let phases =
                        self.config.latency.sample_phases(self.config.procedure, &mut self.rng);
                    let downtime = phases
                        .iter()
                        .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d);
                    report.downtime += downtime;
                    wan.set_modulation(link_id, target);
                    self.states[link_id.0].last_change = Some(now);
                    if was_down {
                        self.states[link_id.0].down = false;
                        report.recovered.push(link_id);
                    }
                    report.changes.push((link_id, current, target));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;

    fn setup() -> (WanTopology, Controller) {
        let wan = builders::fig7_example();
        let controller = Controller::new(ControllerConfig::default(), wan.n_links(), 42);
        (wan, controller)
    }

    fn t(hours: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn run_when_margin_allows() {
        let (_, c) = setup();
        // 14 dB clears 200 G (12.5) + 1 dB margin.
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(14.0), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::Dp16Qam200));
    }

    #[test]
    fn hysteresis_blocks_marginal_upgrade() {
        let (_, c) = setup();
        // 12.8 dB clears the 200 G threshold but not threshold + 1 dB.
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(12.8), t(2));
        // 175 G needs 11.0 + 1.0 = 12.0 ⇒ step to 175, not 200.
        assert_eq!(d, Decision::StepTo(Modulation::Hybrid175));
    }

    #[test]
    fn walk_down_on_degradation() {
        let (_, c) = setup();
        // Running at 200 G, SNR drops to 10.0: 150 G is the fastest
        // feasible rung (9.5 ≤ 10 < 11.0).
        let d = c.decide(LinkId(0), Modulation::Dp16Qam200, Db(10.0), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::Dp8Qam150));
    }

    #[test]
    fn crawl_at_the_floor() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::DpQpsk100, Db(3.5), t(2));
        assert_eq!(d, Decision::StepTo(Modulation::DpBpsk50));
    }

    #[test]
    fn down_when_nothing_feasible() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::DpBpsk50, Db(1.0), t(2));
        assert_eq!(d, Decision::Down);
    }

    #[test]
    fn hold_in_the_comfortable_zone() {
        let (_, c) = setup();
        let d = c.decide(LinkId(0), Modulation::Dp16Qam200, Db(14.0), t(2));
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn dwell_suppresses_rapid_upgrades_but_not_downgrades() {
        let (mut wan, mut c) = setup();
        // Sweep 1 at t=0: upgrade link 0 to 200 G.
        let r = c.sweep(&mut wan, &[(LinkId(0), Db(14.0))], t(0));
        assert_eq!(r.changes.len(), 1);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::Dp16Qam200);
        // 15 minutes later SNR recovers after a wobble; dwell (1 h) blocks
        // an upgrade...
        wan.set_modulation(LinkId(0), Modulation::Hybrid175);
        let d = c.decide(LinkId(0), Modulation::Hybrid175, Db(14.0), t(0) + SimDuration::from_minutes(15));
        assert_eq!(d, Decision::Hold, "dwell must block the upgrade");
        // ...but a degradation still acts immediately.
        let d = c.decide(LinkId(0), Modulation::Hybrid175, Db(9.6), t(0) + SimDuration::from_minutes(20));
        assert_eq!(d, Decision::StepTo(Modulation::Dp8Qam150));
    }

    #[test]
    fn sweep_counts_avoided_failures_and_downtime() {
        let (mut wan, mut c) = setup();
        // Link 0 degrades to 5 dB (50 G feasible): flap, not failure.
        // Link 1 dies outright (1 dB).
        let report = c.sweep(
            &mut wan,
            &[(LinkId(0), Db(5.0)), (LinkId(1), Db(1.0))],
            t(0),
        );
        assert_eq!(report.failures_avoided, 1);
        assert_eq!(report.went_down, vec![LinkId(1)]);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::DpBpsk50);
        assert!(c.is_down(LinkId(1)));
        assert!(report.downtime > SimDuration::ZERO);
        // Efficient procedure: downtime well under a second.
        assert!(report.downtime < SimDuration::from_secs(1));
    }

    #[test]
    fn recovery_from_down() {
        let (mut wan, mut c) = setup();
        c.sweep(&mut wan, &[(LinkId(0), Db(1.0))], t(0));
        assert!(c.is_down(LinkId(0)));
        // Light comes back at 8 dB: the link resumes (current rung 50 G is
        // feasible again after the crawl… it was never reconfigured, it
        // was down at 100 G; 8 dB supports 100 G so it simply recovers).
        let report = c.sweep(&mut wan, &[(LinkId(0), Db(8.0))], t(2));
        assert!(!c.is_down(LinkId(0)));
        assert_eq!(report.recovered, vec![LinkId(0)]);
    }

    #[test]
    fn te_owned_mode_never_upgrades_but_still_protects() {
        let wan = builders::fig7_example();
        let c = Controller::new(
            ControllerConfig { auto_upgrade: false, ..ControllerConfig::default() },
            wan.n_links(),
            11,
        );
        // Plenty of margin, but upgrades belong to the TE layer now.
        assert_eq!(
            c.decide(LinkId(0), Modulation::DpQpsk100, Db(14.0), t(2)),
            Decision::Hold
        );
        // Safety actions still fire.
        assert_eq!(
            c.decide(LinkId(0), Modulation::DpQpsk100, Db(5.0), t(2)),
            Decision::StepTo(Modulation::DpBpsk50)
        );
    }

    #[test]
    fn legacy_procedure_costs_minutes() {
        let wan = builders::fig7_example();
        let mut c = Controller::new(
            ControllerConfig {
                procedure: ReconfigProcedure::Legacy,
                ..ControllerConfig::default()
            },
            wan.n_links(),
            7,
        );
        let mut wan = wan;
        let report = c.sweep(&mut wan, &[(LinkId(0), Db(14.0))], t(0));
        assert!(report.downtime > SimDuration::from_secs(20), "{}", report.downtime);
    }
}
