//! Typed error hierarchy for the fault-tolerant pipeline.
//!
//! The BVT → controller → TE pipeline degrades gracefully instead of
//! panicking: hardware faults surface as [`rwc_optics::bvt::BvtError`],
//! solver failures as [`rwc_te::TeError`], and everything the pipeline
//! itself can reject is wrapped here so callers handle one error type.

use rwc_faults::FaultPlanError;
use rwc_optics::bvt::BvtError;
use rwc_te::{TeError, TeValidationError};
use rwc_topology::wan::LinkId;
use rwc_util::time::SimTime;
use std::fmt;

/// Top-level error of the rwc pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RwcError {
    /// A traffic-engineering solver failed.
    Te(TeError),
    /// A TE solution failed validation against its problem (a solver bug
    /// or a solution checked against the wrong problem — never expected in
    /// a healthy pipeline, which is exactly why it's worth typing).
    Validation(TeValidationError),
    /// A transceiver (hardware or management bus) failure.
    Bvt(BvtError),
    /// A pipeline stage was configured with values it cannot run with.
    Config(String),
    /// Telemetry cannot support the request (e.g. the horizon outruns the
    /// recorded traces).
    Telemetry(String),
    /// A structurally invalid fault schedule was handed to the pipeline.
    FaultPlan(FaultPlanError),
    /// The requested change was refused because the link is inside its
    /// quarantine hold-down.
    Quarantined {
        /// The pinned link.
        link: LinkId,
        /// When the hold-down expires.
        until: SimTime,
    },
}

impl fmt::Display for RwcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RwcError::Te(e) => write!(f, "TE failure: {e}"),
            RwcError::Validation(e) => write!(f, "invalid TE solution: {e}"),
            RwcError::Bvt(e) => write!(f, "BVT failure: {e}"),
            RwcError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RwcError::Telemetry(msg) => write!(f, "telemetry: {msg}"),
            RwcError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            RwcError::Quarantined { link, until } => {
                write!(f, "link {} is quarantined until {until}", link.0)
            }
        }
    }
}

impl std::error::Error for RwcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RwcError::Te(e) => Some(e),
            RwcError::Validation(e) => Some(e),
            RwcError::Bvt(e) => Some(e),
            RwcError::FaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for RwcError {
    fn from(e: FaultPlanError) -> Self {
        RwcError::FaultPlan(e)
    }
}

impl From<TeError> for RwcError {
    fn from(e: TeError) -> Self {
        RwcError::Te(e)
    }
}

impl From<TeValidationError> for RwcError {
    fn from(e: TeValidationError) -> Self {
        RwcError::Validation(e)
    }
}

impl From<BvtError> for RwcError {
    fn from(e: BvtError) -> Self {
        RwcError::Bvt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let te: RwcError = TeError::SolverTimeout {
            algorithm: "exact-lp",
            detail: "pivot budget".into(),
        }
        .into();
        assert!(te.to_string().contains("exact-lp"));
        let validation: RwcError =
            TeValidationError::NegativeFlow { edge: 3, flow: -0.5 }.into();
        assert!(validation.to_string().contains("edge 3"));
        assert!(std::error::Error::source(&validation).is_some());
        let bvt: RwcError = BvtError::Timeout.into();
        assert!(bvt.to_string().contains("timed out"));
        assert!(std::error::Error::source(&bvt).is_some());
        assert!(std::error::Error::source(&RwcError::Config("x".into())).is_none());
    }
}
