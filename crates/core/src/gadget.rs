//! The Fig. 8 node-splitting gadget for unsplittable flows.
//!
//! With plain augmentation, an upgradable 100 G link appears as two
//! parallel edges (real 100 + fake 100). A flow that must stay on a
//! *single* path cannot split across them, so a 200 G unsplittable demand
//! would be unroutable even though the upgraded link could carry it.
//!
//! The paper's fix: split the link with intermediate vertices so that one
//! edge of full upgraded capacity exists, while a series bottleneck keeps
//! the total at the upgraded rate:
//!
//! ```text
//!      A ──(200, 0)── A′ ══╗ real (100, 0)
//!                          ╠══ B
//!                          ╝ fake (200, P)
//! ```
//!
//! An unsplittable 200 G flow rides `A → A′ → (fake) → B` on a single
//! path; the `A → A′` edge caps the combined real+fake throughput at the
//! upgraded rate. Any flow on the fake edge above the current capacity
//! implies the upgrade.

use crate::penalty::PenaltyPolicy;
use rwc_optics::{Modulation, ModulationTable};
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::{EdgeOrigin, TeProblem};
use rwc_topology::wan::{LinkId, WanTopology};

const EPS: f64 = 1e-9;

/// One gadget instance (per upgradable link direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gadget {
    /// The physical link.
    pub link: LinkId,
    /// Direction (`true` = `a→b`).
    pub forward: bool,
    /// Index of the series guard edge (`A→A′`).
    pub guard_edge: usize,
    /// Index of the real-capacity edge (`A′→B`, current rate, free).
    pub real_edge: usize,
    /// Index of the full-capacity fake edge (`A′→B`, upgraded rate,
    /// penalised).
    pub fake_edge: usize,
    /// The rung the fake edge represents.
    pub target: Modulation,
}

/// An augmented problem built with the unsplittable-flow gadget.
#[derive(Debug, Clone)]
pub struct GadgetProblem {
    /// The TE problem (contains auxiliary nodes).
    pub problem: TeProblem,
    /// Gadgets in insertion order.
    pub gadgets: Vec<Gadget>,
}

/// Builds the gadget-augmented problem.
///
/// Non-upgradable links appear as plain directed edges. Upgradable links
/// are replaced (per direction) by the three-edge gadget above.
pub fn augment_unsplittable(
    wan: &WanTopology,
    demands: &DemandMatrix,
    table: &ModulationTable,
    penalty: &PenaltyPolicy,
    current_traffic: &[f64],
) -> GadgetProblem {
    let mut net = rwc_flow::network::FlowNetwork::new(wan.n_nodes());
    let mut origins = Vec::new();
    let mut gadgets = Vec::new();

    for (id, link) in wan.links() {
        let traffic = current_traffic.get(id.0).copied().unwrap_or(0.0);
        let upgrades = table.upgrades(link.snr, link.modulation);
        let current = link.capacity().value();
        match upgrades.last() {
            None => {
                net.add_edge(link.a.0, link.b.0, current, penalty.real_cost(link));
                origins.push(EdgeOrigin::Real { link: id, forward: true });
                net.add_edge(link.b.0, link.a.0, current, penalty.real_cost(link));
                origins.push(EdgeOrigin::Real { link: id, forward: false });
            }
            Some(&fastest) => {
                let upgraded = fastest.capacity().value();
                for forward in [true, false] {
                    let (from, to) =
                        if forward { (link.a.0, link.b.0) } else { (link.b.0, link.a.0) };
                    let mid = net.add_node();
                    let guard_edge =
                        net.add_edge(from, mid, upgraded, penalty.real_cost(link));
                    origins.push(EdgeOrigin::Auxiliary);
                    let real_edge = net.add_edge(mid, to, current, 0.0);
                    origins.push(EdgeOrigin::Real { link: id, forward });
                    let fake_edge = net.add_edge(
                        mid,
                        to,
                        upgraded,
                        penalty.fake_cost(link, fastest, traffic),
                    );
                    origins.push(EdgeOrigin::Fake { link: id, forward });
                    gadgets.push(Gadget {
                        link: id,
                        forward,
                        guard_edge,
                        real_edge,
                        fake_edge,
                        target: fastest,
                    });
                }
            }
        }
    }

    let commodities = demands
        .demands()
        .iter()
        .map(|d| rwc_flow::mcf::Commodity {
            source: d.from.0,
            sink: d.to.0,
            demand: d.volume.value(),
        })
        .collect();
    GadgetProblem {
        problem: TeProblem {
            net,
            origins,
            commodities,
            demands: demands.demands().to_vec(),
        },
        gadgets,
    }
}

/// Reads upgrade decisions out of a gadget solution: a link direction
/// needs its upgrade if the *combined* real+fake flow exceeds the current
/// capacity (a fake-edge trickle below the current rate could have ridden
/// the real edge and is not an upgrade).
pub fn gadget_upgrades(
    gp: &GadgetProblem,
    wan: &WanTopology,
    edge_flows: &[f64],
) -> Vec<(LinkId, Modulation)> {
    let mut upgrades: Vec<(LinkId, Modulation)> = Vec::new();
    for g in &gp.gadgets {
        let combined = edge_flows[g.real_edge] + edge_flows[g.fake_edge];
        let current = wan.link(g.link).capacity().value();
        if combined > current + EPS && !upgrades.iter().any(|(l, _)| *l == g.link) {
            // Smallest rung covering the combined flow.
            let target = Modulation::LADDER
                .iter()
                .copied()
                .find(|m| m.capacity().value() + EPS >= combined)
                .unwrap_or(g.target);
            upgrades.push((g.link, target));
        }
    }
    upgrades
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;
    use rwc_util::units::Db;

    /// Two-node network, one link upgradable to 200 G.
    fn ab_wan() -> WanTopology {
        let mut wan = WanTopology::new();
        let a = wan.add_node("A", None);
        let b = wan.add_node("B", None);
        wan.add_link(a, b, 400.0);
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan
    }

    #[test]
    fn gadget_structure() {
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        // One link, both directions gadgetised: 2 aux nodes, 6 edges.
        assert_eq!(gp.gadgets.len(), 2);
        assert_eq!(gp.problem.net.n_nodes(), 4);
        assert_eq!(gp.problem.net.n_edges(), 6);
        let g = &gp.gadgets[0];
        assert_eq!(gp.problem.net.edge(g.guard_edge).capacity, 200.0);
        assert_eq!(gp.problem.net.edge(g.real_edge).capacity, 100.0);
        assert_eq!(gp.problem.net.edge(g.fake_edge).capacity, 200.0);
        assert_eq!(gp.problem.net.edge(g.fake_edge).cost, 100.0);
    }

    #[test]
    fn unsplittable_200g_single_path_exists() {
        // Fig. 8's motivating case: a single path of 200 G from A to B.
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        let g = &gp.gadgets.iter().find(|g| g.forward).unwrap();
        // The path guard→fake carries min(200, 200) = 200 on ONE path.
        let single_path_cap = gp
            .problem
            .net
            .edge(g.guard_edge)
            .capacity
            .min(gp.problem.net.edge(g.fake_edge).capacity);
        assert_eq!(single_path_cap, 200.0);
    }

    #[test]
    fn total_capacity_capped_at_upgraded_rate() {
        // Max-flow through the gadget must be 200, not 100+200.
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        let f = rwc_flow::max_flow(&gp.problem.net, 0, 1);
        assert!((f.value - 200.0).abs() < 1e-9, "value={}", f.value);
    }

    #[test]
    fn upgrade_readout() {
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        let mc = rwc_flow::min_cost_max_flow(&gp.problem.net, 0, 1);
        let upgrades = gadget_upgrades(&gp, &wan, &mc.flow.edge_flows);
        assert_eq!(upgrades.len(), 1);
        assert_eq!(upgrades[0].1, Modulation::Dp16Qam200);
    }

    #[test]
    fn trickle_on_fake_edge_is_not_an_upgrade() {
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        let g = gp.gadgets[0];
        let mut flows = vec![0.0; gp.problem.net.n_edges()];
        flows[g.guard_edge] = 60.0;
        flows[g.fake_edge] = 60.0; // fits within the current 100 G
        assert!(gadget_upgrades(&gp, &wan, &flows).is_empty());
        flows[g.real_edge] = 80.0; // combined 140 > 100
        flows[g.guard_edge] = 140.0;
        let ups = gadget_upgrades(&gp, &wan, &flows);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].1, Modulation::Dp8Qam150, "140 G fits the 150 rung");
    }

    #[test]
    fn non_upgradable_links_stay_plain() {
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.0)); // no headroom anywhere
        }
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        assert!(gp.gadgets.is_empty());
        assert_eq!(gp.problem.net.n_nodes(), 4, "no auxiliary nodes");
        assert_eq!(gp.problem.net.n_edges(), 8);
    }

    #[test]
    fn min_cost_prefers_real_capacity_first() {
        let wan = ab_wan();
        let gp = augment_unsplittable(
            &wan,
            &DemandMatrix::new(),
            &ModulationTable::paper_default(),
            &PenaltyPolicy::paper_example(),
            &[],
        );
        let g = *gp.gadgets.iter().find(|g| g.forward).unwrap();
        // Route only 80 G: min-cost flow must keep it on the free real
        // edge.
        let r = rwc_flow::mincost::min_cost_flow_up_to(&gp.problem.net, 0, 1, 80.0);
        assert!((r.flow.edge_flows[g.real_edge] - 80.0).abs() < 1e-9);
        assert!(r.flow.edge_flows[g.fake_edge] < 1e-9);
        assert_eq!(r.cost, 0.0);
    }
}
