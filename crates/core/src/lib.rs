//! # rwc-core
//!
//! The primary contribution of *Run, Walk, Crawl: Towards Dynamic Link
//! Capacities* (HotNets'17): a graph abstraction that lets **unmodified**
//! traffic-engineering algorithms exploit SNR-adaptive link capacities.
//!
//! - [`penalty`]: the penalty-function library (§4.2: "the TE operator can
//!   set the penalty values arbitrarily");
//! - [`mod@augment`]: Algorithm 1 — insert a *fake link* next to every physical
//!   link whose SNR supports a higher rate, annotated `<capacity, cost>`;
//! - [`mod@translate`]: step 3 of the Theorem 1 construction — read the TE
//!   output back as (a) which links to upgrade and (b) the flow paths;
//! - [`gadget`]: the Fig. 8 node-splitting construction for unsplittable
//!   flows;
//! - [`theorem`]: an executable check of Theorem 1 (min-cost max-flow on
//!   the augmented graph ≡ max-flow on the dynamic-capacity graph);
//! - [`controller`]: the run/walk/crawl policy — step links up when SNR
//!   margin allows, step them *down* instead of failing them when SNR
//!   degrades, with hysteresis and dwell to suppress flapping, plus
//!   retry/quarantine handling for transceivers that fail to reconfigure;
//! - [`error`]: the [`error::RwcError`] hierarchy the fault-tolerant
//!   pipeline reports instead of panicking;
//! - [`network`]: [`network::DynamicCapacityNetwork`], the end-to-end API
//!   tying telemetry → augmentation → TE → consistent updates → BVT
//!   reconfiguration;
//! - [`scenario`]: multi-period simulation of the whole pipeline against a
//!   pinned binary-policy counterfactual;
//! - [`predictive`]: a forecast-driven controller that walks links down
//!   *before* the SNR crossing (extension beyond the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod controller;
pub mod error;
pub mod gadget;
pub mod network;
pub mod penalty;
pub mod predictive;
pub mod scenario;
pub mod theorem;
pub mod translate;

pub use augment::{augment, AugmentConfig, AugmentStats, AugmentedProblem, FakeEdge, IncrementalAugmenter};
pub use controller::{Controller, ControllerConfig, ControllerConfigBuilder, Decision, LinkHealth};
pub use error::RwcError;
pub use network::DynamicCapacityNetwork;
pub use scenario::{
    Scenario, ScenarioBuilder, ScenarioConfig, ScenarioConfigBuilder, ScenarioReport,
    ScenarioTiming,
};
pub use penalty::PenaltyPolicy;
pub use translate::{translate, Translation};

/// One-stop imports for driving the pipeline.
///
/// ```
/// use rwc_core::prelude::*;
/// ```
///
/// pulls in the scenario/controller/network types, their builders, the
/// error hierarchy, and the units/time primitives every experiment needs.
/// Experiment code should prefer this over a dozen `use` lines; anything
/// more specialised (gadgets, theorem checks, penalty internals) is still
/// imported explicitly from its module.
pub mod prelude {
    pub use crate::augment::AugmentConfig;
    pub use crate::controller::{
        Controller, ControllerConfig, ControllerConfigBuilder, Decision, LinkHealth, SweepReport,
    };
    pub use crate::error::RwcError;
    pub use crate::network::{DynamicCapacityNetwork, MbbOutcome, MbbPhase, TeRound};
    pub use crate::penalty::PenaltyPolicy;
    pub use crate::scenario::{
        Scenario, ScenarioBuilder, ScenarioConfig, ScenarioConfigBuilder, ScenarioReport,
        ScenarioSample, ScenarioTiming,
    };
    pub use rwc_obs::{Event, MetricsObserver, MetricsRegistry, NoopObserver, Observer};
    pub use rwc_topology::wan::{LinkId, WanTopology};
    pub use rwc_util::time::{SimDuration, SimTime};
    pub use rwc_util::units::{Db, Gbps};
}
