//! End-to-end dynamic-capacity network orchestration.
//!
//! [`DynamicCapacityNetwork`] is the public face of the reproduction: it
//! owns the WAN topology, the run/walk/crawl [`Controller`], and the
//! augmentation configuration, and drives the §4 loop:
//!
//! 1. ingest SNR telemetry — degraded links *walk/crawl* down instead of
//!    failing (controller safety sweep);
//! 2. **augment** the topology (Algorithm 1) with fake upgrade links
//!    priced by the penalty policy;
//! 3. run an **unmodified TE algorithm** on the augmented problem;
//! 4. **translate** its output into upgrade decisions + real flows;
//! 5. plan **consistent updates** for the upgrades and apply them through
//!    the BVT model, accounting downtime and churn.

use crate::augment::{augment, AugmentConfig, AugmentStats, IncrementalAugmenter};
use crate::controller::{Controller, ControllerConfig, SweepReport};
use rwc_obs::{Observer, Span};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use crate::error::RwcError;
use crate::translate::{translate, Translation};
use rwc_optics::bvt::BvtFault;
use rwc_te::demand::DemandMatrix;
use rwc_te::metrics;
use rwc_te::problem::{TeProblem, TeSolution};
use rwc_te::updates::{try_plan_capacity_changes, CapacityChange, UpdatePlan};
use rwc_te::TeAlgorithm;
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;

/// Outcome of one TE round.
#[derive(Debug, Clone)]
pub struct TeRound {
    /// Throughput achieved (on the augmented problem = after upgrades).
    pub throughput: f64,
    /// Throughput the same algorithm achieves *without* augmentation (the
    /// static-capacity baseline, for the paper's gain comparison).
    pub static_throughput: f64,
    /// Upgrade decisions applied this round.
    pub translation: Translation,
    /// The consistent-update plan (None when no upgrades were needed).
    pub update_plan: Option<UpdatePlan>,
    /// BVT downtime accrued applying the upgrades.
    pub reconfig_downtime: SimDuration,
    /// Traffic churn versus the previous round's flows.
    pub churn: f64,
    /// True when the TE solver failed this round and the last feasible
    /// allocation stayed in force instead (graceful degradation).
    pub te_fallback: bool,
    /// Wall-clock time spent in TE solving this round: the static
    /// baseline (when not served from cache), augmentation and the
    /// augmented solve. Excludes plan/apply. Not part of any serialised
    /// report — timing is measurement, not simulation state.
    pub solve_time: Duration,
    /// Upgrades the solver asked for that the hardware failed to apply
    /// (retries exhausted or link quarantined).
    pub failed_changes: usize,
    /// Of the failed changes, how many were staged commits that rolled
    /// back to the prior modulation (make-before-break unhappy path) —
    /// the link kept carrying its old rate instead of going dark.
    pub rolled_back: usize,
    /// Retry attempts spent applying this round's upgrades.
    pub retries: u32,
}

impl TeRound {
    /// Relative throughput gain of dynamic over static capacity.
    pub fn gain(&self) -> f64 {
        if self.static_throughput <= 0.0 {
            if self.throughput > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.throughput / self.static_throughput - 1.0
        }
    }
}

/// Which stage of a make-before-break change failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbbPhase {
    /// The reservation was refused (quarantine, insufficient margin,
    /// module busy or bus timeout).
    Prepare,
    /// The drain plan could not shift enough demand off the link: the
    /// interim flow exceeds the transition capacity, so committing would
    /// have dropped live traffic. The reservation was aborted (free).
    Drain,
    /// The commit failed out of retries and the link was rolled back to
    /// its prior modulation.
    Commit,
}

/// Outcome of a single-link [`DynamicCapacityNetwork::reconfigure_mbb`].
#[derive(Debug, Clone, PartialEq)]
pub struct MbbOutcome {
    /// Whether the change is in force on the topology.
    pub applied: bool,
    /// Whether a failed commit was rolled back to the prior modulation.
    pub rolled_back: bool,
    /// The stage that failed, when `applied` is false.
    pub failed_phase: Option<MbbPhase>,
    /// The prepare-stage error, when that stage refused.
    pub error: Option<RwcError>,
    /// Traffic moved to drain the link before the change.
    pub drain_churn: f64,
    /// Downtime charged by the commit (zero for prepare/drain failures —
    /// nothing optical happened yet).
    pub downtime: SimDuration,
    /// Retry attempts consumed by the commit.
    pub retries: u32,
}

/// A WAN whose link capacities adapt to SNR, §4-style.
#[derive(Debug, Clone)]
pub struct DynamicCapacityNetwork {
    wan: WanTopology,
    controller: Controller,
    augment_config: AugmentConfig,
    /// Per-link traffic from the previous round (busier direction), used
    /// by traffic-dependent penalties.
    link_traffic: Vec<f64>,
    /// Previous round's real-edge flows, for churn accounting.
    previous_flows: Option<Vec<f64>>,
    /// Throughputs of the last round whose solves succeeded, reported
    /// verbatim when a later round has to fall back.
    last_good_totals: Option<(f64, f64)>,
    /// Whether TE-driven changes go through the staged make-before-break
    /// path (prepare → drained-headroom check → commit, with rollback)
    /// instead of the direct `execute_change` path.
    mbb: bool,
    /// Dirty-link incremental Algorithm 1 (the round engine's default).
    augmenter: IncrementalAugmenter,
    /// Escape hatch: rebuild the augmented problem from scratch every
    /// round (the pre-incremental behaviour, kept for byte-identity
    /// comparisons and debugging).
    full_rebuild: bool,
    /// Memoised static-baseline totals, keyed on the exact inputs the
    /// baseline depends on (algorithm, per-link capacities, demands).
    /// The solver is deterministic, so a hit bit-equals a recompute;
    /// only successful solves are stored. Bounded in practice because
    /// capacities move over a small rung set and diurnal demand scales
    /// repeat daily.
    static_memo: HashMap<StaticKey, f64>,
    /// Metrics/event sink for the round engine. Measurement only — never
    /// consulted by round logic, so reports are byte-identical with any
    /// observer installed.
    obs: Arc<dyn Observer>,
}

/// Exact memo key for the static-baseline solve: algorithm name, the
/// algorithm's solve fingerprint (objective/backend/weights — two
/// `TeSolver`s share a name but not a meaning), each link's capacity
/// bits, and each demand's endpoints + volume bits. Only the fingerprint
/// is a hash (it folds solver *configuration*, which is tiny and fixed
/// per solver instance); the capacity/demand inputs stay exact — a
/// collision there would silently break the determinism guarantee the
/// scenario tests pin down.
type StaticKey = (&'static str, u64, Vec<u64>, Vec<(usize, usize, u64)>);

fn static_key(
    algorithm: &dyn TeAlgorithm,
    wan: &WanTopology,
    demands: &DemandMatrix,
) -> StaticKey {
    (
        algorithm.name(),
        algorithm.solve_fingerprint(),
        wan.links().map(|(_, l)| l.capacity().value().to_bits()).collect(),
        demands
            .demands()
            .iter()
            .map(|d| (d.from.0, d.to.0, d.volume.value().to_bits()))
            .collect(),
    )
}

impl DynamicCapacityNetwork {
    /// Wraps a topology.
    pub fn new(
        wan: WanTopology,
        augment_config: AugmentConfig,
        controller_config: ControllerConfig,
        seed: u64,
    ) -> Self {
        let n_links = wan.n_links();
        Self {
            wan,
            controller: Controller::new(controller_config, n_links, seed),
            augment_config,
            link_traffic: vec![0.0; n_links],
            previous_flows: None,
            last_good_totals: None,
            mbb: true,
            augmenter: IncrementalAugmenter::new(),
            full_rebuild: false,
            static_memo: HashMap::new(),
            obs: rwc_obs::noop(),
        }
    }

    /// Routes the round engine's metrics and events (and the controller's
    /// and every transceiver's) to `obs`. Installing an observer never
    /// changes a round: snapshots measure the run, they don't steer it.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.controller.set_observer(Arc::clone(&obs));
        self.obs = obs;
    }

    /// Switches the round engine between dirty-link incremental
    /// augmentation + static-solve memoisation (default) and the
    /// from-scratch per-round path. Both produce identical rounds; the
    /// escape hatch exists so tests can prove it and so a regression can
    /// be bisected in the field.
    pub fn set_full_rebuild(&mut self, on: bool) {
        self.full_rebuild = on;
        if on {
            self.augmenter.reset();
            self.static_memo.clear();
        }
    }

    /// Whether the from-scratch escape hatch is in force.
    pub fn full_rebuild(&self) -> bool {
        self.full_rebuild
    }

    /// Incremental-augmentation counters (zeros under full rebuild).
    pub fn augment_stats(&self) -> AugmentStats {
        self.augmenter.stats()
    }

    /// Switches TE-driven changes between the staged make-before-break
    /// path (default) and the direct break-then-make path. The direct path
    /// is what PR-1 shipped: changes are executed in place and a failed
    /// change can leave traffic planned over capacity that never arrived —
    /// keep it only as the experimental baseline.
    pub fn set_make_before_break(&mut self, on: bool) {
        self.mbb = on;
    }

    /// Whether the staged make-before-break path is in force.
    pub fn make_before_break(&self) -> bool {
        self.mbb
    }

    /// Read access to the topology.
    pub fn wan(&self) -> &WanTopology {
        &self.wan
    }

    /// Read access to the controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Ingests SNR telemetry: updates readings and lets the controller
    /// walk/crawl degraded links (safety actions only happen here; TE-
    /// driven upgrades happen in [`Self::te_round`]). `None` marks a
    /// reading dropped by the telemetry layer; see [`Controller::sweep`]
    /// for the hold/last-known-good semantics.
    pub fn ingest(&mut self, readings: &[(LinkId, Option<Db>)], now: SimTime) -> SweepReport {
        self.controller.sweep(&mut self.wan, readings, now)
    }

    /// Arms a hardware fault on a link's transceiver; the next applicable
    /// operation on that module fails and is handled by the controller's
    /// retry/quarantine machinery.
    pub fn inject_bvt_fault(&mut self, link: LinkId, fault: BvtFault) {
        self.controller.inject_bvt_fault(link, fault);
    }

    /// Runs one TE round with the given (unmodified) TE algorithm.
    ///
    /// Never panics on solver failure: if the algorithm cannot produce a
    /// solution, the previous allocation stays in force and the round is
    /// reported with [`TeRound::te_fallback`] set. Hardware failures while
    /// applying upgrades are absorbed by the controller's retry/quarantine
    /// machinery and surface in [`TeRound::failed_changes`].
    pub fn te_round(
        &mut self,
        demands: &DemandMatrix,
        algorithm: &dyn TeAlgorithm,
        now: SimTime,
    ) -> TeRound {
        match self.try_te_round(demands, algorithm, now) {
            Ok(round) => round,
            Err(_) => {
                self.obs.incr("te.fallback_rounds", 1);
                self.fallback_round()
            }
        }
    }

    /// Fallible TE round: solver failures come back as [`RwcError::Te`]
    /// with no changes applied, so the caller can decide how to degrade.
    pub fn try_te_round(
        &mut self,
        demands: &DemandMatrix,
        algorithm: &dyn TeAlgorithm,
        now: SimTime,
    ) -> Result<TeRound, RwcError> {
        let obs = Arc::clone(&self.obs);
        let _round_span = Span::start(&*obs, "te.round_micros");
        obs.incr("te.rounds", 1);
        let solve_start = std::time::Instant::now();
        // Static baseline: same algorithm, no fake links. Memoised — the
        // solver is deterministic, so a cached total bit-equals the
        // recompute it replaces.
        let static_total = if self.full_rebuild {
            algorithm.try_solve(&TeProblem::from_wan(&self.wan, demands))?.total
        } else {
            let key = static_key(algorithm, &self.wan, demands);
            match self.static_memo.get(&key) {
                Some(&total) => {
                    obs.incr("te.static_memo.hits", 1);
                    total
                }
                None => {
                    obs.incr("te.static_memo.misses", 1);
                    let total =
                        algorithm.try_solve(&TeProblem::from_wan(&self.wan, demands))?.total;
                    self.static_memo.insert(key, total);
                    total
                }
            }
        };

        // Augment (patching dirty links unless the escape hatch is on) +
        // solve + translate.
        let augment_before = obs.enabled().then(|| self.augmenter.stats());
        let fresh;
        let aug = if self.full_rebuild {
            fresh = augment(&self.wan, demands, &self.augment_config, &self.link_traffic);
            &fresh
        } else {
            self.augmenter.augment(&self.wan, demands, &self.augment_config, &self.link_traffic)
        };
        let solution = algorithm.try_solve(&aug.problem)?;
        let solve_time = solve_start.elapsed();
        let mut translation = translate(aug, &self.wan, &solution)?;
        if let Some(before) = augment_before {
            let after = self.augmenter.stats();
            obs.record("te.solve_micros", solve_time.as_micros() as f64);
            obs.incr("te.augment.full_rebuilds", after.full_rebuilds - before.full_rebuilds);
            obs.incr(
                "te.augment.in_place_patches",
                after.in_place_patches - before.in_place_patches,
            );
            obs.incr("te.augment.suffix_rebuilds", after.suffix_rebuilds - before.suffix_rebuilds);
        }

        // Consistent-update plan + application through the hardware.
        let mut reconfig_downtime = SimDuration::ZERO;
        let mut failed_changes = 0usize;
        let mut rolled_back = 0usize;
        let mut retries = 0u32;
        let mut throughput = solution.total;
        let update_plan = if translation.upgrades.is_empty() {
            None
        } else {
            let changes: Vec<CapacityChange> = translation
                .upgrades
                .iter()
                .map(|&(link, to)| CapacityChange { link, to })
                .collect();
            let hitless = matches!(
                self.controller.config().procedure,
                rwc_optics::bvt::ReconfigProcedure::Efficient
            );
            let current = self.previous_flows.as_ref().map(|flows| TeSolution {
                routed: vec![],
                edge_flows: flows.clone(),
                total: 0.0,
            });
            // The drain plan: its interim allocation routes every demand
            // within min(old, new) capacity on each changing link, so it is
            // feasible no matter which commits land.
            let plan = try_plan_capacity_changes(
                &self.wan,
                demands,
                &changes,
                algorithm,
                hitless,
                current.as_ref(),
            )?;
            let mut committed: Vec<(LinkId, rwc_optics::Modulation)> = Vec::new();
            if self.mbb {
                // Make-before-break: stage each change, verify the drain
                // actually cleared the capacity delta, then commit. Any
                // phase failure leaves the link carrying its old rate.
                for change in &changes {
                    if self
                        .controller
                        .prepare_change(&self.wan, change.link, change.to, now)
                        .is_err()
                    {
                        failed_changes += 1;
                        continue;
                    }
                    // Drained-headroom check: the interim flow on the link
                    // must fit the transition capacity (the lesser of old
                    // and new), else committing would drop live traffic.
                    let fwd = plan.interim.edge_flows[2 * change.link.0];
                    let bwd = plan.interim.edge_flows[2 * change.link.0 + 1];
                    let transition_cap = self
                        .wan
                        .link(change.link)
                        .capacity()
                        .value()
                        .min(change.to.capacity().value());
                    if fwd.max(bwd) > transition_cap + 1e-6 {
                        self.controller.abort_change(change.link);
                        failed_changes += 1;
                        continue;
                    }
                    let result = self.controller.commit_change(&mut self.wan, change.link, now);
                    reconfig_downtime += result.downtime;
                    retries += result.retries;
                    if result.applied {
                        committed.push((change.link, change.to));
                    } else {
                        failed_changes += 1;
                        if result.rolled_back {
                            rolled_back += 1;
                        }
                    }
                }
            } else {
                // Direct path (experimental baseline): apply the changes in
                // place through the per-link BVT state machines.
                for change in &changes {
                    let result =
                        self.controller.execute_change(&mut self.wan, change.link, change.to, now);
                    reconfig_downtime += result.downtime;
                    retries += result.retries;
                    if result.applied {
                        committed.push((change.link, change.to));
                    } else {
                        failed_changes += 1;
                    }
                }
            }
            if self.mbb && committed.len() < changes.len() {
                // Not every planned change landed. The solver's allocation
                // assumed all of them, so it may route over capacity that
                // was never committed; hold the drained interim allocation
                // instead — it is feasible under the capacities the fleet
                // actually has (rolled-back links still carry their old
                // rate).
                translation.upgrades = committed;
                translation.real_edge_flows = plan.interim.edge_flows.clone();
                throughput = plan.interim.total;
            }
            Some(plan)
        };

        // Book-keeping for the next round.
        let churn = self
            .previous_flows
            .as_ref()
            .map(|prev| metrics::churn(prev, &translation.real_edge_flows))
            .unwrap_or(0.0);
        for (id, _) in self.wan.links() {
            let fwd = translation.real_edge_flows[2 * id.0];
            let bwd = translation.real_edge_flows[2 * id.0 + 1];
            self.link_traffic[id.0] = fwd.max(bwd);
        }
        self.previous_flows = Some(translation.real_edge_flows.clone());
        self.last_good_totals = Some((throughput, static_total));

        Ok(TeRound {
            throughput,
            static_throughput: static_total,
            translation,
            update_plan,
            reconfig_downtime,
            churn,
            te_fallback: false,
            solve_time,
            failed_changes,
            rolled_back,
            retries,
        })
    }

    /// The round reported when the solver fails: the previous allocation
    /// (and its throughputs) stay in force, nothing changes, no downtime.
    fn fallback_round(&self) -> TeRound {
        let flows = self
            .previous_flows
            .clone()
            .unwrap_or_else(|| vec![0.0; 2 * self.wan.n_links()]);
        let (throughput, static_throughput) = self.last_good_totals.unwrap_or((0.0, 0.0));
        TeRound {
            throughput,
            static_throughput,
            translation: Translation {
                upgrades: Vec::new(),
                real_edge_flows: flows,
                routed: Vec::new(),
                penalty_paid: 0.0,
                effective_penalty: 0.0,
            },
            update_plan: None,
            reconfig_downtime: SimDuration::ZERO,
            churn: 0.0,
            te_fallback: true,
            solve_time: Duration::ZERO,
            failed_changes: 0,
            rolled_back: 0,
            retries: 0,
        }
    }

    /// Reconfigures one link make-before-break, outside a TE round: asks
    /// the algorithm for a drain plan that shifts demand off the link,
    /// verifies the drained headroom covers the capacity delta, then runs
    /// the staged prepare → commit through the controller. Any phase
    /// failure rolls the link back to its prior modulation and reinstates
    /// the drain plan's interim allocation (which is feasible at the old
    /// rate) as the flows of record.
    pub fn reconfigure_mbb(
        &mut self,
        link: LinkId,
        target: rwc_optics::Modulation,
        demands: &DemandMatrix,
        algorithm: &dyn TeAlgorithm,
        now: SimTime,
    ) -> Result<MbbOutcome, RwcError> {
        let changes = [CapacityChange { link, to: target }];
        let hitless = matches!(
            self.controller.config().procedure,
            rwc_optics::bvt::ReconfigProcedure::Efficient
        );
        let current = self.previous_flows.as_ref().map(|flows| TeSolution {
            routed: vec![],
            edge_flows: flows.clone(),
            total: 0.0,
        });
        let plan = try_plan_capacity_changes(
            &self.wan,
            demands,
            &changes,
            algorithm,
            hitless,
            current.as_ref(),
        )?;
        let drain_churn = plan.churn_into_interim;

        if let Err(e) = self.controller.prepare_change(&self.wan, link, target, now) {
            self.previous_flows = Some(plan.interim.edge_flows.clone());
            return Ok(MbbOutcome {
                applied: false,
                rolled_back: false,
                failed_phase: Some(MbbPhase::Prepare),
                error: Some(e),
                drain_churn,
                downtime: SimDuration::ZERO,
                retries: 0,
            });
        }
        let fwd = plan.interim.edge_flows[2 * link.0];
        let bwd = plan.interim.edge_flows[2 * link.0 + 1];
        let transition_cap =
            self.wan.link(link).capacity().value().min(target.capacity().value());
        if fwd.max(bwd) > transition_cap + 1e-6 {
            self.controller.abort_change(link);
            self.previous_flows = Some(plan.interim.edge_flows.clone());
            return Ok(MbbOutcome {
                applied: false,
                rolled_back: false,
                failed_phase: Some(MbbPhase::Drain),
                error: None,
                drain_churn,
                downtime: SimDuration::ZERO,
                retries: 0,
            });
        }
        let result = self.controller.commit_change(&mut self.wan, link, now);
        let flows = if result.applied {
            plan.final_solution.edge_flows.clone()
        } else {
            plan.interim.edge_flows.clone()
        };
        self.previous_flows = Some(flows);
        Ok(MbbOutcome {
            applied: result.applied,
            rolled_back: result.rolled_back,
            failed_phase: (!result.applied).then_some(MbbPhase::Commit),
            error: None,
            drain_churn,
            downtime: result.downtime,
            retries: result.retries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::penalty::PenaltyPolicy;
    use rwc_te::demand::Priority;
    use rwc_te::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn fig7_network() -> DynamicCapacityNetwork {
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5));
        }
        wan.set_snr(LinkId(0), Db(13.0));
        wan.set_snr(LinkId(1), Db(13.0));
        let aug = AugmentConfig {
            penalty: PenaltyPolicy::paper_example(),
            ..AugmentConfig::default()
        };
        DynamicCapacityNetwork::new(wan, aug, ControllerConfig::default(), 1)
    }

    fn fig7_demands(wan: &WanTopology, volume: f64) -> DemandMatrix {
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(volume), Priority::Elastic);
        dm.add(c, d, Gbps(volume), Priority::Elastic);
        dm
    }

    #[test]
    fn round_with_headroom_beats_static() {
        let mut net = fig7_network();
        let demands = fig7_demands(net.wan(), 180.0);
        let round = net.te_round(&demands, &SwanTe::default(), SimTime::EPOCH);
        assert!(
            round.throughput > round.static_throughput + 20.0,
            "dynamic {} vs static {}",
            round.throughput,
            round.static_throughput
        );
        assert!(round.gain() > 0.05);
        assert!(round.translation.requires_changes());
        assert!(round.update_plan.is_some());
        assert!(round.reconfig_downtime > SimDuration::ZERO);
    }

    #[test]
    fn upgrades_are_applied_to_topology() {
        let mut net = fig7_network();
        let demands = fig7_demands(net.wan(), 180.0);
        let before = net.wan().total_capacity();
        let round = net.te_round(&demands, &SwanTe::default(), SimTime::EPOCH);
        assert!(round.translation.requires_changes());
        assert!(net.wan().total_capacity() > before);
    }

    #[test]
    fn light_load_changes_nothing() {
        let mut net = fig7_network();
        let demands = fig7_demands(net.wan(), 40.0);
        let round = net.te_round(&demands, &SwanTe::default(), SimTime::EPOCH);
        assert!(!round.translation.requires_changes());
        assert!(round.update_plan.is_none());
        assert_eq!(round.reconfig_downtime, SimDuration::ZERO);
        assert!((round.gain()).abs() < 0.01);
    }

    #[test]
    fn second_round_reports_churn() {
        let mut net = fig7_network();
        let light = fig7_demands(net.wan(), 40.0);
        let heavy = fig7_demands(net.wan(), 180.0);
        let r1 = net.te_round(&light, &SwanTe::default(), SimTime::EPOCH);
        assert_eq!(r1.churn, 0.0, "first round has no predecessor");
        let r2 = net.te_round(
            &heavy,
            &SwanTe::default(),
            SimTime::EPOCH + SimDuration::from_minutes(15),
        );
        assert!(r2.churn > 0.0, "flows moved between rounds");
    }

    #[test]
    fn snr_ingest_triggers_walk_down() {
        let mut net = fig7_network();
        let report = net.ingest(&[(LinkId(0), Some(Db(5.0)))], SimTime::EPOCH);
        assert_eq!(report.failures_avoided, 1);
        assert_eq!(
            net.wan().link(LinkId(0)).modulation,
            rwc_optics::Modulation::DpBpsk50
        );
        // Subsequent TE sees the reduced capacity.
        let demands = fig7_demands(net.wan(), 180.0);
        let round = net.te_round(
            &demands,
            &SwanTe::default(),
            SimTime::EPOCH + SimDuration::from_minutes(15),
        );
        // The degraded link can no longer be upgraded (SNR 5 dB).
        assert!(round.translation.upgrade_of(LinkId(0)).is_none());
    }
}
