//! Penalty functions for fake (upgrade) links.
//!
//! §4.1: "the activation of a fake link is associated with a cost which is
//! a function of the amount of traffic disrupted when the link switches to
//! a higher bandwidth. … The TE operators are free to set these costs to be
//! as conservative or aggressive as they desire."
//!
//! Penalties here are *per unit of flow* routed over the fake link, which
//! is how a min-cost formulation consumes them. §4.2 adds that link
//! weights can be set in parallel to penalties — e.g. unit weights on every
//! link to force short paths (Fig. 7c) — so the policy also determines the
//! cost of *real* edges.

use rwc_optics::Modulation;
use rwc_topology::wan::WanLink;
use rwc_util::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How upgrade costs (and real-link weights) are assigned.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum PenaltyPolicy {
    /// Fake links cost a fixed amount per unit flow; real links are free.
    /// The paper's worked example uses 100.
    Uniform(f64),
    /// Fake-link cost equals the traffic currently carried by the physical
    /// link (the paper's suggested default: reconfiguring a busy link
    /// disrupts more).
    #[default]
    CurrentTraffic,
    /// Fake-link cost is the expected reconfiguration downtime in seconds
    /// times this weight — ties the penalty to the BVT procedure in use
    /// (legacy ≈ 68 s is nearly 2000× more expensive than efficient
    /// ≈ 35 ms).
    DisruptionDuration {
        /// Cost per second of expected downtime per unit flow.
        weight_per_second: f64,
        /// Expected downtime of one reconfiguration.
        expected_downtime: SimDuration,
    },
    /// Unit weight on *every* edge, real or fake (Fig. 7c): the
    /// min-cost solution then favours short paths at all costs.
    UnitWeights,
}

impl PenaltyPolicy {
    /// The paper's worked-example policy (`cost = 100`).
    pub fn paper_example() -> Self {
        PenaltyPolicy::Uniform(100.0)
    }

    /// Cost per unit flow on a fake link upgrading `link` to `target`.
    ///
    /// `current_traffic` is the flow the physical link carries right now
    /// (0 if unknown/idle).
    pub fn fake_cost(
        &self,
        link: &WanLink,
        target: Modulation,
        current_traffic: f64,
    ) -> f64 {
        let _ = (link, target);
        match self {
            PenaltyPolicy::Uniform(cost) => {
                assert!(*cost >= 0.0, "negative penalty");
                *cost
            }
            PenaltyPolicy::CurrentTraffic => current_traffic.max(0.0),
            PenaltyPolicy::DisruptionDuration { weight_per_second, expected_downtime } => {
                assert!(*weight_per_second >= 0.0, "negative weight");
                weight_per_second * expected_downtime.as_secs_f64()
            }
            PenaltyPolicy::UnitWeights => 1.0,
        }
    }

    /// Cost per unit flow on a real link (0 except under unit weights).
    pub fn real_cost(&self, link: &WanLink) -> f64 {
        let _ = link;
        match self {
            PenaltyPolicy::UnitWeights => 1.0,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;

    fn a_link() -> WanLink {
        builders::fig7_example().link(rwc_topology::wan::LinkId(0)).clone()
    }

    #[test]
    fn uniform_ignores_traffic() {
        let p = PenaltyPolicy::Uniform(100.0);
        assert_eq!(p.fake_cost(&a_link(), Modulation::Dp16Qam200, 0.0), 100.0);
        assert_eq!(p.fake_cost(&a_link(), Modulation::Dp16Qam200, 500.0), 100.0);
        assert_eq!(p.real_cost(&a_link()), 0.0);
    }

    #[test]
    fn current_traffic_scales() {
        let p = PenaltyPolicy::CurrentTraffic;
        assert_eq!(p.fake_cost(&a_link(), Modulation::Hybrid125, 0.0), 0.0);
        assert_eq!(p.fake_cost(&a_link(), Modulation::Hybrid125, 80.0), 80.0);
        assert_eq!(p.fake_cost(&a_link(), Modulation::Hybrid125, -3.0), 0.0, "clamped");
    }

    #[test]
    fn disruption_duration_tracks_procedure() {
        let legacy = PenaltyPolicy::DisruptionDuration {
            weight_per_second: 1.0,
            expected_downtime: SimDuration::from_secs(68),
        };
        let efficient = PenaltyPolicy::DisruptionDuration {
            weight_per_second: 1.0,
            expected_downtime: SimDuration::from_millis(35),
        };
        let l = legacy.fake_cost(&a_link(), Modulation::Dp16Qam200, 0.0);
        let e = efficient.fake_cost(&a_link(), Modulation::Dp16Qam200, 0.0);
        assert!((l / e - 68.0 / 0.035).abs() < 1.0, "ratio {l}/{e}");
    }

    #[test]
    fn unit_weights_hit_real_edges_too() {
        let p = PenaltyPolicy::UnitWeights;
        assert_eq!(p.real_cost(&a_link()), 1.0);
        assert_eq!(p.fake_cost(&a_link(), Modulation::Hybrid125, 42.0), 1.0);
    }

    #[test]
    fn paper_example_value() {
        assert_eq!(PenaltyPolicy::paper_example(), PenaltyPolicy::Uniform(100.0));
    }
}
