//! Predictive run/walk/crawl: act *before* the threshold crossing.
//!
//! The reactive [`crate::controller::Controller`] steps a link down at the
//! first sample below threshold — which means the link spent up to one
//! telemetry tick (15 minutes) dropping frames before the controller
//! noticed. This extension wraps each link in a streaming
//! [`rwc_telemetry::forecast::SnrForecaster`] and walks the
//! link down as soon as the forecast's lower confidence bound crosses the
//! threshold, trading a little capacity (earlier downshifts) for fewer
//! at-risk intervals. This is the natural next step the paper's §3/§6
//! discussion points towards: making capacity changes cheap enough
//! (efficient BVT) that acting early costs almost nothing.

use crate::controller::{Controller, ControllerConfig, Decision, SweepReport};
use rwc_telemetry::forecast::SnrForecaster;
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::time::SimTime;
use rwc_util::units::Db;

/// Tuning for the predictive layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveConfig {
    /// Base (reactive) controller configuration.
    pub base: ControllerConfig,
    /// How many ticks ahead to look.
    pub horizon_ticks: u64,
    /// Confidence width (standard deviations) for the lower bound.
    pub z: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        Self { base: ControllerConfig::default(), horizon_ticks: 4, z: 1.5 }
    }
}

/// A controller that forecasts each link's SNR and downshifts pre-emptively.
#[derive(Debug, Clone)]
pub struct PredictiveController {
    inner: Controller,
    forecasters: Vec<SnrForecaster>,
    horizon_ticks: u64,
    z: f64,
    /// Pre-emptive downshifts taken (forecast-triggered, before the SNR
    /// actually crossed).
    pub preemptive_downshifts: usize,
}

impl PredictiveController {
    /// Creates a predictive controller for `n_links` links.
    pub fn new(config: PredictiveConfig, n_links: usize, seed: u64) -> Self {
        assert!(config.horizon_ticks > 0, "horizon must be positive");
        Self {
            inner: Controller::new(config.base, n_links, seed),
            forecasters: vec![SnrForecaster::telemetry_default(); n_links],
            horizon_ticks: config.horizon_ticks,
            z: config.z,
            preemptive_downshifts: 0,
        }
    }

    /// Access to the wrapped reactive controller.
    pub fn reactive(&self) -> &Controller {
        &self.inner
    }

    /// One telemetry sweep. Forecasters are updated with the new readings;
    /// links whose forecast crosses their current rung's threshold are
    /// downshifted even though the measured SNR is still fine, then the
    /// reactive controller handles everything else.
    pub fn sweep(
        &mut self,
        wan: &mut WanTopology,
        readings: &[(LinkId, Db)],
        now: SimTime,
    ) -> SweepReport {
        let table = self.inner.config().table.clone();
        // Pre-emptive pass: synthesise a degraded reading for links whose
        // forecast says the current rung will not hold.
        let mut effective: Vec<(LinkId, Option<Db>)> = Vec::with_capacity(readings.len());
        for &(link, snr) in readings {
            let f = &mut self.forecasters[link.0];
            f.observe(snr);
            let current = wan.link(link).modulation;
            let threshold = table.threshold(current);
            let crossing = threshold.is_some_and(|t| {
                f.samples() > 8 && f.predicts_crossing(t, self.horizon_ticks, self.z)
            });
            if crossing && table.supports(snr, current) {
                // Feed the *forecast lower bound* to the reactive logic so
                // it walks down now; clamp so we never invent a total
                // outage out of a forecast. An empty forecaster cannot
                // happen after `samples() > 8`, but if it does the link
                // simply stays on its truthful reading.
                let Some(lb) = f.lower_bound(self.horizon_ticks, self.z) else {
                    effective.push((link, Some(snr)));
                    continue;
                };
                let degraded = lb.max(Db(3.0)).min(snr);
                if let Decision::StepTo(target) =
                    self.inner.decide(link, current, degraded, now)
                {
                    if target.capacity() < current.capacity() {
                        self.preemptive_downshifts += 1;
                        effective.push((link, Some(degraded)));
                        continue;
                    }
                }
            }
            effective.push((link, Some(snr)));
        }
        let report = self.inner.sweep(wan, &effective, now);
        // Restore truthful SNR readings on the topology (the synthetic
        // degraded values were only decision inputs).
        for &(link, snr) in readings {
            wan.set_snr(link, snr);
        }
        report
    }
}

/// Counts "at-risk" ticks: samples where a link's measured SNR sits below
/// the threshold of the rate it is configured at (frames in jeopardy).
pub fn at_risk_ticks(
    wan: &WanTopology,
    table: &rwc_optics::ModulationTable,
    readings: &[(LinkId, Db)],
) -> usize {
    readings
        .iter()
        .filter(|&&(link, snr)| !table.supports(snr, wan.link(link).modulation))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_optics::{Modulation, ModulationTable};
    use rwc_util::time::SimDuration;

    fn one_link_wan() -> WanTopology {
        let mut wan = WanTopology::new();
        let a = wan.add_node("A", None);
        let b = wan.add_node("B", None);
        wan.add_link(a, b, 500.0);
        wan.set_modulation(LinkId(0), Modulation::Dp16Qam200);
        wan
    }

    /// A slow decay from 14 dB through the 200 G threshold (12.5 dB).
    fn decaying_readings(n: usize) -> Vec<Db> {
        (0..n).map(|i| Db(14.0 - 0.05 * i as f64)).collect()
    }

    #[test]
    fn predictive_steps_down_before_crossing() {
        let mut wan = one_link_wan();
        let mut pc = PredictiveController::new(PredictiveConfig::default(), 1, 1);
        let mut downshift_snr = None;
        for (i, snr) in decaying_readings(60).into_iter().enumerate() {
            let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
            let report = pc.sweep(&mut wan, &[(LinkId(0), snr)], now);
            if !report.changes.is_empty() && downshift_snr.is_none() {
                downshift_snr = Some(snr);
            }
        }
        let at = downshift_snr.expect("must downshift during the decay");
        assert!(
            at > Db(12.5),
            "predictive controller should act above the threshold, acted at {at}"
        );
        assert!(pc.preemptive_downshifts > 0);
    }

    #[test]
    fn reactive_vs_predictive_at_risk_exposure() {
        let readings = decaying_readings(60);
        let table = ModulationTable::paper_default();
        let run = |predictive: bool| -> usize {
            let mut wan = one_link_wan();
            let mut reactive = Controller::new(ControllerConfig::default(), 1, 2);
            let mut pc = PredictiveController::new(PredictiveConfig::default(), 1, 2);
            let mut risk = 0;
            for (i, &snr) in readings.iter().enumerate() {
                let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
                // Risk measured BEFORE the controller reacts this tick.
                risk += at_risk_ticks(&wan, &table, &[(LinkId(0), snr)]);
                if predictive {
                    pc.sweep(&mut wan, &[(LinkId(0), snr)], now);
                } else {
                    reactive.sweep(&mut wan, &[(LinkId(0), Some(snr))], now);
                }
            }
            risk
        };
        let reactive_risk = run(false);
        let predictive_risk = run(true);
        assert!(
            predictive_risk <= reactive_risk,
            "predictive {predictive_risk} must not exceed reactive {reactive_risk}"
        );
        // The reactive controller has >= 1 at-risk tick on this ramp.
        assert!(reactive_risk >= 1);
        assert_eq!(predictive_risk, 0, "forecast should eliminate exposure entirely");
    }

    #[test]
    fn stable_signal_never_triggers_preemption() {
        let mut wan = one_link_wan();
        let mut pc = PredictiveController::new(PredictiveConfig::default(), 1, 3);
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(5);
        for i in 0..300 {
            let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
            let snr = Db(14.0 + rng.normal(0.0, 0.25));
            pc.sweep(&mut wan, &[(LinkId(0), snr)], now);
        }
        assert_eq!(pc.preemptive_downshifts, 0);
        assert_eq!(wan.link(LinkId(0)).modulation, Modulation::Dp16Qam200);
    }

    #[test]
    fn topology_keeps_truthful_snr() {
        let mut wan = one_link_wan();
        let mut pc = PredictiveController::new(PredictiveConfig::default(), 1, 4);
        for (i, snr) in decaying_readings(50).into_iter().enumerate() {
            let now = SimTime::EPOCH + SimDuration::TELEMETRY_TICK * i as u64;
            pc.sweep(&mut wan, &[(LinkId(0), snr)], now);
            assert_eq!(wan.link(LinkId(0)).snr, snr, "tick {i}");
        }
    }
}
