//! Multi-period scenario simulation.
//!
//! The paper's end state is a WAN where, continuously: telemetry streams
//! SNR, the controller walks/crawls degraded links instead of failing
//! them, and each TE round exploits whatever headroom the fleet currently
//! has through the graph abstraction. [`Scenario`] wires those pieces
//! together over simulated time:
//!
//! - each WAN link is bound to one synthetic telemetry stream;
//! - every telemetry tick (15 min) the controller ingests SNR readings;
//! - every `te_interval` a TE round runs with diurnally scaled demands;
//! - the report accumulates throughput (dynamic vs static), flaps vs hard
//!   failures, reconfiguration downtime and churn.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] (from `rwc-faults`) can be attached through
//! [`ScenarioConfig::fault_plan`]. The run loop then interprets it:
//!
//! - **BVT faults** are armed on the affected link's transceiver every
//!   tick their window is active, so any reconfiguration attempted inside
//!   the window trips and exercises the controller's retry / quarantine
//!   path;
//! - **telemetry faults** drop, freeze or spike the SNR samples before
//!   the controller sees them, exercising the last-known-good / staleness
//!   policy;
//! - **TE faults** make the solver fail for that round, exercising the
//!   last-feasible-solution fallback ([`crate::network::TeRound::te_fallback`]).
//!
//! Everything stays deterministic: the plan is plain data and the
//! scenario derives all randomness from its seed, so the same plan +
//! seed produces a byte-identical [`ScenarioReport`] (which serialises
//! via serde for exactly that comparison).

use crate::augment::AugmentConfig;
use crate::controller::ControllerConfig;
use crate::error::RwcError;
use crate::network::DynamicCapacityNetwork;
use rwc_faults::{FaultInjector, FaultPlan, TeFault, TelemetryFault};
use rwc_obs::{Event, FaultDomain, Observer};
use std::sync::Arc;
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::TeProblem;
use rwc_te::{TeAlgorithm, TeError, TeSolution};
use rwc_telemetry::{FleetConfig, FleetGenerator, LinkTelemetry};
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::Serialize;

/// Scenario wiring.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// How often a TE round runs (must be a multiple of the telemetry
    /// tick; SWAN-era controllers ran every few minutes to hours).
    pub te_interval: SimDuration,
    /// Peak-to-mean swing of the diurnal demand cycle (0 = flat).
    pub demand_diurnal_amp: f64,
    /// Augmentation settings for the TE rounds.
    pub augment: AugmentConfig,
    /// Controller settings (hysteresis, BVT procedure).
    pub controller: ControllerConfig,
    /// Seed for the network's stochastic parts (BVT latencies).
    pub seed: u64,
    /// Optional fault schedule interpreted by the run loop. `None` (the
    /// default) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Whether TE-driven capacity changes go through the staged
    /// make-before-break path (prepare → drain → commit, with rollback).
    /// Default true; disable only to reproduce the break-then-make
    /// baseline in experiments.
    pub make_before_break: bool,
    /// Escape hatch: rebuild every TE problem from scratch each round and
    /// skip all solve caches (the pre-incremental engine). Default false.
    /// Both settings produce byte-identical [`ScenarioReport`]s — the
    /// determinism tests compare them — so this exists for those tests
    /// and for bisecting any future divergence.
    pub full_rebuild: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            te_interval: SimDuration::from_hours(1),
            demand_diurnal_amp: 0.3,
            augment: AugmentConfig::default(),
            // In a scenario, the TE layer owns upgrades (that is the whole
            // point of the abstraction); the controller only handles
            // walk/crawl safety.
            controller: ControllerConfig { auto_upgrade: false, ..Default::default() },
            seed: 0x5CE4A210,
            fault_plan: None,
            make_before_break: true,
            full_rebuild: false,
        }
    }
}

impl ScenarioConfig {
    /// Starts a validating builder seeded with the defaults. Prefer this
    /// over struct-literal updates: [`ScenarioConfigBuilder::build`] turns
    /// nonsense (a zero TE interval, a negative diurnal amplitude) into a
    /// typed [`RwcError::Config`] instead of a panic mid-run.
    pub fn builder() -> ScenarioConfigBuilder {
        ScenarioConfigBuilder { config: Self::default() }
    }
}

/// Validating builder for [`ScenarioConfig`]; see [`ScenarioConfig::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioConfigBuilder {
    config: ScenarioConfig,
}

impl ScenarioConfigBuilder {
    /// How often a TE round runs.
    pub fn te_interval(mut self, interval: SimDuration) -> Self {
        self.config.te_interval = interval;
        self
    }

    /// Peak-to-mean swing of the diurnal demand cycle.
    pub fn demand_diurnal_amp(mut self, amp: f64) -> Self {
        self.config.demand_diurnal_amp = amp;
        self
    }

    /// Augmentation settings for the TE rounds.
    pub fn augment(mut self, augment: AugmentConfig) -> Self {
        self.config.augment = augment;
        self
    }

    /// Controller settings.
    pub fn controller(mut self, controller: ControllerConfig) -> Self {
        self.config.controller = controller;
        self
    }

    /// Seed for the network's stochastic parts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Fault schedule interpreted by the run loop.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Whether TE-driven changes go through make-before-break.
    pub fn make_before_break(mut self, on: bool) -> Self {
        self.config.make_before_break = on;
        self
    }

    /// From-scratch-per-round escape hatch.
    pub fn full_rebuild(mut self, on: bool) -> Self {
        self.config.full_rebuild = on;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ScenarioConfig, RwcError> {
        let c = &self.config;
        if c.te_interval == SimDuration::ZERO {
            return Err(RwcError::Config("te_interval must be non-zero".into()));
        }
        if c.demand_diurnal_amp < 0.0 || !c.demand_diurnal_amp.is_finite() {
            return Err(RwcError::Config(format!(
                "demand_diurnal_amp must be finite and non-negative, got {}",
                c.demand_diurnal_amp
            )));
        }
        Ok(self.config)
    }
}

/// Wall-clock measurements of a scenario run, kept strictly apart from
/// [`ScenarioReport`]: timing is nondeterministic by nature and must
/// never leak into the serialised report the determinism tests compare.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTiming {
    /// Per-TE-round solve time in microseconds: static baseline,
    /// augmentation, augmented solve, and the binary counterfactual —
    /// everything a round computes, so engine-level caching shows up.
    pub solve_micros: Vec<u64>,
    /// Whole-run wall time in microseconds.
    pub wall_micros: u64,
}

impl ScenarioTiming {
    /// TE rounds completed per wall-clock second.
    pub fn rounds_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.solve_micros.len() as f64 / (self.wall_micros as f64 / 1e6)
        }
    }

    /// Solve-time percentile in microseconds (`p` in `[0, 1]`), by the
    /// nearest-rank method; 0 when no rounds ran.
    pub fn solve_percentile_micros(&self, p: f64) -> u64 {
        if self.solve_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.solve_micros.clone();
        sorted.sort_unstable();
        let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Total microseconds spent in TE solves.
    pub fn total_solve_micros(&self) -> u64 {
        self.solve_micros.iter().sum()
    }
}

/// One sampled instant of the simulation (recorded at TE rounds).
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSample {
    /// When the TE round ran.
    pub time: SimTime,
    /// Demand multiplier in force.
    pub demand_scale: f64,
    /// Dynamic-capacity throughput.
    pub throughput: f64,
    /// Static-capacity throughput of the same algorithm.
    pub static_throughput: f64,
    /// Links upgraded this round.
    pub upgrades: usize,
    /// Churn versus the previous round.
    pub churn: f64,
    /// Whether this round fell back to the last feasible solution
    /// because the solver failed.
    pub te_fallback: bool,
}

/// Aggregate outcome of a scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Per-TE-round samples.
    pub samples: Vec<ScenarioSample>,
    /// Degradations ridden out as capacity flaps (would-be failures).
    pub flaps: usize,
    /// Links that went hard-down (no feasible rung).
    pub hard_downs: usize,
    /// Total reconfiguration downtime across the fleet.
    pub reconfig_downtime: SimDuration,
    /// TE rounds that fell back to the last feasible solution.
    pub te_fallbacks: usize,
    /// Modulation changes that failed even after retries.
    pub failed_changes: usize,
    /// Of the failed changes, those the make-before-break path rolled
    /// back cleanly (prior modulation restored, traffic held on the
    /// drained interim allocation).
    pub rolled_back_changes: usize,
    /// Retry attempts spent on flaky reconfigurations.
    pub retries: u32,
    /// Links pushed into quarantine over the run.
    pub quarantines: usize,
    /// Ticks where a link held position because telemetry was missing
    /// and the last-known-good reading had gone stale.
    pub stale_holds: usize,
    /// Link-ticks spent hard-down (the outage the paper wants to avoid).
    pub outage_link_ticks: usize,
    /// Of the outage link-ticks, those spent while a *correlated*
    /// (SRLG- or domain-scoped) fault covered the link — one shared
    /// incident taking several links down together.
    pub correlated_outage_link_ticks: usize,
    /// Outage link-ticks with no correlated fault covering the link:
    /// independent per-link failures.
    pub independent_outage_link_ticks: usize,
    /// Link-ticks spent degraded but carrying traffic (retrying,
    /// quarantined at a safe rung, or riding a stale reading) — the
    /// "flap, don't fail" share of the imperfect time.
    pub degraded_link_ticks: usize,
    /// Total link-ticks simulated (links × ticks).
    pub total_link_ticks: usize,
}

impl ScenarioReport {
    /// Mean throughput gain of dynamic over static across samples.
    pub fn mean_gain(&self) -> f64 {
        let gains: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.static_throughput > 0.0)
            .map(|s| s.throughput / s.static_throughput - 1.0)
            .collect();
        if gains.is_empty() {
            0.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }

    /// Total churn across all rounds.
    pub fn total_churn(&self) -> f64 {
        self.samples.iter().map(|s| s.churn).sum()
    }

    /// Fraction of link-ticks the fleet was carrying traffic (1 −
    /// outage share). Degraded ticks count as *available*: that is the
    /// point of flapping capacity instead of failing links.
    pub fn availability(&self) -> f64 {
        if self.total_link_ticks == 0 {
            1.0
        } else {
            1.0 - self.outage_link_ticks as f64 / self.total_link_ticks as f64
        }
    }

    /// Of the link-ticks that were *not* fully healthy, the fraction
    /// ridden out as degraded capacity rather than an outage.
    pub fn degraded_share(&self) -> f64 {
        let imperfect = self.outage_link_ticks + self.degraded_link_ticks;
        if imperfect == 0 {
            0.0
        } else {
            self.degraded_link_ticks as f64 / imperfect as f64
        }
    }

    /// Of the outage link-ticks, the fraction attributable to correlated
    /// (shared-segment) incidents — the number the SRLG experiment
    /// reports: how much of the fleet's outage one amplifier can cause.
    pub fn correlated_outage_share(&self) -> f64 {
        if self.outage_link_ticks == 0 {
            0.0
        } else {
            self.correlated_outage_link_ticks as f64 / self.outage_link_ticks as f64
        }
    }
}

/// A [`TeAlgorithm`] wrapper that fails with the injected [`TeFault`]
/// instead of solving — how the scenario loop exercises the TE-layer
/// fallback without touching the real solvers.
pub struct FaultInjectedTe<'a> {
    inner: &'a dyn TeAlgorithm,
    fault: TeFault,
}

impl<'a> FaultInjectedTe<'a> {
    /// Wraps `inner` so every solve fails with `fault`.
    pub fn new(inner: &'a dyn TeAlgorithm, fault: TeFault) -> Self {
        Self { inner, fault }
    }
}

impl TeAlgorithm for FaultInjectedTe<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn try_solve(&self, _problem: &TeProblem) -> Result<TeSolution, TeError> {
        match self.fault {
            TeFault::SolverTimeout => Err(TeError::SolverTimeout {
                algorithm: self.inner.name(),
                detail: "injected fault: solver deadline exceeded".into(),
            }),
            TeFault::SolverAbort => Err(TeError::SolverAbort {
                algorithm: self.inner.name(),
                detail: "injected fault: solver aborted mid-round".into(),
            }),
        }
    }
}

/// A bound simulation: topology + telemetry + controller + TE.
pub struct Scenario {
    network: DynamicCapacityNetwork,
    /// The counterfactual fleet: modulations pinned at their initial
    /// rates, links *fail* (capacity 0) whenever SNR drops below their
    /// rung's threshold — the binary up/down policy the paper argues
    /// against.
    static_wan: WanTopology,
    telemetry: Vec<LinkTelemetry>,
    demands: DemandMatrix,
    config: ScenarioConfig,
    /// Metrics/event sink. Measurement only: with any observer installed
    /// the [`ScenarioReport`] stays byte-identical to an unobserved run.
    obs: Arc<dyn Observer>,
    /// Timing sidecar of the most recent [`Scenario::run`].
    last_timing: Option<ScenarioTiming>,
    /// TE rounds executed across every [`Scenario::run`] on this scenario —
    /// the round index a sweep checkpoint records so a resumed run can
    /// line its progress up against the interrupted one.
    rounds_completed: u64,
}

/// Validating builder for [`Scenario`]; see [`Scenario::builder`].
pub struct ScenarioBuilder {
    wan: WanTopology,
    fleet: FleetConfig,
    demands: DemandMatrix,
    config: ScenarioConfig,
    obs: Arc<dyn Observer>,
}

impl ScenarioBuilder {
    /// Scenario wiring (TE cadence, fault plan, controller tuning).
    pub fn config(mut self, config: ScenarioConfig) -> Self {
        self.config = config;
        self
    }

    /// Routes the whole pipeline's metrics and events — scenario loop,
    /// round engine, controller, transceivers — to `obs`. Observability
    /// never alters the run: reports stay byte-identical.
    pub fn observer(mut self, obs: Arc<dyn Observer>) -> Self {
        self.obs = obs;
        self
    }

    /// Validates the wiring and binds the scenario.
    ///
    /// The fleet must provide at least as many telemetry streams as the
    /// topology has links (WAN link `i` replays stream `i`), and the TE
    /// interval must be a whole number of telemetry ticks.
    pub fn build(self) -> Result<Scenario, RwcError> {
        let Self { wan, fleet, demands, config, obs } = self;
        if fleet.n_links() < wan.n_links() {
            return Err(RwcError::Config(format!(
                "fleet has {} telemetry streams for {} links",
                fleet.n_links(),
                wan.n_links()
            )));
        }
        if fleet.tick == SimDuration::ZERO
            || !config.te_interval.as_millis().is_multiple_of(fleet.tick.as_millis())
        {
            return Err(RwcError::Config(format!(
                "TE interval ({} ms) must be a whole number of telemetry ticks ({} ms)",
                config.te_interval.as_millis(),
                fleet.tick.as_millis()
            )));
        }
        let gen = FleetGenerator::new(fleet);
        let telemetry: Vec<LinkTelemetry> =
            (0..wan.n_links()).map(|i| gen.link(i)).collect();
        let static_wan = wan.clone();
        let mut network = DynamicCapacityNetwork::new(
            wan,
            config.augment.clone(),
            config.controller.clone(),
            config.seed,
        );
        network.set_make_before_break(config.make_before_break);
        network.set_observer(Arc::clone(&obs));
        Ok(Scenario {
            network,
            static_wan,
            telemetry,
            demands,
            config,
            obs,
            last_timing: None,
            rounds_completed: 0,
        })
    }
}

impl Scenario {
    /// Starts a builder binding a topology to synthetic telemetry; see
    /// [`ScenarioBuilder::build`] for the validation it applies.
    pub fn builder(wan: WanTopology, fleet: FleetConfig, demands: DemandMatrix) -> ScenarioBuilder {
        ScenarioBuilder { wan, fleet, demands, config: ScenarioConfig::default(), obs: rwc_obs::noop() }
    }

    /// Read access to the live network state.
    pub fn network(&self) -> &DynamicCapacityNetwork {
        &self.network
    }

    /// Routes the whole pipeline's metrics and events to `obs` (same as
    /// [`ScenarioBuilder::observer`], for an already-built scenario).
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.network.set_observer(Arc::clone(&obs));
        self.obs = obs;
    }

    /// Wall-clock timing of the most recent [`Scenario::run`]. Kept out
    /// of [`ScenarioReport`] because timing is nondeterministic; the
    /// report stays byte-comparable across runs.
    pub fn last_timing(&self) -> Option<&ScenarioTiming> {
        self.last_timing.as_ref()
    }

    /// TE rounds executed so far, cumulative across runs. This is the
    /// round index checkpoints record (`SweepCheckpoint::round_index`
    /// in `rwc-harness`): a resumed run compares it against the
    /// interrupted run's value to confirm both walked the same schedule.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Runs for `horizon`, returning the report. Wiring problems (e.g.
    /// the horizon outrunning telemetry) come back as [`RwcError`];
    /// faults injected through [`ScenarioConfig::fault_plan`] are
    /// *handled*, not returned — they surface in the report's degradation
    /// counters. Wall-clock timing of the run is always captured and
    /// readable via [`Scenario::last_timing`]; it lives outside the
    /// report so determinism comparisons stay byte-exact.
    pub fn run(
        &mut self,
        horizon: SimDuration,
        algorithm: &dyn TeAlgorithm,
    ) -> Result<ScenarioReport, RwcError> {
        let tick = self.telemetry[0].trace.tick();
        let n_ticks = horizon.ticks(tick) as usize;
        let max_ticks = self
            .telemetry
            .iter()
            .map(|t| t.trace.len())
            .min()
            .ok_or_else(|| RwcError::Config("scenario has no telemetry streams".into()))?;
        if n_ticks > max_ticks {
            return Err(RwcError::Telemetry(format!(
                "horizon needs {n_ticks} ticks but telemetry has {max_ticks}"
            )));
        }
        let te_every = (self.config.te_interval.as_millis() / tick.as_millis()) as usize;
        let day = SimDuration::from_days(1).as_secs_f64();
        // Structurally invalid plans are a wiring error, not a fault to
        // ride out: reject them before the first tick.
        let plan = self.config.fault_plan.clone().unwrap_or_default();
        plan.validate()?;
        // SRLG-scoped events resolve against the topology's real link →
        // fiber map, so one amplifier event covers every wavelength on
        // its segment.
        let fibers: Vec<usize> =
            self.network.wan().links().map(|(_, link)| link.fiber_id).collect();
        let injector = FaultInjector::with_fibers(plan, fibers);
        let n_links = self.network.wan().n_links();
        // Per-link value delivered when a FreezeReadings fault started.
        let mut frozen: Vec<Option<Db>> = vec![None; n_links];
        // Counterfactual throughput carried over if its solver ever fails.
        let mut last_static_total = 0.0;
        self.network.set_full_rebuild(self.config.full_rebuild);
        // Counterfactual-solve cache. The static fleet's modulations are
        // pinned, so its problem is fully determined by the demand scale
        // and which links are below their rung's threshold — and with
        // hourly rounds the diurnal scale repeats every day. Keys are
        // exact (scale bits + down mask), values only stored on success,
        // and the solver is deterministic, so a hit bit-equals the solve
        // it replaces.
        let mut counterfactual_cache: std::collections::HashMap<(u64, Vec<bool>), f64> =
            std::collections::HashMap::new();
        let mut timing = ScenarioTiming::default();
        let run_start = std::time::Instant::now();
        self.obs.incr("scenario.runs", 1);

        let mut report = ScenarioReport {
            samples: Vec::new(),
            flaps: 0,
            hard_downs: 0,
            reconfig_downtime: SimDuration::ZERO,
            te_fallbacks: 0,
            failed_changes: 0,
            rolled_back_changes: 0,
            retries: 0,
            quarantines: 0,
            stale_holds: 0,
            outage_link_ticks: 0,
            correlated_outage_link_ticks: 0,
            independent_outage_link_ticks: 0,
            degraded_link_ticks: 0,
            total_link_ticks: 0,
        };
        for i in 0..n_ticks {
            let now = SimTime::EPOCH + tick * i as u64;
            self.obs.incr("scenario.ticks", 1);

            // Telemetry path: raw samples filtered through any active
            // telemetry fault. Freeze faults capture the first reading
            // inside their window and replay it until the window closes.
            let mut readings: Vec<(LinkId, Option<Db>)> = Vec::with_capacity(n_links);
            for (l, t) in self.telemetry.iter().enumerate() {
                let link = LinkId(l);
                // Optical faults change what the light can actually carry:
                // the physical SNR drops by the (correlated) penalty before
                // any telemetry-path fault distorts the *reporting* of it.
                let raw = Db(t.trace.snr_at(i).value() - injector.optical_penalty_db(link, now));
                let telemetry_fault = injector.telemetry_fault(link, now);
                if telemetry_fault.is_some() {
                    self.obs.incr("scenario.faults.telemetry", 1);
                    if self.obs.enabled() {
                        self.obs.event(&Event::FaultInjected {
                            link: Some(l as u64),
                            domain: FaultDomain::Telemetry,
                        });
                    }
                }
                match telemetry_fault {
                    Some(TelemetryFault::FreezeReadings) => {
                        if frozen[l].is_none() {
                            frozen[l] = Some(raw);
                        }
                    }
                    _ => frozen[l] = None,
                }
                readings.push((link, injector.observe(link, raw, frozen[l], now)));
            }

            // Hardware path: (re-)arm every BVT fault whose window covers
            // this tick, so the next reconfiguration attempt trips.
            for l in 0..n_links {
                if let Some(fault) = injector.bvt_fault(LinkId(l), now) {
                    self.network.inject_bvt_fault(LinkId(l), fault);
                    self.obs.incr("scenario.faults.bvt", 1);
                    if self.obs.enabled() {
                        self.obs.event(&Event::FaultInjected {
                            link: Some(l as u64),
                            domain: FaultDomain::Bvt,
                        });
                    }
                }
            }

            let sweep = self.network.ingest(&readings, now);
            report.flaps += sweep.failures_avoided;
            report.hard_downs += sweep.went_down.len();
            report.reconfig_downtime += sweep.downtime;
            report.retries += sweep.retries;
            report.failed_changes += sweep.reconfig_failures;
            report.quarantines += sweep.quarantined.len();
            report.stale_holds += sweep.stale_holds;

            // Availability accounting: an outage link-tick is a link with
            // no feasible rung; a degraded one still carries traffic.
            // Outage ticks are attributed to *correlated* incidents when a
            // shared-scope (SRLG/domain) fault covers the link right now,
            // and to independent failures otherwise.
            for l in 0..n_links {
                let link = LinkId(l);
                report.total_link_ticks += 1;
                if self.network.controller().is_down(link) {
                    report.outage_link_ticks += 1;
                    if injector.correlated_active(link, now) {
                        report.correlated_outage_link_ticks += 1;
                    } else {
                        report.independent_outage_link_ticks += 1;
                    }
                } else if self.network.controller().health(link, now)
                    != crate::controller::LinkHealth::Healthy
                {
                    report.degraded_link_ticks += 1;
                }
            }

            // Keep the counterfactual fleet's readings current (it sees
            // the same faulted telemetry the real controller does).
            for &(l, snr) in &readings {
                if let Some(snr) = snr {
                    self.static_wan.set_snr(l, snr);
                }
            }

            if i % te_every == 0 {
                let phase = std::f64::consts::TAU * now.since_epoch().as_secs_f64() / day;
                let scale = 1.0 + self.config.demand_diurnal_amp * phase.sin();
                let demands = self.demands.scaled(scale.max(0.0));
                let round_start = std::time::Instant::now();
                let round = match injector.te_fault(now) {
                    Some(fault) => {
                        self.obs.incr("scenario.faults.te", 1);
                        if self.obs.enabled() {
                            self.obs.event(&Event::FaultInjected {
                                link: None,
                                domain: FaultDomain::Te,
                            });
                        }
                        let faulty = FaultInjectedTe::new(algorithm, fault);
                        self.network.te_round(&demands, &faulty, now)
                    }
                    None => self.network.te_round(&demands, algorithm, now),
                };
                self.rounds_completed += 1;
                report.reconfig_downtime += round.reconfig_downtime;
                report.failed_changes += round.failed_changes;
                report.rolled_back_changes += round.rolled_back;
                report.retries += round.retries;
                if round.te_fallback {
                    report.te_fallbacks += 1;
                }

                // Counterfactual: never-upgraded links under the binary
                // policy — a link whose SNR is below its (fixed) rung's
                // threshold is simply down. Cached on (scale, down mask)
                // unless the full-rebuild escape hatch is on.
                let table = &self.config.controller.table;
                let down: Vec<bool> = self
                    .static_wan
                    .links()
                    .map(|(_, link)| !table.supports(link.snr, link.modulation))
                    .collect();
                let cache_key = (scale.max(0.0).to_bits(), down.clone());
                let cached = (!self.config.full_rebuild)
                    .then(|| counterfactual_cache.get(&cache_key).copied())
                    .flatten();
                let static_total = match cached {
                    Some(total) => {
                        self.obs.incr("scenario.counterfactual.hits", 1);
                        last_static_total = total;
                        total
                    }
                    None => {
                        self.obs.incr("scenario.counterfactual.misses", 1);
                        let mut static_problem =
                            TeProblem::from_wan(&self.static_wan, &demands);
                        for (id, is_down) in down.iter().enumerate() {
                            if *is_down {
                                static_problem.override_link_capacity(LinkId(id), 0.0);
                            }
                        }
                        match algorithm.try_solve(&static_problem) {
                            Ok(s) => {
                                counterfactual_cache.insert(cache_key, s.total);
                                last_static_total = s.total;
                                s.total
                            }
                            // The counterfactual gets the same grace the
                            // real pipeline does: carry the last feasible
                            // total.
                            Err(_) => last_static_total,
                        }
                    }
                };
                timing.solve_micros.push(round_start.elapsed().as_micros() as u64);

                report.samples.push(ScenarioSample {
                    time: now,
                    demand_scale: scale,
                    throughput: round.throughput,
                    static_throughput: static_total,
                    upgrades: round.translation.upgrades.len(),
                    churn: round.churn,
                    te_fallback: round.te_fallback,
                });
            }
        }
        timing.wall_micros = run_start.elapsed().as_micros() as u64;
        if self.obs.enabled() {
            self.obs.gauge("scenario.availability", report.availability());
            self.obs.gauge("scenario.degraded_share", report.degraded_share());
        }
        self.last_timing = Some(timing);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_faults::{BvtFault, FaultEvent, FaultKind, FaultPlanConfig, OpticalFault};
    use rwc_te::demand::Priority;
    use rwc_te::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn scenario(days_capacity: u64) -> Scenario {
        scenario_with(days_capacity, ScenarioConfig::default())
    }

    fn scenario_with(days_capacity: u64, config: ScenarioConfig) -> Scenario {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        dm.add(c, d, Gbps(120.0), Priority::Elastic);
        let fleet = FleetConfig {
            n_fibers: 1,
            wavelengths_per_fiber: 4,
            horizon: SimDuration::from_days(days_capacity),
            fiber_baseline_mean_db: 13.5,
            fiber_baseline_sd_db: 0.2,
            wavelength_jitter_sd_db: 0.3,
            ..FleetConfig::paper()
        };
        Scenario::builder(wan, fleet, dm).config(config).build().unwrap()
    }

    #[test]
    fn runs_and_samples() {
        let mut s = scenario(10);
        let report = s.run(SimDuration::from_days(7), &SwanTe::default()).unwrap();
        // Hourly TE over 7 days = 168 samples.
        assert_eq!(report.samples.len(), 168);
        // Demand swings with the diurnal cycle.
        let scales: Vec<f64> = report.samples.iter().map(|s| s.demand_scale).collect();
        let min = scales.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scales.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 1.2 && min < 0.8, "diurnal range [{min},{max}]");
        // Fault-free run: nothing degraded, full availability.
        assert_eq!(report.te_fallbacks, 0);
        assert_eq!(report.failed_changes, 0);
        assert!(report.availability() > 0.99, "availability {}", report.availability());
        // One TE round per hourly sample, cumulative across runs.
        assert_eq!(s.rounds_completed(), 168);
        s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        assert_eq!(s.rounds_completed(), 168 + 24);
    }

    #[test]
    fn dynamic_gains_under_overload() {
        let mut s = scenario(10);
        let report = s.run(SimDuration::from_days(3), &SwanTe::default()).unwrap();
        // Demands (2×120 G, swinging to 156 G) exceed the 100 G links at
        // peaks; with ~13.5 dB baselines the links upgrade and dynamic
        // throughput must beat static on average.
        assert!(report.mean_gain() > 0.02, "gain={}", report.mean_gain());
        let total_upgrades: usize = report.samples.iter().map(|s| s.upgrades).sum();
        assert!(total_upgrades >= 1);
    }

    #[test]
    fn horizon_validation() {
        let mut s = scenario(5);
        // 10 days of simulation needs 10 days of telemetry — typed error.
        let err = s.run(SimDuration::from_days(10), &SwanTe::default()).unwrap_err();
        assert!(matches!(err, RwcError::Telemetry(_)), "{err}");
    }

    #[test]
    fn report_accumulates_monotonically() {
        let mut s1 = scenario(10);
        let short = s1.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        let mut s2 = scenario(10);
        let long = s2.run(SimDuration::from_days(5), &SwanTe::default()).unwrap();
        assert!(long.samples.len() > short.samples.len());
        assert!(long.total_churn() >= 0.0);
    }

    #[test]
    fn te_faults_trigger_fallback_rounds() {
        // Make the solver fail for the first six hours: every TE round
        // in that window must fall back, and throughput must carry the
        // last feasible totals instead of crashing to zero mid-run.
        let plan = FaultPlan::none().with(FaultEvent::on_link(
            FaultKind::Te(TeFault::SolverTimeout),
            LinkId(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(6),
        ));
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = scenario_with(10, config);
        let report = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        assert_eq!(report.te_fallbacks, 6, "hourly rounds in a 6 h window");
        let fallback_samples: Vec<&ScenarioSample> =
            report.samples.iter().filter(|s| s.te_fallback).collect();
        assert_eq!(fallback_samples.len(), 6);
        for s in fallback_samples {
            assert!(s.throughput > 0.0, "fallback must carry the last solution");
        }
    }

    #[test]
    fn telemetry_drops_hold_last_known_good() {
        // Drop all of link 0's samples for two hours mid-day: within the
        // staleness bound the controller rides last-known-good, so the
        // link never goes down.
        let plan = FaultPlan::none().with(FaultEvent::on_link(
            FaultKind::Telemetry(TelemetryFault::DropSamples),
            LinkId(0),
            SimTime::EPOCH + SimDuration::from_hours(6),
            SimDuration::from_minutes(40),
        ));
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = scenario_with(10, config);
        let report = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        assert_eq!(report.hard_downs, 0);
        assert_eq!(report.outage_link_ticks, 0);
    }

    #[test]
    fn bvt_faults_exercise_retry_accounting() {
        // Arm a relock failure on every link for the first day. The
        // overload demands force upgrades, so reconfigurations trip and
        // the controller's retry machinery shows up in the report.
        let mut plan = FaultPlan::none();
        for l in 0..4 {
            plan = plan.with(FaultEvent::on_link(
                FaultKind::Bvt(BvtFault::RelockFailure),
                LinkId(l),
                SimTime::EPOCH,
                SimDuration::from_days(1),
            ));
        }
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = scenario_with(10, config);
        let report = s.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
        assert!(report.retries > 0, "armed faults must cost retries");
        // Day two is fault-free, so upgrades eventually land anyway.
        let total_upgrades: usize = report.samples.iter().map(|s| s.upgrades).sum();
        assert!(total_upgrades >= 1);
    }

    #[test]
    fn random_plan_runs_without_panicking() {
        // A dense random plan across every class must be absorbed: the
        // run completes and the accounting stays consistent.
        let plan = FaultPlanConfig {
            n_links: 4,
            horizon: SimDuration::from_days(3),
            bvt_rate_per_link_day: 2.0,
            telemetry_rate_per_link_day: 2.0,
            te_rate_per_day: 2.0,
            seed: 7,
            ..FaultPlanConfig::default()
        }
        .generate();
        assert!(!plan.is_empty());
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = scenario_with(10, config);
        let report = s.run(SimDuration::from_days(3), &SwanTe::default()).unwrap();
        assert_eq!(report.samples.len(), 72);
        assert!(report.outage_link_ticks + report.degraded_link_ticks <= report.total_link_ticks);
        assert!(report.availability() <= 1.0 && report.availability() >= 0.0);
    }

    /// Fig. 7 fleet with links 0 and 2 riding the same fiber segment —
    /// the SRLG an amplifier event takes down in one shot.
    fn srlg_scenario_with(days_capacity: u64, config: ScenarioConfig) -> Scenario {
        let mut wan = builders::fig7_example();
        let shared = wan.link(LinkId(0)).fiber_id;
        wan.link_mut(LinkId(2)).fiber_id = shared;
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        dm.add(c, d, Gbps(120.0), Priority::Elastic);
        let fleet = FleetConfig {
            n_fibers: 1,
            wavelengths_per_fiber: 4,
            horizon: SimDuration::from_days(days_capacity),
            fiber_baseline_mean_db: 13.5,
            fiber_baseline_sd_db: 0.2,
            wavelength_jitter_sd_db: 0.3,
            ..FleetConfig::paper()
        };
        Scenario::builder(wan, fleet, dm).config(config).build().unwrap()
    }

    #[test]
    fn srlg_amplifier_event_downs_the_whole_segment() {
        // One severe amplifier outage on the shared fiber: 25 dB off a
        // ≈13.5 dB baseline leaves nothing feasible, so links 0 AND 2 go
        // down together and every outage tick is attributed correlated.
        let fiber = builders::fig7_example().link(LinkId(0)).fiber_id;
        let plan = FaultPlan::none().with(FaultEvent::on_srlg(
            FaultKind::Optical(OpticalFault::AmplifierOutage { severity_db: 25.0 }),
            fiber,
            SimTime::EPOCH + SimDuration::from_hours(6),
            SimDuration::from_hours(6),
        ));
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = srlg_scenario_with(10, config.clone());
        let report = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        // Both links of the segment went hard-down; the off-segment links
        // (1 and 3) never did.
        assert_eq!(report.hard_downs, 2, "the whole SRLG fails together");
        // 6 h × 4 ticks/h × 2 links = 48 outage link-ticks, all inside
        // the event window, all correlated (recovery happens on the first
        // post-window sweep, before accounting).
        assert_eq!(report.outage_link_ticks, 48);
        assert_eq!(report.correlated_outage_link_ticks, 48);
        assert_eq!(report.independent_outage_link_ticks, 0);
        assert!((report.correlated_outage_share() - 1.0).abs() < 1e-12);
        // Determinism: the same plan + seed reproduces byte-identically.
        let mut s2 = srlg_scenario_with(10, config);
        let report2 = s2.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&report2).unwrap()
        );
    }

    #[test]
    fn link_scoped_outages_attribute_independent() {
        // The same severity on a single link: outage ticks accrue on that
        // link only and land in the *independent* bucket.
        let plan = FaultPlan::none().with(FaultEvent::on_link(
            FaultKind::Optical(OpticalFault::AmplifierOutage { severity_db: 25.0 }),
            LinkId(0),
            SimTime::EPOCH + SimDuration::from_hours(6),
            SimDuration::from_hours(6),
        ));
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = srlg_scenario_with(10, config);
        let report = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        assert_eq!(report.hard_downs, 1);
        assert_eq!(report.outage_link_ticks, 24);
        assert_eq!(report.correlated_outage_link_ticks, 0);
        assert_eq!(report.independent_outage_link_ticks, 24);
    }

    #[test]
    fn structurally_invalid_plans_are_rejected_up_front() {
        let plan = FaultPlan::none().with(FaultEvent::on_link(
            FaultKind::Te(TeFault::SolverTimeout),
            LinkId(0),
            SimTime::EPOCH,
            SimDuration::ZERO, // empty window: can never fire
        ));
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut s = scenario_with(10, config);
        let err = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap_err();
        assert!(
            matches!(
                err,
                RwcError::FaultPlan(rwc_faults::FaultPlanError::EmptyWindow { index: 0 })
            ),
            "{err}"
        );
    }

    #[test]
    fn incremental_engine_matches_full_rebuild_byte_for_byte() {
        // The whole point of the escape hatch: the incremental round
        // engine (dirty-link augmentation + solve caches) must not change
        // a single byte of the report relative to the from-scratch path,
        // fault plan and all.
        let plan = FaultPlanConfig {
            n_links: 4,
            horizon: SimDuration::from_days(2),
            bvt_rate_per_link_day: 1.0,
            telemetry_rate_per_link_day: 1.0,
            seed: 0xC0FFEE,
            ..FaultPlanConfig::default()
        }
        .generate();
        let incremental = ScenarioConfig {
            fault_plan: Some(plan.clone()),
            ..ScenarioConfig::default()
        };
        let full = ScenarioConfig {
            fault_plan: Some(plan),
            full_rebuild: true,
            ..ScenarioConfig::default()
        };
        let mut a = scenario_with(10, incremental);
        let mut b = scenario_with(10, full);
        let ra = a.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
        let rb = b.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap(),
            "incremental and full-rebuild engines diverged"
        );
        // The incremental arm actually exercised the caches.
        let stats = a.network().augment_stats();
        assert_eq!(stats.full_rebuilds, 1, "{stats:?}");
        assert!(stats.in_place_patches + stats.suffix_rebuilds > 0, "{stats:?}");
        assert_eq!(b.network().augment_stats(), crate::augment::AugmentStats::default());
    }

    #[test]
    fn timed_run_reports_round_timing() {
        let mut s = scenario(10);
        assert!(s.last_timing().is_none(), "no run yet, no timing");
        let report = s.run(SimDuration::from_days(1), &SwanTe::default()).unwrap();
        let timing = s.last_timing().expect("every run records timing");
        assert_eq!(timing.solve_micros.len(), report.samples.len());
        assert!(timing.wall_micros > 0);
        assert!(timing.rounds_per_sec() > 0.0);
        assert!(
            timing.solve_percentile_micros(0.5) <= timing.solve_percentile_micros(0.99),
            "p50 must not exceed p99"
        );
    }

    #[test]
    fn identical_plans_give_identical_reports() {
        let plan = FaultPlanConfig {
            n_links: 4,
            horizon: SimDuration::from_days(2),
            seed: 99,
            ..FaultPlanConfig::default()
        }
        .generate();
        let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
        let mut a = scenario_with(10, config.clone());
        let mut b = scenario_with(10, config);
        let ra = a.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
        let rb = b.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
        let ja = serde_json::to_string(&ra).unwrap();
        let jb = serde_json::to_string(&rb).unwrap();
        assert_eq!(ja, jb);
    }
}
