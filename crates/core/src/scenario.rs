//! Multi-period scenario simulation.
//!
//! The paper's end state is a WAN where, continuously: telemetry streams
//! SNR, the controller walks/crawls degraded links instead of failing
//! them, and each TE round exploits whatever headroom the fleet currently
//! has through the graph abstraction. [`Scenario`] wires those pieces
//! together over simulated time:
//!
//! - each WAN link is bound to one synthetic telemetry stream;
//! - every telemetry tick (15 min) the controller ingests SNR readings;
//! - every `te_interval` a TE round runs with diurnally scaled demands;
//! - the report accumulates throughput (dynamic vs static), flaps vs hard
//!   failures, reconfiguration downtime and churn.

use crate::augment::AugmentConfig;
use crate::controller::ControllerConfig;
use crate::network::DynamicCapacityNetwork;
use rwc_te::demand::DemandMatrix;
use rwc_te::TeAlgorithm;
use rwc_telemetry::{FleetConfig, FleetGenerator, LinkTelemetry};
use rwc_topology::wan::{LinkId, WanTopology};
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;

/// Scenario wiring.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// How often a TE round runs (must be a multiple of the telemetry
    /// tick; SWAN-era controllers ran every few minutes to hours).
    pub te_interval: SimDuration,
    /// Peak-to-mean swing of the diurnal demand cycle (0 = flat).
    pub demand_diurnal_amp: f64,
    /// Augmentation settings for the TE rounds.
    pub augment: AugmentConfig,
    /// Controller settings (hysteresis, BVT procedure).
    pub controller: ControllerConfig,
    /// Seed for the network's stochastic parts (BVT latencies).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            te_interval: SimDuration::from_hours(1),
            demand_diurnal_amp: 0.3,
            augment: AugmentConfig::default(),
            // In a scenario, the TE layer owns upgrades (that is the whole
            // point of the abstraction); the controller only handles
            // walk/crawl safety.
            controller: ControllerConfig { auto_upgrade: false, ..Default::default() },
            seed: 0x5CE4A210,
        }
    }
}

/// One sampled instant of the simulation (recorded at TE rounds).
#[derive(Debug, Clone)]
pub struct ScenarioSample {
    /// When the TE round ran.
    pub time: SimTime,
    /// Demand multiplier in force.
    pub demand_scale: f64,
    /// Dynamic-capacity throughput.
    pub throughput: f64,
    /// Static-capacity throughput of the same algorithm.
    pub static_throughput: f64,
    /// Links upgraded this round.
    pub upgrades: usize,
    /// Churn versus the previous round.
    pub churn: f64,
}

/// Aggregate outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Per-TE-round samples.
    pub samples: Vec<ScenarioSample>,
    /// Degradations ridden out as capacity flaps (would-be failures).
    pub flaps: usize,
    /// Links that went hard-down (no feasible rung).
    pub hard_downs: usize,
    /// Total reconfiguration downtime across the fleet.
    pub reconfig_downtime: SimDuration,
}

impl ScenarioReport {
    /// Mean throughput gain of dynamic over static across samples.
    pub fn mean_gain(&self) -> f64 {
        let gains: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.static_throughput > 0.0)
            .map(|s| s.throughput / s.static_throughput - 1.0)
            .collect();
        if gains.is_empty() {
            0.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }

    /// Total churn across all rounds.
    pub fn total_churn(&self) -> f64 {
        self.samples.iter().map(|s| s.churn).sum()
    }
}

/// A bound simulation: topology + telemetry + controller + TE.
pub struct Scenario {
    network: DynamicCapacityNetwork,
    /// The counterfactual fleet: modulations pinned at their initial
    /// rates, links *fail* (capacity 0) whenever SNR drops below their
    /// rung's threshold — the binary up/down policy the paper argues
    /// against.
    static_wan: WanTopology,
    telemetry: Vec<LinkTelemetry>,
    demands: DemandMatrix,
    config: ScenarioConfig,
}

impl Scenario {
    /// Binds a topology to synthetic telemetry.
    ///
    /// `fleet` must provide at least as many links as the topology has;
    /// WAN link `i` replays telemetry stream `i`. The fleet's horizon
    /// bounds how long the scenario can run.
    pub fn new(
        wan: WanTopology,
        fleet: FleetConfig,
        demands: DemandMatrix,
        config: ScenarioConfig,
    ) -> Self {
        assert!(
            fleet.n_links() >= wan.n_links(),
            "fleet has {} streams for {} links",
            fleet.n_links(),
            wan.n_links()
        );
        assert!(
            config.te_interval.as_millis() % fleet.tick.as_millis() == 0,
            "TE interval must be a multiple of the telemetry tick"
        );
        let gen = FleetGenerator::new(fleet);
        let telemetry: Vec<LinkTelemetry> =
            (0..wan.n_links()).map(|i| gen.link(i)).collect();
        let static_wan = wan.clone();
        let network = DynamicCapacityNetwork::new(
            wan,
            config.augment.clone(),
            config.controller.clone(),
            config.seed,
        );
        Self { network, static_wan, telemetry, demands, config }
    }

    /// Read access to the live network state.
    pub fn network(&self) -> &DynamicCapacityNetwork {
        &self.network
    }

    /// Runs for `horizon`, returning the report.
    pub fn run(&mut self, horizon: SimDuration, algorithm: &dyn TeAlgorithm) -> ScenarioReport {
        let tick = self.telemetry[0].trace.tick();
        let n_ticks = horizon.ticks(tick) as usize;
        let max_ticks = self.telemetry.iter().map(|t| t.trace.len()).min().unwrap();
        assert!(
            n_ticks <= max_ticks,
            "horizon needs {n_ticks} ticks but telemetry has {max_ticks}"
        );
        let te_every = (self.config.te_interval.as_millis() / tick.as_millis()) as usize;
        let day = SimDuration::from_days(1).as_secs_f64();

        let mut report = ScenarioReport {
            samples: Vec::new(),
            flaps: 0,
            hard_downs: 0,
            reconfig_downtime: SimDuration::ZERO,
        };
        for i in 0..n_ticks {
            let now = SimTime::EPOCH + tick * i as u64;
            let readings: Vec<(LinkId, Db)> = self
                .telemetry
                .iter()
                .enumerate()
                .map(|(l, t)| (LinkId(l), t.trace.snr_at(i)))
                .collect();
            let sweep = self.network.ingest_snr(&readings, now);
            report.flaps += sweep.failures_avoided;
            report.hard_downs += sweep.went_down.len();
            report.reconfig_downtime += sweep.downtime;

            // Keep the counterfactual fleet's readings current.
            for &(l, snr) in &readings {
                self.static_wan.set_snr(l, snr);
            }

            if i % te_every == 0 {
                let phase = std::f64::consts::TAU * now.since_epoch().as_secs_f64() / day;
                let scale = 1.0 + self.config.demand_diurnal_amp * phase.sin();
                let demands = self.demands.scaled(scale.max(0.0));
                let round = self.network.te_round(&demands, algorithm, now);
                report.reconfig_downtime += round.reconfig_downtime;

                // Counterfactual: never-upgraded links under the binary
                // policy — a link whose SNR is below its (fixed) rung's
                // threshold is simply down.
                let table = &self.config.controller.table;
                let mut static_problem =
                    rwc_te::problem::TeProblem::from_wan(&self.static_wan, &demands);
                for (id, link) in self.static_wan.links() {
                    if !table.supports(link.snr, link.modulation) {
                        static_problem.override_link_capacity(id, 0.0);
                    }
                }
                let static_solution = algorithm.solve(&static_problem);

                report.samples.push(ScenarioSample {
                    time: now,
                    demand_scale: scale,
                    throughput: round.throughput,
                    static_throughput: static_solution.total,
                    upgrades: round.translation.upgrades.len(),
                    churn: round.churn,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_te::demand::Priority;
    use rwc_te::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn scenario(days_capacity: u64) -> Scenario {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        dm.add(c, d, Gbps(120.0), Priority::Elastic);
        let fleet = FleetConfig {
            n_fibers: 1,
            wavelengths_per_fiber: 4,
            horizon: SimDuration::from_days(days_capacity),
            fiber_baseline_mean_db: 13.5,
            fiber_baseline_sd_db: 0.2,
            wavelength_jitter_sd_db: 0.3,
            ..FleetConfig::paper()
        };
        Scenario::new(wan, fleet, dm, ScenarioConfig::default())
    }

    #[test]
    fn runs_and_samples() {
        let mut s = scenario(10);
        let report = s.run(SimDuration::from_days(7), &SwanTe::default());
        // Hourly TE over 7 days = 168 samples.
        assert_eq!(report.samples.len(), 168);
        // Demand swings with the diurnal cycle.
        let scales: Vec<f64> = report.samples.iter().map(|s| s.demand_scale).collect();
        let min = scales.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scales.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 1.2 && min < 0.8, "diurnal range [{min},{max}]");
    }

    #[test]
    fn dynamic_gains_under_overload() {
        let mut s = scenario(10);
        let report = s.run(SimDuration::from_days(3), &SwanTe::default());
        // Demands (2×120 G, swinging to 156 G) exceed the 100 G links at
        // peaks; with ~13.5 dB baselines the links upgrade and dynamic
        // throughput must beat static on average.
        assert!(report.mean_gain() > 0.02, "gain={}", report.mean_gain());
        let total_upgrades: usize = report.samples.iter().map(|s| s.upgrades).sum();
        assert!(total_upgrades >= 1);
    }

    #[test]
    fn horizon_validation() {
        let mut s = scenario(5);
        // 10 days of simulation needs 10 days of telemetry — must panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(SimDuration::from_days(10), &SwanTe::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn report_accumulates_monotonically() {
        let mut s1 = scenario(10);
        let short = s1.run(SimDuration::from_days(1), &SwanTe::default());
        let mut s2 = scenario(10);
        let long = s2.run(SimDuration::from_days(5), &SwanTe::default());
        assert!(long.samples.len() > short.samples.len());
        assert!(long.total_churn() >= 0.0);
    }
}
