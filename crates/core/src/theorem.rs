//! Executable Theorem 1.
//!
//! *"Let G be a topology consisting of links with variable capacities,
//! with penalty function P. There is an augmented topology G′ such that
//! solving the min-cost max-flow problem on G′ is equivalent to solving
//! max-flow on G."*
//!
//! [`check_single_commodity`] runs both sides: min-cost max-flow on the
//! augmented graph (fake links priced by the penalty function) versus
//! plain max-flow on the dynamic-capacity graph (every feasible upgrade
//! applied). Equality of the flow values *is* the theorem; the min-cost
//! side additionally selects a cheapest set of upgrades achieving it, and
//! the translated solution is verified feasible on the upgraded topology.

use crate::augment::{augment, AugmentConfig};
use crate::translate::translate;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::problem::TeSolution;
use rwc_topology::graph::NodeId;
use rwc_topology::wan::WanTopology;
use rwc_util::units::Gbps;

/// Outcome of one Theorem 1 check.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoremReport {
    /// Min-cost max-flow value on the augmented graph G′.
    pub augmented_value: f64,
    /// Max-flow value on G with all SNR-feasible upgrades applied.
    pub upgraded_value: f64,
    /// Max-flow value on G without any upgrades (context).
    pub static_value: f64,
    /// Cost paid by the min-cost solution (flow-weighted penalties).
    pub penalty_paid: f64,
    /// Number of links the translated solution upgrades.
    pub upgrades_used: usize,
    /// Whether the equivalence holds (values equal within tolerance).
    pub holds: bool,
}

fn max_flow_value(wan: &WanTopology, src: NodeId, dst: NodeId) -> f64 {
    let problem = rwc_te::problem::TeProblem::from_wan(wan, &DemandMatrix::new());
    rwc_flow::max_flow(&problem.net, src.0, dst.0).value
}

/// Runs the theorem for one source–sink pair.
pub fn check_single_commodity(
    wan: &WanTopology,
    config: &AugmentConfig,
    src: NodeId,
    dst: NodeId,
) -> TheoremReport {
    assert!(src != dst, "source and sink must differ");

    // Left side: min-cost max-flow on G′.
    let mut dm = DemandMatrix::new();
    dm.add(src, dst, Gbps(f64::MAX / 4.0), Priority::Elastic);
    // Build G′ without the demand (augment ignores demands for structure).
    let aug = augment(wan, &DemandMatrix::new(), config, &[]);
    let mcmf = rwc_flow::min_cost_max_flow(&aug.problem.net, src.0, dst.0);
    let te_solution = TeSolution {
        routed: vec![mcmf.flow.value],
        edge_flows: mcmf.flow.edge_flows.clone(),
        total: mcmf.flow.value,
    };
    let translation =
        translate(&aug, wan, &te_solution).expect("theorem translation on solver output");

    // Right side: max-flow on G with every feasible upgrade applied.
    let mut upgraded = wan.clone();
    for (id, link) in wan.links() {
        if let Some(&fastest) = config.table.upgrades(link.snr, link.modulation).last() {
            upgraded.set_modulation(id, fastest);
        }
    }
    let upgraded_value = max_flow_value(&upgraded, src, dst);
    let static_value = max_flow_value(wan, src, dst);

    // Verify the translated flow is feasible on the *translated-upgrade*
    // topology (not just the fully upgraded one).
    let mut translated_wan = wan.clone();
    for &(id, m) in &translation.upgrades {
        translated_wan.set_modulation(id, m);
    }
    for (id, link) in translated_wan.links() {
        let fwd = translation.real_edge_flows[2 * id.0];
        let bwd = translation.real_edge_flows[2 * id.0 + 1];
        assert!(
            fwd <= link.capacity().value() + 1e-6 && bwd <= link.capacity().value() + 1e-6,
            "translated flow infeasible on link {id:?}"
        );
    }

    TheoremReport {
        augmented_value: mcmf.flow.value,
        upgraded_value,
        static_value,
        penalty_paid: translation.penalty_paid,
        upgrades_used: translation.upgrades.len(),
        holds: (mcmf.flow.value - upgraded_value).abs() < 1e-6,
    }
}

/// Multicommodity corollary of Theorem 1: maximum *total* throughput on
/// the augmented graph (computed by the exact LP TE) equals the optimum on
/// the fully upgraded topology, for any demand set.
#[derive(Debug, Clone, PartialEq)]
pub struct McTheoremReport {
    /// Optimal total throughput on G′ (exact LP on the augmented problem).
    pub augmented_total: f64,
    /// Optimal total on G with every feasible upgrade applied.
    pub upgraded_total: f64,
    /// Optimal total on the unmodified topology (context).
    pub static_total: f64,
    /// Whether the equivalence holds.
    pub holds: bool,
}

/// Runs the multicommodity variant with the exact LP solver on both sides.
pub fn check_multicommodity(
    wan: &WanTopology,
    config: &AugmentConfig,
    demands: &DemandMatrix,
) -> McTheoremReport {
    use rwc_te::TeAlgorithm;
    let exact = rwc_te::TeSolver::builder().build().expect("default TE solver");

    let aug = augment(wan, demands, config, &[]);
    let augmented = exact.solve(&aug.problem);
    // Translation must stay feasible (exercises the full pipeline).
    let tr = translate(&aug, wan, &augmented).expect("theorem translation on solver output");
    let mut translated_wan = wan.clone();
    for &(id, m) in &tr.upgrades {
        translated_wan.set_modulation(id, m);
    }
    for (id, link) in translated_wan.links() {
        let cap = link.capacity().value() + 1e-6;
        assert!(tr.real_edge_flows[2 * id.0] <= cap, "infeasible translation");
        assert!(tr.real_edge_flows[2 * id.0 + 1] <= cap, "infeasible translation");
    }

    let mut upgraded = wan.clone();
    for (id, link) in wan.links() {
        if let Some(&fastest) = config.table.upgrades(link.snr, link.modulation).last() {
            upgraded.set_modulation(id, fastest);
        }
    }
    let upgraded_total =
        exact.solve(&rwc_te::problem::TeProblem::from_wan(&upgraded, demands)).total;
    let static_total =
        exact.solve(&rwc_te::problem::TeProblem::from_wan(wan, demands)).total;
    McTheoremReport {
        augmented_total: augmented.total,
        upgraded_total,
        static_total,
        holds: (augmented.total - upgraded_total).abs() < 1e-4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::penalty::PenaltyPolicy;
    use rwc_topology::builders;
    use rwc_topology::random::{waxman, WaxmanConfig};
    use rwc_util::rng::Xoshiro256;
    use rwc_util::units::Db;

    fn config() -> AugmentConfig {
        AugmentConfig { penalty: PenaltyPolicy::Uniform(10.0), ..AugmentConfig::default() }
    }

    #[test]
    fn holds_on_fig7() {
        let mut wan = builders::fig7_example();
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0));
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let report = check_single_commodity(&wan, &config(), a, b);
        assert!(report.holds, "{report:?}");
        // The A–B cut gains 100 G from the (A,B) upgrade.
        assert!(report.augmented_value > report.static_value);
    }

    #[test]
    fn holds_on_abilene() {
        let wan = builders::abilene(); // SNR from link budgets
        let sea = wan.node_by_name("SEA").unwrap();
        let nyc = wan.node_by_name("NYC").unwrap();
        let report = check_single_commodity(&wan, &config(), sea, nyc);
        assert!(report.holds, "{report:?}");
        assert!(report.upgraded_value >= report.static_value);
    }

    #[test]
    fn holds_on_random_wans() {
        // Randomised check across Waxman graphs, SNR assignments and
        // endpoint pairs.
        let mut rng = Xoshiro256::seed_from_u64(99);
        for seed in 0..8u64 {
            let mut wan = waxman(&WaxmanConfig { seed, n_nodes: 8, ..WaxmanConfig::default() });
            // Randomise SNR so upgrade structure varies.
            for (id, _) in wan.clone().links() {
                wan.set_snr(id, Db(rng.uniform_in(6.6, 14.5)));
            }
            let src = NodeId(rng.below(wan.n_nodes()));
            let mut dst = NodeId(rng.below(wan.n_nodes()));
            if dst == src {
                dst = NodeId((src.0 + 1) % wan.n_nodes());
            }
            let report = check_single_commodity(&wan, &config(), src, dst);
            assert!(report.holds, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn penalty_free_when_no_upgrade_needed() {
        // If static max-flow already equals upgraded max-flow, min-cost
        // max-flow must avoid every fake edge.
        let mut wan = builders::ring(4, 300.0);
        // Only one link upgradable; the ring's min cut for opposite nodes
        // is two links, so upgrading one link cannot raise the cut (the
        // other cut link stays at 100).
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        let report =
            check_single_commodity(&wan, &config(), NodeId(0), NodeId(2));
        assert!(report.holds, "{report:?}");
        if (report.upgraded_value - report.static_value).abs() < 1e-9 {
            assert_eq!(report.penalty_paid, 0.0, "{report:?}");
            assert_eq!(report.upgrades_used, 0);
        }
    }

    #[test]
    fn multi_step_ladder_also_holds() {
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(12.0)); // 175 G feasible everywhere
        }
        let cfg = AugmentConfig { multi_step: true, ..config() };
        let a = wan.node_by_name("A").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let report = check_single_commodity(&wan, &cfg, a, d);
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn multicommodity_variant_holds_on_fig7() {
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5));
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0));
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = rwc_te::demand::DemandMatrix::new();
        dm.add(a, b, rwc_util::units::Gbps(125.0), rwc_te::demand::Priority::Elastic);
        dm.add(c, d, rwc_util::units::Gbps(125.0), rwc_te::demand::Priority::Elastic);
        let report = check_multicommodity(&wan, &config(), &dm);
        assert!(report.holds, "{report:?}");
        assert!((report.augmented_total - 250.0).abs() < 1e-4);
        assert!(report.static_total < 250.0 - 1.0, "static cannot serve both");
    }

    #[test]
    fn multicommodity_variant_holds_on_random_wans() {
        let mut rng = Xoshiro256::seed_from_u64(0xA11);
        for seed in 0..4u64 {
            let mut wan =
                waxman(&WaxmanConfig { seed, n_nodes: 6, ..WaxmanConfig::default() });
            for (id, _) in wan.clone().links() {
                wan.set_snr(id, Db(rng.uniform_in(6.6, 14.5)));
            }
            let dm = rwc_te::demand::DemandMatrix::gravity(
                &wan,
                rwc_util::units::Gbps(rng.uniform_in(100.0, 600.0)),
                seed,
            );
            // Thin to the 6 largest demands to keep the LP small.
            let mut top: Vec<_> = dm.demands().to_vec();
            top.sort_by(|x, y| f64::total_cmp(&y.volume.value(), &x.volume.value()));
            let mut thin = rwc_te::demand::DemandMatrix::new();
            for d in top.into_iter().take(6) {
                thin.add(d.from, d.to, d.volume * 3.0, d.priority);
            }
            let report = check_multicommodity(&wan, &config(), &thin);
            assert!(report.holds, "seed {seed}: {report:?}");
            assert!(report.augmented_total + 1e-6 >= report.static_total);
        }
    }

    #[test]
    fn lp_cross_validation() {
        // The min-cost max-flow value on G′ must match the LP max-flow on
        // the fully upgraded topology computed by rwc-lp.
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5)); // only link 0 gets upgrade headroom
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0));
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let report = check_single_commodity(&wan, &config(), a, b);
        let mut upgraded = wan.clone();
        upgraded.set_modulation(
            rwc_topology::wan::LinkId(0),
            rwc_optics::Modulation::Dp16Qam200,
        );
        let edges: Vec<(usize, usize, f64)> = upgraded
            .links()
            .flat_map(|(_, l)| {
                let c = l.capacity().value();
                [(l.a.0, l.b.0, c), (l.b.0, l.a.0, c)]
            })
            .collect();
        let lp_value =
            rwc_lp::flows::max_flow_lp_value(upgraded.n_nodes(), &edges, a.0, b.0);
        assert!((report.augmented_value - lp_value).abs() < 1e-6,
            "mcmf {} vs lp {lp_value}", report.augmented_value);
    }
}
