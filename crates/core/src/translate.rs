//! Step 3 of the Theorem 1 construction: translating TE output.
//!
//! The TE algorithm returns flow over the augmented graph, oblivious to
//! which edges are fake. Translation folds each fake edge's flow back onto
//! its physical link and reads off:
//!
//! - **(a)** which link capacities must change — the smallest rung whose
//!   capacity covers the folded per-direction flow;
//! - **(b)** the flow paths of the demands on the *real* topology.

use crate::augment::AugmentedProblem;
use crate::error::RwcError;
use rwc_optics::Modulation;
use rwc_te::problem::{EdgeOrigin, TeSolution};
use rwc_te::TeError;
use rwc_topology::wan::LinkId;

const EPS: f64 = 1e-9;

/// Result of translating an augmented-graph TE solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Links to reconfigure, with their target rungs.
    pub upgrades: Vec<(LinkId, Modulation)>,
    /// Flow per *real* edge (fake flow folded in), parallel to the first
    /// `n_real_edges` of the augmented problem.
    pub real_edge_flows: Vec<f64>,
    /// Routed volume per commodity (unchanged by translation).
    pub routed: Vec<f64>,
    /// Total penalty the solver paid on fake edges (flow-weighted, as the
    /// min-cost objective sees it).
    pub penalty_paid: f64,
    /// Penalty charged only on flow *above* each link's current capacity —
    /// the true upgrade cost. Differs from `penalty_paid` when a
    /// cost-oblivious TE algorithm routes gratuitously over fake parallels
    /// that the real edge could have carried.
    pub effective_penalty: f64,
}

impl Translation {
    /// Whether any reconfiguration is required.
    pub fn requires_changes(&self) -> bool {
        !self.upgrades.is_empty()
    }

    /// The upgrade target for a link, if any.
    pub fn upgrade_of(&self, link: LinkId) -> Option<Modulation> {
        self.upgrades.iter().find(|(l, _)| *l == link).map(|&(_, m)| m)
    }
}

/// Translates a TE solution on the augmented problem back to the physical
/// network.
///
/// Fails with [`RwcError::Te`] when the solution does not fit the
/// augmented problem (wrong edge count) or when the folded flow on some
/// link exceeds the fastest modulation rung — both indicate corrupt
/// solver output, not a routable condition, and must not crash a serving
/// daemon.
pub fn translate(
    aug: &AugmentedProblem,
    wan: &rwc_topology::wan::WanTopology,
    solution: &TeSolution,
) -> Result<Translation, RwcError> {
    if solution.edge_flows.len() != aug.problem.net.n_edges() {
        return Err(RwcError::Te(TeError::SolverAbort {
            algorithm: "translate",
            detail: format!(
                "solution carries {} edge flows but the augmented problem has {} edges",
                solution.edge_flows.len(),
                aug.problem.net.n_edges()
            ),
        }));
    }
    let mut real_edge_flows: Vec<f64> = solution.edge_flows[..aug.n_real_edges].to_vec();
    let mut penalty_paid = 0.0;

    // Fold fake flow onto the real directed edges. Real edges from
    // TeProblem::from_wan are laid out as (2·link + forward?0:1).
    for fake in &aug.fake_edges {
        let flow = solution.edge_flows[fake.edge_index];
        if flow <= EPS {
            continue;
        }
        let real_index = 2 * fake.link.0 + usize::from(!fake.forward);
        real_edge_flows[real_index] += flow;
        penalty_paid += flow * fake.penalty;
    }

    // Upgrade decision per link: smallest rung covering the folded flow of
    // the busier direction (never below the current rung). The effective
    // penalty charges each link's cheapest fake steps for the overflow
    // only.
    let mut upgrades = Vec::new();
    let mut effective_penalty = 0.0;
    for (id, link) in wan.links() {
        let fwd = real_edge_flows[2 * id.0];
        let bwd = real_edge_flows[2 * id.0 + 1];
        let needed = fwd.max(bwd);
        let mut overflow = needed - link.capacity().value();
        if overflow > EPS {
            // Charge the link's fake steps (ascending capacity) for the
            // overflow.
            let mut steps: Vec<&crate::augment::FakeEdge> = aug
                .fake_edges
                .iter()
                .filter(|f| f.link == id && f.forward)
                .collect();
            steps.sort_by(|a, b| f64::total_cmp(&a.target.capacity().value(), &b.target.capacity().value()));
            for step in steps {
                if overflow <= EPS {
                    break;
                }
                let used = overflow.min(step.extra_capacity);
                effective_penalty += used * step.penalty;
                overflow -= used;
            }
        }
        if needed <= link.capacity().value() + EPS {
            continue;
        }
        // Only links that had fake edges can exceed their capacity, and
        // fake-edge capacities are bounded by the ladder — more flow than
        // the fastest rung means the solver violated an edge capacity.
        let Some(target) = Modulation::LADDER.iter().copied().find(|m| {
            m.capacity().value() + EPS >= needed && m.capacity() > link.capacity()
        }) else {
            return Err(RwcError::Te(TeError::SolverAbort {
                algorithm: "translate",
                detail: format!(
                    "link {} folded flow {needed:.3} Gbps exceeds the fastest rung",
                    id.0
                ),
            }));
        };
        upgrades.push((id, target));
    }

    // Suppress origins warning: origins carry the same information and are
    // used by debug assertions below.
    debug_assert!(aug
        .problem
        .origins
        .iter()
        .take(aug.n_real_edges)
        .all(|o| matches!(o, EdgeOrigin::Real { .. })));

    Ok(Translation {
        upgrades,
        real_edge_flows,
        routed: solution.routed.clone(),
        penalty_paid,
        effective_penalty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{augment, AugmentConfig};
    use crate::penalty::PenaltyPolicy;
    use rwc_te::demand::{DemandMatrix, Priority};
    use rwc_te::problem::TeSolution;
    use rwc_topology::builders;
    use rwc_util::units::{Db, Gbps};

    /// The paper's Fig. 7 walk-through: demands A→B and C→D grow from 100
    /// to 125 G; links (A,B) and (C,D) can double; penalty 100 per unit.
    fn fig7_setup() -> (rwc_topology::wan::WanTopology, DemandMatrix, AugmentConfig) {
        let mut wan = builders::fig7_example();
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(7.5)); // healthy at 100 G, no headroom
        }
        wan.set_snr(rwc_topology::wan::LinkId(0), Db(13.0)); // A–B
        wan.set_snr(rwc_topology::wan::LinkId(1), Db(13.0)); // C–D
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::paper_example(),
            ..AugmentConfig::default()
        };
        (wan, dm, cfg)
    }

    #[test]
    fn fig7_upgrades_exactly_one_link() {
        let (wan, dm, cfg) = fig7_setup();
        let aug = augment(&wan, &dm, &cfg, &[]);
        // Solve with the exact LP (min penalties are encoded as costs...
        // the LP maximises throughput; use SWAN-style then check): for the
        // equivalence-grade check we use min-cost max-flow per commodity
        // pair via the exact TE + penalties. Here: route with the LP on
        // the augmented problem, then translate.
        use rwc_te::TeAlgorithm;
        let sol = rwc_te::TeSolver::builder().build().unwrap().solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).unwrap();
        // All 250 G must route.
        assert!((sol.total - 250.0).abs() < 1e-6, "total={}", sol.total);
        // Penalty-minimising TE upgrades exactly ONE of the two upgradable
        // links (the other demand detours through the spare capacity) —
        // exact LP may pick either; both are valid per the paper.
        // NOTE: the max-throughput LP treats costs only as a tie-break, so it may upgrade
        // both; the penalty-aware check uses min-cost flow in theorem.rs.
        // Here we verify the translation mechanics: upgrades cover flows.
        for (id, link) in wan.links() {
            let fwd = tr.real_edge_flows[2 * id.0];
            let bwd = tr.real_edge_flows[2 * id.0 + 1];
            let cap = tr
                .upgrade_of(id)
                .map(|m| m.capacity().value())
                .unwrap_or(link.capacity().value());
            assert!(fwd <= cap + 1e-6 && bwd <= cap + 1e-6, "link {id:?}");
        }
    }

    #[test]
    fn no_fake_flow_means_no_upgrades() {
        let (wan, _, cfg) = fig7_setup();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(60.0), Priority::Elastic); // fits in 100 G
        let aug = augment(&wan, &dm, &cfg, &[]);
        use rwc_te::TeAlgorithm;
        let sol = rwc_te::swan::SwanTe::default().solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).unwrap();
        assert!(!tr.requires_changes(), "upgrades={:?}", tr.upgrades);
        // A cost-oblivious solver may have sprinkled flow on fake edges
        // (raw penalty_paid ≥ 0), but nothing exceeded real capacity, so
        // the effective upgrade cost is zero.
        assert_eq!(tr.effective_penalty, 0.0);
    }

    #[test]
    fn folded_flows_preserve_totals() {
        let (wan, dm, cfg) = fig7_setup();
        let aug = augment(&wan, &dm, &cfg, &[]);
        use rwc_te::TeAlgorithm;
        let sol = rwc_te::TeSolver::builder().build().unwrap().solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).unwrap();
        let aug_total: f64 = sol.edge_flows.iter().sum();
        let real_total: f64 = tr.real_edge_flows.iter().sum();
        assert!((aug_total - real_total).abs() < 1e-6);
        assert_eq!(tr.routed, sol.routed);
    }

    #[test]
    fn smallest_sufficient_rung_chosen() {
        let (wan, _, cfg) = fig7_setup();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        // 130 G across the A–B cut... the direct link can take 125 G with
        // an upgrade to Hybrid125; force single-path pressure by demanding
        // only slightly more than 100.
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        let aug = augment(&wan, &dm, &cfg, &[]);
        // Hand-craft a solution: 100 on real direct edge, 20 on the fake
        // direct edge.
        let fake = aug
            .fake_edges
            .iter()
            .find(|f| f.link.0 == 0 && f.forward)
            .unwrap();
        let mut flows = vec![0.0; aug.problem.net.n_edges()];
        flows[0] = 100.0;
        flows[fake.edge_index] = 20.0;
        let sol = TeSolution { routed: vec![120.0], edge_flows: flows, total: 120.0 };
        let tr = translate(&aug, &wan, &sol).unwrap();
        assert_eq!(
            tr.upgrade_of(rwc_topology::wan::LinkId(0)),
            Some(rwc_optics::Modulation::Hybrid125),
            "120 G needs only the 125 G rung, not 200"
        );
        assert!((tr.penalty_paid - 20.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_accounting_sums_directions() {
        let (wan, _, cfg) = fig7_setup();
        let dm = DemandMatrix::new();
        let aug = augment(&wan, &dm, &cfg, &[]);
        let fwd = aug.fake_edges.iter().find(|f| f.link.0 == 1 && f.forward).unwrap();
        let bwd = aug.fake_edges.iter().find(|f| f.link.0 == 1 && !f.forward).unwrap();
        let mut flows = vec![0.0; aug.problem.net.n_edges()];
        flows[fwd.edge_index] = 10.0;
        flows[bwd.edge_index] = 5.0;
        let sol = TeSolution { routed: vec![], edge_flows: flows, total: 0.0 };
        let tr = translate(&aug, &wan, &sol).unwrap();
        assert!((tr.penalty_paid - 1_500.0).abs() < 1e-9);
    }
}
