//! Ticket-corpus analysis: the paper's Fig. 4.
//!
//! Three views of the same corpus:
//!
//! - **duration share** per root cause (Fig. 4a): which causes cost the
//!   most outage time;
//! - **event share** per root cause (Fig. 4b): which causes fire most
//!   often;
//! - **SNR-floor distribution** (Fig. 4c): how far links actually fell
//!   during failures, which bounds how much capacity a dynamic link could
//!   have salvaged.

use crate::rootcause::RootCause;
use crate::ticket::FailureTicket;
use rwc_util::stats::{percentage_shares, Ecdf};
use rwc_util::units::Db;
use std::sync::OnceLock;

/// Aggregated corpus statistics.
#[derive(Debug, Clone)]
pub struct TicketAnalysis {
    /// Per-cause event counts, parallel to [`RootCause::ALL`].
    pub event_counts: [usize; 4],
    /// Per-cause total outage hours, parallel to [`RootCause::ALL`].
    pub outage_hours: [f64; 4],
    /// All SNR floors, dB.
    floors: Vec<f64>,
    /// Lazily built floor ECDF (the corpus is immutable after `new`).
    floor_ecdf: OnceLock<Ecdf>,
    total_events: usize,
}

impl TicketAnalysis {
    /// Analyses a corpus. Panics on an empty corpus.
    pub fn new(tickets: &[FailureTicket]) -> Self {
        assert!(!tickets.is_empty(), "empty ticket corpus");
        let mut event_counts = [0usize; 4];
        let mut outage_hours = [0f64; 4];
        let mut floors = Vec::with_capacity(tickets.len());
        for t in tickets {
            let idx = RootCause::ALL.iter().position(|&c| c == t.root_cause).unwrap();
            event_counts[idx] += 1;
            outage_hours[idx] += t.duration.as_hours_f64();
            floors.push(t.lowest_snr.value());
        }
        Self {
            event_counts,
            outage_hours,
            floors,
            floor_ecdf: OnceLock::new(),
            total_events: tickets.len(),
        }
    }

    /// Fig. 4b: percentage of events per cause, parallel to
    /// [`RootCause::ALL`].
    pub fn event_shares_percent(&self) -> Vec<f64> {
        percentage_shares(&self.event_counts.map(|c| c as f64))
    }

    /// Fig. 4a: percentage of total outage duration per cause.
    pub fn duration_shares_percent(&self) -> Vec<f64> {
        percentage_shares(&self.outage_hours)
    }

    /// Fig. 4c: ECDF of the lowest SNR during failure events. Built once
    /// on first call and cached (the corpus never changes after `new`).
    pub fn floor_ecdf(&self) -> &Ecdf {
        self.floor_ecdf.get_or_init(|| Ecdf::new(self.floors.clone()))
    }

    /// Share of events (0..1) whose floor stayed at or above `floor` — the
    /// fraction of failures a dynamic link could have survived at the
    /// capacity feasible at `floor`.
    pub fn fraction_floor_at_least(&self, floor: Db) -> f64 {
        self.floors.iter().filter(|&&f| f >= floor.value()).count() as f64
            / self.total_events as f64
    }

    /// Share of events (0..1) *not* caused by fiber cuts — the paper's
    /// ">90% of failure events present an opportunity".
    pub fn fraction_non_fiber_cut(&self) -> f64 {
        let cut_idx = RootCause::ALL.iter().position(|&c| c == RootCause::FiberCut).unwrap();
        1.0 - self.event_counts[cut_idx] as f64 / self.total_events as f64
    }

    /// Total events analysed.
    pub fn total_events(&self) -> usize {
        self.total_events
    }

    /// Total outage hours across all causes.
    pub fn total_outage_hours(&self) -> f64 {
        self.outage_hours.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TicketConfig, TicketGenerator};
    use rwc_util::time::{SimDuration, SimTime};

    fn ticket(cause: RootCause, hours: u64, snr: f64) -> FailureTicket {
        FailureTicket {
            id: 0,
            root_cause: cause,
            link_id: 0,
            start: SimTime::EPOCH,
            duration: SimDuration::from_hours(hours),
            lowest_snr: Db(snr),
        }
    }

    #[test]
    fn shares_on_handmade_corpus() {
        let corpus = vec![
            ticket(RootCause::MaintenanceCoincident, 2, 4.0),
            ticket(RootCause::FiberCut, 10, 0.2),
            ticket(RootCause::HardwareFailure, 5, 1.0),
            ticket(RootCause::HardwareFailure, 3, 3.5),
        ];
        let a = TicketAnalysis::new(&corpus);
        assert_eq!(a.event_counts, [1, 1, 2, 0]);
        let ev = a.event_shares_percent();
        assert!((ev[2] - 50.0).abs() < 1e-9);
        let dur = a.duration_shares_percent();
        assert!((dur[1] - 50.0).abs() < 1e-9, "fiber cut 10 of 20 hours");
        assert!((a.fraction_non_fiber_cut() - 0.75).abs() < 1e-12);
        assert!((a.fraction_floor_at_least(Db(3.0)) - 0.5).abs() < 1e-12);
        assert_eq!(a.total_events(), 4);
        assert!((a.total_outage_hours() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn paper_corpus_matches_fig4() {
        let tickets = TicketGenerator::new(TicketConfig {
            n_events: 20_000,
            ..TicketConfig::paper()
        })
        .generate();
        let a = TicketAnalysis::new(&tickets);
        let ev = a.event_shares_percent();
        // Fig. 4b: maintenance ~25%, fiber cuts ~5%.
        assert!((ev[0] - 25.0).abs() < 2.0, "maintenance events {ev:?}");
        assert!((ev[1] - 5.0).abs() < 1.0, "fiber-cut events {ev:?}");
        let dur = a.duration_shares_percent();
        // Fig. 4a: maintenance ~20% of outage time, fiber cuts ~10%.
        assert!((dur[0] - 20.0).abs() < 4.0, "maintenance duration {dur:?}");
        assert!((dur[1] - 10.0).abs() < 3.0, "fiber-cut duration {dur:?}");
        // Fiber cuts cost more duration-share than event-share.
        assert!(dur[1] > ev[1]);
        // >90% of events are not fiber cuts.
        assert!(a.fraction_non_fiber_cut() > 0.90);
        // ~25% of events could run at 50 G.
        let frac = a.fraction_floor_at_least(Db(3.0));
        assert!((0.20..0.40).contains(&frac), "frac={frac}");
    }

    #[test]
    fn floor_ecdf_support() {
        let tickets = TicketGenerator::new(TicketConfig {
            n_events: 2_000,
            ..TicketConfig::paper()
        })
        .generate();
        let analysis = TicketAnalysis::new(&tickets);
        let ecdf = analysis.floor_ecdf();
        // Fig. 4c's x-axis spans 0..6.5 dB.
        assert!(ecdf.min() >= 0.0);
        assert!(ecdf.max() < 6.5);
        // A visible mass of hard-down events near the floor.
        assert!(ecdf.cdf(0.5) > 0.2);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        TicketAnalysis::new(&[]);
    }
}
