//! Availability with and without dynamic capacity links.
//!
//! §2.2's conclusion: a binary up/down link turns *every* ticket into an
//! outage, but a dynamic-capacity link survives any event whose SNR floor
//! still clears some rung of the ladder, taking a capacity "flap" instead
//! of a failure. This module replays a ticket corpus under both policies
//! and reports the difference.

use crate::ticket::FailureTicket;
use rwc_optics::ModulationTable;
use rwc_util::time::SimDuration;
use rwc_util::units::Gbps;
use serde::{Deserialize, Serialize};

/// Outcome of replaying a corpus under binary vs dynamic link policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Events analysed.
    pub total_events: usize,
    /// Events that remain hard outages even with dynamic capacity (SNR
    /// floor below the slowest rung).
    pub hard_outages: usize,
    /// Events converted from outage to a degraded-capacity flap.
    pub converted_to_flaps: usize,
    /// Outage time under the binary policy.
    pub binary_outage: SimDuration,
    /// Outage time under the dynamic policy (only hard outages count).
    pub dynamic_outage: SimDuration,
    /// Capacity-weighted delivered fraction during events under the dynamic
    /// policy: 1.0 would mean no capacity was lost at all. Uses the rate
    /// feasible at each event's floor, relative to the 100 G static rate.
    pub delivered_fraction_during_events: f64,
}

impl AvailabilityReport {
    /// Replays a corpus against a modulation table.
    ///
    /// `static_rate` is the fleet's fixed rate (the paper's 100 Gbps); a
    /// flap delivers `feasible_capacity(floor)` of it for the event's
    /// duration.
    pub fn replay(
        tickets: &[FailureTicket],
        table: &ModulationTable,
        static_rate: Gbps,
    ) -> Self {
        assert!(!tickets.is_empty(), "empty ticket corpus");
        assert!(static_rate > Gbps::ZERO);
        let mut hard = 0usize;
        let mut flaps = 0usize;
        let mut binary = SimDuration::ZERO;
        let mut dynamic = SimDuration::ZERO;
        let mut delivered_x_hours = 0.0;
        let mut total_hours = 0.0;
        for t in tickets {
            binary += t.duration;
            total_hours += t.duration.as_hours_f64();
            let salvage = table.feasible_capacity(t.lowest_snr).min(static_rate);
            if salvage > Gbps::ZERO {
                flaps += 1;
                delivered_x_hours += (salvage / static_rate) * t.duration.as_hours_f64();
            } else {
                hard += 1;
                dynamic += t.duration;
            }
        }
        Self {
            total_events: tickets.len(),
            hard_outages: hard,
            converted_to_flaps: flaps,
            binary_outage: binary,
            dynamic_outage: dynamic,
            delivered_fraction_during_events: delivered_x_hours / total_hours,
        }
    }

    /// Fraction of failure events avoided (turned into flaps), 0..1.
    pub fn events_avoided_fraction(&self) -> f64 {
        self.converted_to_flaps as f64 / self.total_events as f64
    }

    /// Fraction of outage *time* avoided, 0..1.
    pub fn outage_time_avoided_fraction(&self) -> f64 {
        1.0 - self.dynamic_outage.as_secs_f64() / self.binary_outage.as_secs_f64()
    }

    /// Availability over a window under the binary policy, as a fraction
    /// (e.g. 0.999). Assumes events are serialised on one link-population
    /// of the given size.
    pub fn binary_availability(&self, window: SimDuration, n_links: usize) -> f64 {
        availability(self.binary_outage, window, n_links)
    }

    /// Availability over a window under the dynamic policy.
    pub fn dynamic_availability(&self, window: SimDuration, n_links: usize) -> f64 {
        availability(self.dynamic_outage, window, n_links)
    }
}

fn availability(outage: SimDuration, window: SimDuration, n_links: usize) -> f64 {
    assert!(n_links > 0 && window > SimDuration::ZERO);
    let total = window.as_secs_f64() * n_links as f64;
    1.0 - outage.as_secs_f64() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TicketConfig, TicketGenerator};
    use crate::rootcause::RootCause;
    use rwc_util::time::SimTime;
    use rwc_util::units::Db;

    fn ticket(snr: f64, hours: u64) -> FailureTicket {
        FailureTicket {
            id: 0,
            root_cause: RootCause::HardwareFailure,
            link_id: 0,
            start: SimTime::EPOCH,
            duration: SimDuration::from_hours(hours),
            lowest_snr: Db(snr),
        }
    }

    #[test]
    fn conversion_logic() {
        let table = ModulationTable::paper_default();
        // floors: 4.0 dB → 50 G flap; 0.2 dB → hard outage.
        let corpus = vec![ticket(4.0, 10), ticket(0.2, 5)];
        let r = AvailabilityReport::replay(&corpus, &table, Gbps(100.0));
        assert_eq!(r.converted_to_flaps, 1);
        assert_eq!(r.hard_outages, 1);
        assert_eq!(r.binary_outage, SimDuration::from_hours(15));
        assert_eq!(r.dynamic_outage, SimDuration::from_hours(5));
        assert!((r.events_avoided_fraction() - 0.5).abs() < 1e-12);
        assert!((r.outage_time_avoided_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // Delivered: 50/100 for 10 h out of 15 h of events = 1/3.
        assert!((r.delivered_fraction_during_events - 10.0 * 0.5 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn salvage_capped_at_static_rate() {
        // A floor of 12.6 dB would allow 200 G, but the link only ever
        // carried 100 G: delivered fraction must cap at 1.
        let table = ModulationTable::paper_default();
        let corpus = vec![ticket(6.4, 4)];
        let r = AvailabilityReport::replay(&corpus, &table, Gbps(100.0));
        assert!(r.delivered_fraction_during_events <= 1.0);
        assert_eq!(r.converted_to_flaps, 1);
    }

    #[test]
    fn paper_corpus_quarter_avoided() {
        let tickets =
            TicketGenerator::new(TicketConfig { n_events: 20_000, ..TicketConfig::paper() })
                .generate();
        let table = ModulationTable::paper_default();
        let r = AvailabilityReport::replay(&tickets, &table, Gbps(100.0));
        // Events with floor >= 3 dB flap at 50 G: the paper's ~25%.
        let avoided = r.events_avoided_fraction();
        assert!((0.20..0.40).contains(&avoided), "avoided={avoided}");
        assert!(r.outage_time_avoided_fraction() > 0.1);
        assert!(r.dynamic_outage < r.binary_outage);
    }

    #[test]
    fn availability_nines() {
        let table = ModulationTable::paper_default();
        // 9 hours with a 4 dB floor: binary policy goes dark, dynamic
        // policy flaps to 50 G and never counts as an outage.
        let corpus = vec![ticket(4.0, 9)];
        let r = AvailabilityReport::replay(&corpus, &table, Gbps(100.0));
        // One link over ~1 year: 9h/8760h ≈ 0.1% unavailability.
        let window = SimDuration::from_days(365);
        let a = r.binary_availability(window, 1);
        assert!((a - (1.0 - 9.0 / 8760.0)).abs() < 1e-9);
        assert_eq!(r.dynamic_availability(window, 1), 1.0);
    }
}
