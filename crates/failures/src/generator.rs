//! Synthetic ticket-corpus generation.
//!
//! Replaces the paper's seven months of operator tickets (250 events) with
//! a corpus drawn from the calibrated
//! [`crate::rootcause::RootCauseMix`]: root causes by weighted
//! frequency, lognormal outage durations with cause-specific medians, and a
//! cause-specific SNR-floor mixture (severed/dead paths read the noise
//! floor; degraded paths keep several dB of signal).

use crate::rootcause::{RootCause, RootCauseMix};
use crate::ticket::FailureTicket;
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// Configuration for a ticket corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TicketConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of unplanned events (the paper analysed 250).
    pub n_events: usize,
    /// Reporting window (the paper's was seven months).
    pub window: SimDuration,
    /// Number of links events are attributed to.
    pub n_links: usize,
    /// Statistical mix of causes/durations/floors.
    pub mix: RootCauseMix,
}

impl TicketConfig {
    /// The paper's corpus shape: 250 events over 7 months across a
    /// 2,000-link fleet.
    pub fn paper() -> Self {
        Self {
            seed: 0xF41,
            n_events: 250,
            window: SimDuration::from_days(213),
            n_links: 2_000,
            mix: RootCauseMix::paper(),
        }
    }
}

/// Deterministic ticket-corpus generator.
#[derive(Debug, Clone)]
pub struct TicketGenerator {
    config: TicketConfig,
}

impl TicketGenerator {
    /// Validates and wraps a configuration.
    pub fn new(config: TicketConfig) -> Self {
        assert!(config.n_events > 0, "empty corpus");
        assert!(config.n_links > 0, "no links to fail");
        assert!(config.window > SimDuration::ZERO, "empty window");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TicketConfig {
        &self.config
    }

    /// Generates the full corpus, ordered by onset time.
    pub fn generate(&self) -> Vec<FailureTicket> {
        let cfg = &self.config;
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut tickets: Vec<FailureTicket> = (0..cfg.n_events)
            .map(|i| self.one(i as u32, &mut rng))
            .collect();
        tickets.sort_by_key(|t| t.start);
        for (i, t) in tickets.iter_mut().enumerate() {
            t.id = i as u32; // renumber in filing order
        }
        tickets
    }

    fn one(&self, id: u32, rng: &mut Xoshiro256) -> FailureTicket {
        let cfg = &self.config;
        let mix = &cfg.mix;
        let cause = RootCause::ALL[rng.weighted_index(&mix.event_weights)];
        let start = SimTime::EPOCH
            + SimDuration::from_millis(rng.next_u64() % cfg.window.as_millis());
        let duration = SimDuration::from_hours_f64(
            rng.lognormal_median(mix.median_hours(cause), mix.duration_sigma),
        );
        let lowest_snr = if rng.chance(mix.lol_prob(cause)) {
            // Dark path: receiver reads its noise floor.
            Db(rng.uniform_in(0.05, 0.5))
        } else {
            // Degraded but alive: somewhere below the 100 G threshold
            // (otherwise no ticket would have been filed) but above the
            // floor. Biased low: partial failures still hurt badly.
            let u = rng.uniform();
            Db(0.5 + (6.4 - 0.5) * u.powf(0.85))
        };
        FailureTicket {
            id,
            root_cause: cause,
            link_id: rng.below(cfg.n_links),
            start,
            duration,
            lowest_snr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(seed: u64, n: usize) -> Vec<FailureTicket> {
        let mut cfg = TicketConfig::paper();
        cfg.seed = seed;
        cfg.n_events = n;
        TicketGenerator::new(cfg).generate()
    }

    #[test]
    fn corpus_size_and_order() {
        let tickets = corpus(1, 250);
        assert_eq!(tickets.len(), 250);
        assert!(tickets.windows(2).all(|w| w[0].start <= w[1].start));
        // Renumbered in filing order.
        assert!(tickets.iter().enumerate().all(|(i, t)| t.id == i as u32));
    }

    #[test]
    fn deterministic() {
        assert_eq!(corpus(7, 100), corpus(7, 100));
        assert_ne!(corpus(7, 100), corpus(8, 100));
    }

    #[test]
    fn cause_mix_close_to_paper() {
        let tickets = corpus(2, 10_000);
        let share = |c: RootCause| {
            tickets.iter().filter(|t| t.root_cause == c).count() as f64 / tickets.len() as f64
        };
        assert!((share(RootCause::MaintenanceCoincident) - 0.25).abs() < 0.02);
        assert!((share(RootCause::FiberCut) - 0.05).abs() < 0.01);
        assert!((share(RootCause::HardwareFailure) - 0.40).abs() < 0.02);
        assert!((share(RootCause::Undocumented) - 0.30).abs() < 0.02);
    }

    #[test]
    fn fiber_cuts_read_noise_floor() {
        let tickets = corpus(3, 5_000);
        for t in tickets.iter().filter(|t| t.root_cause == RootCause::FiberCut) {
            assert!(t.lowest_snr.value() < 0.5 + 1e-9, "cut with live signal: {t:?}");
        }
    }

    #[test]
    fn maintenance_events_keep_signal() {
        let tickets = corpus(4, 5_000);
        for t in tickets
            .iter()
            .filter(|t| t.root_cause == RootCause::MaintenanceCoincident)
        {
            assert!(t.lowest_snr.value() >= 0.5, "maintenance went dark: {t:?}");
        }
    }

    #[test]
    fn floors_below_100g_threshold() {
        // Every ticket is a *failure* at the 100 G rate, so no floor may
        // reach the 6.5 dB threshold.
        for t in corpus(5, 5_000) {
            assert!(t.lowest_snr.value() < 6.5, "{t:?}");
        }
    }

    #[test]
    fn opportunity_fraction_near_quarter() {
        // The paper: "the lowest SNR in failure events is above 3.0 dB
        // nearly 25% of the time".
        let tickets = corpus(6, 20_000);
        let frac = tickets
            .iter()
            .filter(|t| t.signal_survived(Db(3.0)))
            .count() as f64
            / tickets.len() as f64;
        assert!((0.20..0.40).contains(&frac), "frac={frac}");
    }

    #[test]
    fn durations_last_hours() {
        // Fig. 3b/4a: failures last several hours on average.
        let tickets = corpus(7, 5_000);
        let mean_h = tickets
            .iter()
            .map(|t| t.duration.as_hours_f64())
            .sum::<f64>()
            / tickets.len() as f64;
        assert!((3.0..15.0).contains(&mean_h), "mean={mean_h}h");
    }

    #[test]
    fn starts_within_window() {
        let cfg = TicketConfig::paper();
        for t in corpus(8, 1_000) {
            assert!(t.start.since_epoch() < cfg.window);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty_corpus() {
        TicketGenerator::new(TicketConfig { n_events: 0, ..TicketConfig::paper() });
    }
}
