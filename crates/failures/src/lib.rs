//! # rwc-failures
//!
//! Failure-ticket substrate for the *Run, Walk, Crawl* reproduction.
//!
//! The paper manually analyses seven months of unplanned failure tickets
//! (250 events) filed by WAN field operators, categorising root causes and
//! measuring each event's SNR floor. That ticket system is proprietary, so
//! this crate generates a synthetic corpus with the paper's reported
//! root-cause mix — and the analyses that turn a corpus into the paper's
//! Fig. 4a (outage-duration share by cause), Fig. 4b (event share by
//! cause), Fig. 4c (CDF of the lowest SNR during failures) and the §2.2
//! availability argument (≥25% of failures could have been 50 Gbps flaps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod availability;
pub mod generator;
pub mod reliability;
pub mod rootcause;
pub mod ticket;

pub use analysis::TicketAnalysis;
pub use availability::AvailabilityReport;
pub use generator::{TicketConfig, TicketGenerator};
pub use rootcause::RootCause;
pub use ticket::FailureTicket;
