//! Reliability metrics from ticket corpora: MTBF, MTTR, availability.
//!
//! The operator-facing summary of §2.2: how often links fail (mean time
//! between failures), how long repairs take (mean time to repair), and the
//! steady-state availability `MTBF / (MTBF + MTTR)` — computed for the
//! binary policy and for the dynamic policy where flap-able events don't
//! count as failures at all.

use crate::ticket::FailureTicket;
use rwc_optics::ModulationTable;
use rwc_util::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Classic reliability summary of a link population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reliability {
    /// Mean time between failures (per link).
    pub mtbf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
    /// Steady-state availability `MTBF / (MTBF + MTTR)`.
    pub availability: f64,
    /// Failures counted.
    pub failures: usize,
}

/// Computes reliability for a population of `n_links` observed over
/// `window`, counting every ticket as a failure (the binary policy).
pub fn binary_reliability(
    tickets: &[FailureTicket],
    window: SimDuration,
    n_links: usize,
) -> Reliability {
    let outages: Vec<&FailureTicket> = tickets.iter().collect();
    reliability_of(&outages, window, n_links)
}

/// Computes reliability under the dynamic policy: events whose SNR floor
/// still supports some rung become flaps, not failures.
pub fn dynamic_reliability(
    tickets: &[FailureTicket],
    table: &ModulationTable,
    window: SimDuration,
    n_links: usize,
) -> Reliability {
    let outages: Vec<&FailureTicket> = tickets
        .iter()
        .filter(|t| table.feasible(t.lowest_snr).is_none())
        .collect();
    reliability_of(&outages, window, n_links)
}

fn reliability_of(
    outages: &[&FailureTicket],
    window: SimDuration,
    n_links: usize,
) -> Reliability {
    assert!(n_links > 0, "no links");
    assert!(window > SimDuration::ZERO, "empty window");
    let total_link_time = window.as_hours_f64() * n_links as f64;
    let total_repair: f64 = outages.iter().map(|t| t.duration.as_hours_f64()).sum();
    let failures = outages.len();
    if failures == 0 {
        return Reliability {
            mtbf: window * n_links as u64,
            mttr: SimDuration::ZERO,
            availability: 1.0,
            failures: 0,
        };
    }
    let uptime = (total_link_time - total_repair).max(0.0);
    let mtbf_h = uptime / failures as f64;
    let mttr_h = total_repair / failures as f64;
    Reliability {
        mtbf: SimDuration::from_hours_f64(mtbf_h),
        mttr: SimDuration::from_hours_f64(mttr_h),
        availability: mtbf_h / (mtbf_h + mttr_h),
        failures,
    }
}

/// Converts an availability fraction into "nines" (0.999 → 3.0).
pub fn nines(availability: f64) -> f64 {
    assert!((0.0..=1.0).contains(&availability), "availability out of [0,1]");
    if availability >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - availability).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TicketConfig, TicketGenerator};
    use crate::rootcause::RootCause;
    use rwc_util::time::SimTime;
    use rwc_util::units::Db;

    fn ticket(hours: u64, snr: f64) -> FailureTicket {
        FailureTicket {
            id: 0,
            root_cause: RootCause::HardwareFailure,
            link_id: 0,
            start: SimTime::EPOCH,
            duration: SimDuration::from_hours(hours),
            lowest_snr: Db(snr),
        }
    }

    #[test]
    fn hand_computed_mtbf_mttr() {
        // 1 link, 100 h window, two 10 h outages: uptime 80 h.
        let tickets = vec![ticket(10, 0.1), ticket(10, 0.2)];
        let r = binary_reliability(&tickets, SimDuration::from_hours(100), 1);
        assert_eq!(r.failures, 2);
        assert!((r.mtbf.as_hours_f64() - 40.0).abs() < 1e-9);
        assert!((r.mttr.as_hours_f64() - 10.0).abs() < 1e-9);
        assert!((r.availability - 0.8).abs() < 1e-9);
    }

    #[test]
    fn dynamic_discounts_flapable_events() {
        let table = ModulationTable::paper_default();
        // One hard outage (0.1 dB) and one flap-able event (4 dB).
        let tickets = vec![ticket(10, 0.1), ticket(10, 4.0)];
        let window = SimDuration::from_hours(100);
        let binary = binary_reliability(&tickets, window, 1);
        let dynamic = dynamic_reliability(&tickets, &table, window, 1);
        assert_eq!(binary.failures, 2);
        assert_eq!(dynamic.failures, 1);
        assert!(dynamic.availability > binary.availability);
        assert!(dynamic.mtbf > binary.mtbf);
    }

    #[test]
    fn no_failures_is_perfect() {
        let r = binary_reliability(&[], SimDuration::from_days(30), 10);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.failures, 0);
        assert_eq!(nines(r.availability), f64::INFINITY);
    }

    #[test]
    fn nines_scale() {
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert!((nines(0.99999) - 5.0).abs() < 1e-9);
        assert!((nines(0.5) - 0.301).abs() < 1e-3);
    }

    #[test]
    fn paper_corpus_gains_fraction_of_a_nine() {
        let cfg = TicketConfig::paper();
        let tickets = TicketGenerator::new(cfg.clone()).generate();
        let table = ModulationTable::paper_default();
        let binary = binary_reliability(&tickets, cfg.window, cfg.n_links);
        let dynamic = dynamic_reliability(&tickets, &table, cfg.window, cfg.n_links);
        assert!(binary.availability > 0.999, "fleet-wide: {}", binary.availability);
        assert!(
            nines(dynamic.availability) > nines(binary.availability),
            "dynamic {} vs binary {}",
            dynamic.availability,
            binary.availability
        );
        // A visible fraction of events is discounted.
        assert!(dynamic.failures < binary.failures * 9 / 10);
    }
}
