//! Root-cause taxonomy of unplanned WAN failures.
//!
//! The paper identifies three documented categories — unplanned events
//! during scheduled maintenance (mostly human error), fiber cuts, and
//! optical hardware failures — plus a residual of undocumented events that
//! "were not instances of fiber cuts". Its headline: fiber cuts are only
//! ~5% of events (~10% of outage time); over 90% of failure events leave a
//! usable (degraded) signal.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a link failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RootCause {
    /// Unplanned impairment while scheduled maintenance was underway
    /// (human error during line-card swaps, mis-patches, …).
    MaintenanceCoincident,
    /// An accidental break of the fiber itself.
    FiberCut,
    /// Failure of optical hardware: amplifiers, transponders, optical
    /// cross-connects, power.
    HardwareFailure,
    /// Technicians did not log the exact action taken — but the paper
    /// verified these were not fiber cuts.
    Undocumented,
}

impl RootCause {
    /// All categories in presentation order (matches Fig. 4's bars).
    pub const ALL: [RootCause; 4] = [
        RootCause::MaintenanceCoincident,
        RootCause::FiberCut,
        RootCause::HardwareFailure,
        RootCause::Undocumented,
    ];

    /// Whether the failure physically severs the light path (only fiber
    /// cuts do; everything else degrades the signal).
    pub fn severs_light(self) -> bool {
        matches!(self, RootCause::FiberCut)
    }
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootCause::MaintenanceCoincident => "maintenance-coincident",
            RootCause::FiberCut => "fiber-cut",
            RootCause::HardwareFailure => "hardware-failure",
            RootCause::Undocumented => "undocumented",
        };
        f.write_str(s)
    }
}

/// The statistical mix of a ticket corpus: per-cause event weights, outage
/// duration medians and SNR-floor behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootCauseMix {
    /// Relative event frequency per cause (need not be normalised),
    /// indexed parallel to [`RootCause::ALL`].
    pub event_weights: [f64; 4],
    /// Median outage duration per cause, hours.
    pub duration_median_hours: [f64; 4],
    /// Log-space sigma of the (lognormal) outage durations.
    pub duration_sigma: f64,
    /// Probability that a failure of each cause takes the SNR all the way
    /// to the noise floor (vs leaving a degraded but live signal).
    pub loss_of_light_prob: [f64; 4],
}

impl RootCauseMix {
    /// Calibrated to the paper's Fig. 4: events ≈ 25/5/40/30 %,
    /// durations ≈ 20/10/45/25 % (fiber cuts are rare but long), and an
    /// SNR-floor mixture giving ~25–30% of events a floor ≥ 3 dB.
    pub fn paper() -> Self {
        Self {
            event_weights: [25.0, 5.0, 40.0, 30.0],
            duration_median_hours: [4.0, 10.0, 5.6, 4.2],
            duration_sigma: 0.9,
            loss_of_light_prob: [0.0, 1.0, 0.60, 0.40],
        }
    }

    /// Index of a cause in the parallel arrays.
    pub fn index(cause: RootCause) -> usize {
        RootCause::ALL.iter().position(|&c| c == cause).unwrap()
    }

    /// Event weight of one cause.
    pub fn weight(&self, cause: RootCause) -> f64 {
        self.event_weights[Self::index(cause)]
    }

    /// Median outage duration of one cause, hours.
    pub fn median_hours(&self, cause: RootCause) -> f64 {
        self.duration_median_hours[Self::index(cause)]
    }

    /// Probability the cause extinguishes the light entirely.
    pub fn lol_prob(&self, cause: RootCause) -> f64 {
        self.loss_of_light_prob[Self::index(cause)]
    }
}

impl Default for RootCauseMix {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_categories_in_order() {
        assert_eq!(RootCause::ALL.len(), 4);
        assert_eq!(RootCause::ALL[1], RootCause::FiberCut);
    }

    #[test]
    fn only_fiber_cuts_sever() {
        for c in RootCause::ALL {
            assert_eq!(c.severs_light(), c == RootCause::FiberCut);
        }
    }

    #[test]
    fn paper_mix_event_shares() {
        let mix = RootCauseMix::paper();
        let total: f64 = mix.event_weights.iter().sum();
        // Fiber cuts ~5% of events; non-fiber-cut > 90%.
        assert!((mix.weight(RootCause::FiberCut) / total - 0.05).abs() < 1e-12);
        let non_cut = 1.0 - mix.weight(RootCause::FiberCut) / total;
        assert!(non_cut > 0.90);
    }

    #[test]
    fn fiber_cuts_are_long_but_rare() {
        let mix = RootCauseMix::paper();
        // Longest median duration despite lowest frequency.
        for c in RootCause::ALL {
            if c != RootCause::FiberCut {
                assert!(mix.median_hours(RootCause::FiberCut) > mix.median_hours(c));
                assert!(mix.weight(RootCause::FiberCut) < mix.weight(c));
            }
        }
    }

    #[test]
    fn fiber_cuts_always_lose_light() {
        let mix = RootCauseMix::paper();
        assert_eq!(mix.lol_prob(RootCause::FiberCut), 1.0);
        assert_eq!(mix.lol_prob(RootCause::MaintenanceCoincident), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RootCause::FiberCut.to_string(), "fiber-cut");
        assert_eq!(RootCause::Undocumented.to_string(), "undocumented");
    }
}
