//! The failure ticket record.

use crate::rootcause::RootCause;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// One unplanned failure event, as a field operator would file it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTicket {
    /// Ticket number.
    pub id: u32,
    /// Diagnosed root cause.
    pub root_cause: RootCause,
    /// Which link failed (fleet link id).
    pub link_id: usize,
    /// Onset of the outage.
    pub start: SimTime,
    /// Outage duration (until the link was restored at full rate).
    pub duration: SimDuration,
    /// The lowest SNR the link's receiver reported during the event — the
    /// paper's Fig. 4c metric. Near the noise floor (≲0.5 dB) for severed
    /// or dead paths; several dB for degraded-but-alive signals.
    pub lowest_snr: Db,
}

impl FailureTicket {
    /// End of the outage.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Whether the signal stayed alive (degraded) rather than going dark.
    ///
    /// The paper's opportunity analysis: an event whose floor clears the
    /// 50 Gbps threshold (3.0 dB) could have been a capacity flap instead
    /// of an outage.
    pub fn signal_survived(&self, floor: Db) -> bool {
        self.lowest_snr >= floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(snr: f64) -> FailureTicket {
        FailureTicket {
            id: 1,
            root_cause: RootCause::HardwareFailure,
            link_id: 42,
            start: SimTime::EPOCH + SimDuration::from_hours(10),
            duration: SimDuration::from_hours(5),
            lowest_snr: Db(snr),
        }
    }

    #[test]
    fn end_time() {
        let t = ticket(4.0);
        assert_eq!(t.end(), SimTime::EPOCH + SimDuration::from_hours(15));
    }

    #[test]
    fn survival_threshold() {
        assert!(ticket(4.0).signal_survived(Db(3.0)));
        assert!(ticket(3.0).signal_survived(Db(3.0)));
        assert!(!ticket(0.2).signal_survived(Db(3.0)));
    }

    #[test]
    fn serde_round_trip() {
        let t = ticket(2.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: FailureTicket = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
