//! # rwc-faults
//!
//! Deterministic, seeded fault injection for the *Run, Walk, Crawl*
//! reproduction.
//!
//! The paper's argument — flap capacity instead of failing links — only
//! matters because real optical WANs misbehave: transceivers fail to
//! relock, management buses time out, telemetry goes stale, TE solvers
//! blow their deadline. This crate describes those misbehaviours as a
//! declarative [`FaultPlan`] (*what* fails, *when*, for *how long*) that
//! the simulation pipeline interprets:
//!
//! - **BVT faults** ([`BvtFault`], re-exported from `rwc-optics`) are
//!   armed on the per-link transceiver model and trip the next
//!   reconfiguration or MDIO transaction;
//! - **telemetry faults** ([`TelemetryFault`]) drop, freeze or corrupt
//!   the SNR samples the controller sees;
//! - **TE faults** ([`TeFault`]) abort or time out a traffic-engineering
//!   round, exercising the last-feasible-solution fallback.
//!
//! Everything is reproducible: plans are plain data (serde-serialisable)
//! and the random generator ([`FaultPlanConfig::generate`]) derives every
//! event from a single seed, so the same plan + scenario seed produces a
//! byte-identical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rwc_optics::bvt::BvtFault;

use rwc_topology::wan::LinkId;
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// A telemetry-path fault on one link's SNR stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TelemetryFault {
    /// Samples are lost: the controller receives no reading.
    DropSamples,
    /// The stream freezes: the controller keeps receiving the value that
    /// was current when the fault started.
    FreezeReadings,
    /// Readings are corrupted by an additive spike (dB, either sign).
    SnrSpike {
        /// Offset added to every delivered reading while active.
        delta_db: f64,
    },
}

/// A traffic-engineering-layer fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TeFault {
    /// The solver exceeds its deadline; the round produces no solution.
    SolverTimeout,
    /// The solver aborts (crash, numerical failure) mid-round.
    SolverAbort,
}

/// What fails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Transceiver-level fault on one link.
    Bvt(BvtFault),
    /// Telemetry-path fault on one link.
    Telemetry(TelemetryFault),
    /// TE-layer fault (fleet-wide, no link).
    Te(TeFault),
}

/// One scheduled fault: what, where, when, for how long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The fault.
    pub kind: FaultKind,
    /// Affected link. Ignored (use `LinkId(0)`) for [`FaultKind::Te`],
    /// which is fleet-wide.
    pub link: LinkId,
    /// When the fault becomes active.
    pub start: SimTime,
    /// How long it stays active. BVT faults are *armed* for this window:
    /// any reconfiguration or MDIO transaction started inside it trips.
    pub duration: SimDuration,
}

impl FaultEvent {
    /// Whether the fault is active at `now` (half-open `[start, end)`).
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.start + self.duration
    }
}

/// A declarative fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// All scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    pub fn none() -> Self {
        Self::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one event (builder style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Count of events of each class `(bvt, telemetry, te)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for e in &self.events {
            match e.kind {
                FaultKind::Bvt(_) => counts.0 += 1,
                FaultKind::Telemetry(_) => counts.1 += 1,
                FaultKind::Te(_) => counts.2 += 1,
            }
        }
        counts
    }
}

/// Answers "which faults are active right now?" against a [`FaultPlan`].
///
/// Purely a time-indexed view; it holds no mutable state, so querying is
/// idempotent and never perturbs determinism.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// All events active at `now`.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = &FaultEvent> {
        self.plan.events.iter().filter(move |e| e.active_at(now))
    }

    /// The BVT fault armed on `link` at `now`, if any (first match wins;
    /// overlapping BVT faults on one link are not meaningful).
    pub fn bvt_fault(&self, link: LinkId, now: SimTime) -> Option<BvtFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Bvt(f) if e.link == link => Some(f),
            _ => None,
        })
    }

    /// The telemetry fault affecting `link` at `now`, if any.
    pub fn telemetry_fault(&self, link: LinkId, now: SimTime) -> Option<TelemetryFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Telemetry(f) if e.link == link => Some(f),
            _ => None,
        })
    }

    /// The TE fault in force at `now`, if any.
    pub fn te_fault(&self, now: SimTime) -> Option<TeFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Te(f) => Some(f),
            _ => None,
        })
    }

    /// Applies the active telemetry fault (if any) to a raw reading.
    ///
    /// `frozen` is the value delivered when the stream froze (the caller
    /// tracks it; this crate is stateless). Returns the reading the
    /// controller should see: `None` means the sample was lost.
    pub fn observe(
        &self,
        link: LinkId,
        raw: Db,
        frozen: Option<Db>,
        now: SimTime,
    ) -> Option<Db> {
        match self.telemetry_fault(link, now) {
            None => Some(raw),
            Some(TelemetryFault::DropSamples) => None,
            Some(TelemetryFault::FreezeReadings) => Some(frozen.unwrap_or(raw)),
            Some(TelemetryFault::SnrSpike { delta_db }) => Some(Db(raw.value() + delta_db)),
        }
    }
}

/// Tuning for the random plan generator. Rates are Poisson-ish: each
/// class draws `rate_per_link_day × links × days` events (TE faults are
/// fleet-wide: `rate × days`), with exponential-ish durations around the
/// configured means. Everything derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Links in the fleet.
    pub n_links: usize,
    /// Schedule horizon.
    pub horizon: SimDuration,
    /// BVT faults per link-day.
    pub bvt_rate_per_link_day: f64,
    /// Telemetry faults per link-day.
    pub telemetry_rate_per_link_day: f64,
    /// TE faults per day (fleet-wide).
    pub te_rate_per_day: f64,
    /// Mean armed window of a BVT fault.
    pub bvt_mean_duration: SimDuration,
    /// Mean duration of a telemetry fault.
    pub telemetry_mean_duration: SimDuration,
    /// Mean duration of a TE fault.
    pub te_mean_duration: SimDuration,
    /// Master seed; the whole plan is a pure function of the config.
    pub seed: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            n_links: 1,
            horizon: SimDuration::from_days(7),
            bvt_rate_per_link_day: 0.5,
            telemetry_rate_per_link_day: 0.5,
            te_rate_per_day: 0.5,
            bvt_mean_duration: SimDuration::from_hours(2),
            telemetry_mean_duration: SimDuration::from_hours(1),
            te_mean_duration: SimDuration::from_minutes(30),
            seed: 0xFA_017,
        }
    }
}

impl FaultPlanConfig {
    /// Generates the plan. Deterministic: same config → same plan.
    pub fn generate(&self) -> FaultPlan {
        assert!(self.n_links > 0, "fault plan needs at least one link");
        let days = self.horizon.as_secs_f64() / 86_400.0;
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut events = Vec::new();

        let n_bvt = (self.bvt_rate_per_link_day * self.n_links as f64 * days).round() as usize;
        for _ in 0..n_bvt {
            let kind = match rng.next_u64() % 4 {
                0 => BvtFault::RelockFailure,
                1 => BvtFault::StuckLaser,
                2 => BvtFault::MdioTimeout,
                _ => BvtFault::CorruptRegister,
            };
            events.push(self.event(FaultKind::Bvt(kind), self.bvt_mean_duration, &mut rng));
        }

        let n_tel =
            (self.telemetry_rate_per_link_day * self.n_links as f64 * days).round() as usize;
        for _ in 0..n_tel {
            let kind = match rng.next_u64() % 3 {
                0 => TelemetryFault::DropSamples,
                1 => TelemetryFault::FreezeReadings,
                // Spikes in ±(3..15) dB — big enough to bait a bad
                // modulation decision if taken at face value.
                _ => {
                    let magnitude = 3.0 + 12.0 * rng.uniform();
                    let sign = if rng.next_u64().is_multiple_of(2) { 1.0 } else { -1.0 };
                    TelemetryFault::SnrSpike { delta_db: sign * magnitude }
                }
            };
            events.push(self.event(
                FaultKind::Telemetry(kind),
                self.telemetry_mean_duration,
                &mut rng,
            ));
        }

        let n_te = (self.te_rate_per_day * days).round() as usize;
        for _ in 0..n_te {
            let kind = if rng.next_u64().is_multiple_of(2) {
                TeFault::SolverTimeout
            } else {
                TeFault::SolverAbort
            };
            events.push(self.event(FaultKind::Te(kind), self.te_mean_duration, &mut rng));
        }

        FaultPlan { events }
    }

    fn event(
        &self,
        kind: FaultKind,
        mean_duration: SimDuration,
        rng: &mut Xoshiro256,
    ) -> FaultEvent {
        let link = LinkId(rng.below(self.n_links));
        let start_secs = self.horizon.as_secs_f64() * rng.uniform();
        // Exponential durations, clamped to keep a fault from outliving
        // the horizon by much.
        let u = rng.uniform().max(1e-12);
        let dur_secs =
            (-u.ln() * mean_duration.as_secs_f64()).min(self.horizon.as_secs_f64() / 2.0);
        FaultEvent {
            kind,
            link,
            start: SimTime::EPOCH + SimDuration::from_secs_f64(start_secs),
            duration: SimDuration::from_secs_f64(dur_secs.max(1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultPlanConfig {
        FaultPlanConfig { n_links: 8, seed: 42, ..FaultPlanConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cfg().generate();
        let b = cfg().generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = cfg().generate();
        let b = FaultPlanConfig { seed: 43, ..cfg() }.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn rates_scale_event_counts() {
        let sparse = FaultPlanConfig {
            bvt_rate_per_link_day: 0.1,
            telemetry_rate_per_link_day: 0.1,
            te_rate_per_day: 0.1,
            ..cfg()
        }
        .generate();
        let dense = FaultPlanConfig {
            bvt_rate_per_link_day: 2.0,
            telemetry_rate_per_link_day: 2.0,
            te_rate_per_day: 2.0,
            ..cfg()
        }
        .generate();
        assert!(dense.len() > sparse.len() * 4, "{} vs {}", dense.len(), sparse.len());
        let (bvt, tel, te) = dense.class_counts();
        assert!(bvt > 0 && tel > 0 && te > 0);
    }

    #[test]
    fn events_stay_inside_horizon() {
        let plan = cfg().generate();
        let horizon = cfg().horizon;
        for e in &plan.events {
            assert!(e.start < SimTime::EPOCH + horizon);
            assert!(e.link.0 < 8);
            assert!(e.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn injector_windows_are_half_open() {
        let event = FaultEvent {
            kind: FaultKind::Te(TeFault::SolverTimeout),
            link: LinkId(0),
            start: SimTime::EPOCH + SimDuration::from_hours(1),
            duration: SimDuration::from_hours(1),
        };
        let inj = FaultInjector::new(FaultPlan::none().with(event));
        let h = SimDuration::from_hours(1);
        assert_eq!(inj.te_fault(SimTime::EPOCH), None);
        assert_eq!(inj.te_fault(SimTime::EPOCH + h), Some(TeFault::SolverTimeout));
        assert_eq!(inj.te_fault(SimTime::EPOCH + h + h), None, "end is exclusive");
    }

    #[test]
    fn observe_applies_telemetry_faults() {
        let t0 = SimTime::EPOCH;
        let day = SimDuration::from_days(1);
        let plan = FaultPlan::none()
            .with(FaultEvent {
                kind: FaultKind::Telemetry(TelemetryFault::DropSamples),
                link: LinkId(0),
                start: t0,
                duration: day,
            })
            .with(FaultEvent {
                kind: FaultKind::Telemetry(TelemetryFault::FreezeReadings),
                link: LinkId(1),
                start: t0,
                duration: day,
            })
            .with(FaultEvent {
                kind: FaultKind::Telemetry(TelemetryFault::SnrSpike { delta_db: 10.0 }),
                link: LinkId(2),
                start: t0,
                duration: day,
            });
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.observe(LinkId(0), Db(12.0), None, t0), None);
        assert_eq!(inj.observe(LinkId(1), Db(12.0), Some(Db(9.0)), t0), Some(Db(9.0)));
        assert_eq!(inj.observe(LinkId(2), Db(12.0), None, t0), Some(Db(22.0)));
        // Unaffected link passes through.
        assert_eq!(inj.observe(LinkId(3), Db(12.0), None, t0), Some(Db(12.0)));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = cfg().generate();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
