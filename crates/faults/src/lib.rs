//! # rwc-faults
//!
//! Deterministic, seeded fault injection for the *Run, Walk, Crawl*
//! reproduction.
//!
//! The paper's argument — flap capacity instead of failing links — only
//! matters because real optical WANs misbehave: transceivers fail to
//! relock, management buses time out, telemetry goes stale, TE solvers
//! blow their deadline. This crate describes those misbehaviours as a
//! declarative [`FaultPlan`] (*what* fails, *where*, *when*, for *how
//! long*) that the simulation pipeline interprets:
//!
//! - **BVT faults** ([`BvtFault`], re-exported from `rwc-optics`) are
//!   armed on the per-link transceiver model and trip the next
//!   reconfiguration or MDIO transaction;
//! - **telemetry faults** ([`TelemetryFault`]) drop, freeze or corrupt
//!   the SNR samples the controller sees;
//! - **TE faults** ([`TeFault`]) abort or time out a traffic-engineering
//!   round, exercising the last-feasible-solution fallback;
//! - **optical faults** ([`OpticalFault`]) model amplifier and fiber-span
//!   incidents that drag the *physical* SNR down — usually for every
//!   wavelength riding the affected segment at once.
//!
//! ## Fault domains
//!
//! The paper's failure data (and the robust-design literature it cites)
//! says the dangerous events are *shared*: one amplifier failure dims
//! every wavelength on its span together. Each event therefore carries a
//! [`FaultScope`]:
//!
//! - [`FaultScope::Link`] — one wavelength (the PR-1 behaviour);
//! - [`FaultScope::Srlg`] — every link sharing a fiber segment, matching
//!   the shared-risk groups `rwc_te::srlg` derives from the topology;
//! - [`FaultScope::Domain`] — an arbitrary named set of links declared in
//!   [`FaultPlan::domains`] (e.g. "everything through conduit 7").
//!
//! Severities inside a correlated event are drawn *correlated*: the event
//! stores one common shock and every covered link sees that shock plus a
//! small deterministic per-link deviation (see
//! [`FaultInjector::optical_penalty_db`]).
//!
//! Everything is reproducible: plans are plain data (serde-serialisable)
//! and the random generator ([`FaultPlanConfig::generate`]) derives every
//! event from a single seed, so the same plan + scenario seed produces a
//! byte-identical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rwc_optics::bvt::BvtFault;

use rwc_topology::wan::LinkId;
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A telemetry-path fault on one link's SNR stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TelemetryFault {
    /// Samples are lost: the controller receives no reading.
    DropSamples,
    /// The stream freezes: the controller keeps receiving the value that
    /// was current when the fault started.
    FreezeReadings,
    /// Readings are corrupted by an additive spike (dB, either sign).
    SnrSpike {
        /// Offset added to every delivered reading while active.
        delta_db: f64,
    },
}

/// A traffic-engineering-layer fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TeFault {
    /// The solver exceeds its deadline; the round produces no solution.
    SolverTimeout,
    /// The solver aborts (crash, numerical failure) mid-round.
    SolverAbort,
}

/// An optical-layer incident: the *physical* SNR of every covered link
/// drops by the severity for the duration of the window. Unlike a
/// [`TelemetryFault::SnrSpike`] — which only lies to the controller —
/// an optical fault changes what the light can actually carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpticalFault {
    /// An inline amplifier on the span fails or brown-outs: a deep,
    /// shared SNR collapse (typically enough to force links to crawl or
    /// go dark).
    AmplifierOutage {
        /// Common SNR penalty (dB) applied to every covered link.
        severity_db: f64,
    },
    /// Span ageing, a macro-bend or a dirty splice: a milder correlated
    /// penalty that degrades but rarely kills.
    SpanDegradation {
        /// Common SNR penalty (dB) applied to every covered link.
        severity_db: f64,
    },
}

impl OpticalFault {
    /// The common (shared-shock) severity of the incident, in dB.
    pub fn severity_db(&self) -> f64 {
        match *self {
            OpticalFault::AmplifierOutage { severity_db }
            | OpticalFault::SpanDegradation { severity_db } => severity_db,
        }
    }
}

/// What fails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Transceiver-level fault.
    Bvt(BvtFault),
    /// Telemetry-path fault.
    Telemetry(TelemetryFault),
    /// TE-layer fault (fleet-wide, scope ignored).
    Te(TeFault),
    /// Optical-layer fault (amplifier/span incident, physical SNR drop).
    Optical(OpticalFault),
}

/// *Where* a fault lands: one link, a shared-risk fiber segment, or a
/// declared multi-link domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// A single wavelength/IP link.
    Link(LinkId),
    /// Every link whose `fiber_id` matches — the SRLG of one fiber
    /// segment (see `rwc_te::srlg::shared_risk_groups`).
    Srlg(usize),
    /// Every link of the domain at this index in [`FaultPlan::domains`].
    Domain(usize),
}

impl FaultScope {
    /// Whether the scope couples multiple links into one failure domain.
    pub fn is_correlated(&self) -> bool {
        !matches!(self, FaultScope::Link(_))
    }
}

/// A named set of links that fail together (a conduit, a degenerate
/// amplifier chain, a site's patch panel, …). Referenced by index from
/// [`FaultScope::Domain`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultDomain {
    /// Human-readable label used in reports.
    pub name: String,
    /// Member links.
    pub links: Vec<LinkId>,
}

/// One scheduled fault: what, where, when, for how long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The fault.
    pub kind: FaultKind,
    /// Where it lands. Ignored for [`FaultKind::Te`], which is
    /// fleet-wide.
    pub scope: FaultScope,
    /// When the fault becomes active.
    pub start: SimTime,
    /// How long it stays active. BVT faults are *armed* for this window:
    /// any reconfiguration or MDIO transaction started inside it trips.
    pub duration: SimDuration,
}

impl FaultEvent {
    /// A single-link event.
    pub fn on_link(kind: FaultKind, link: LinkId, start: SimTime, duration: SimDuration) -> Self {
        Self { kind, scope: FaultScope::Link(link), start, duration }
    }

    /// An SRLG-wide event hitting every link on `fiber_id`.
    pub fn on_srlg(kind: FaultKind, fiber_id: usize, start: SimTime, duration: SimDuration) -> Self {
        Self { kind, scope: FaultScope::Srlg(fiber_id), start, duration }
    }

    /// A domain-wide event hitting every link of `FaultPlan::domains[domain]`.
    pub fn on_domain(kind: FaultKind, domain: usize, start: SimTime, duration: SimDuration) -> Self {
        Self { kind, scope: FaultScope::Domain(domain), start, duration }
    }

    /// Whether the fault is active at `now` (half-open `[start, end)`).
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.start + self.duration
    }

    /// First instant *after* the window.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An event's window is empty (`end <= start`, i.e. zero duration).
    EmptyWindow {
        /// Index of the offending event in [`FaultPlan::events`].
        index: usize,
    },
    /// An event references a domain index that [`FaultPlan::domains`]
    /// does not define.
    UnknownDomain {
        /// Index of the offending event in [`FaultPlan::events`].
        index: usize,
        /// The dangling domain index.
        domain: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::EmptyWindow { index } => {
                write!(f, "fault event #{index} has an empty window (end <= start)")
            }
            FaultPlanError::UnknownDomain { index, domain } => {
                write!(f, "fault event #{index} references undefined domain #{domain}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Outcome of a successful [`FaultPlan::validate`]: the plan is usable,
/// but some schedules deserve a second look.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlanCheck {
    /// Human-readable warnings (e.g. overlapping same-link windows of the
    /// same fault class, whose semantics are first-match-wins).
    pub warnings: Vec<String>,
}

/// A declarative fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// All scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Named multi-link failure domains referenced by
    /// [`FaultScope::Domain`].
    pub domains: Vec<FaultDomain>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    pub fn none() -> Self {
        Self::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one event (builder style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Declares a failure domain, returning its index for use in
    /// [`FaultScope::Domain`].
    pub fn add_domain(&mut self, domain: FaultDomain) -> usize {
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Count of events of each class `(bvt, telemetry, te, optical)`.
    pub fn class_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for e in &self.events {
            match e.kind {
                FaultKind::Bvt(_) => counts.0 += 1,
                FaultKind::Telemetry(_) => counts.1 += 1,
                FaultKind::Te(_) => counts.2 += 1,
                FaultKind::Optical(_) => counts.3 += 1,
            }
        }
        counts
    }

    /// Number of events whose scope couples multiple links.
    pub fn correlated_count(&self) -> usize {
        self.events.iter().filter(|e| e.scope.is_correlated()).count()
    }

    /// Structural validation: rejects events that can never fire (empty
    /// windows, dangling domain references) and warns — via the returned
    /// [`FaultPlanCheck`] — about overlapping same-scope windows of the
    /// same fault class, whose first-match-wins semantics are usually a
    /// schedule mistake rather than an intent.
    pub fn validate(&self) -> Result<FaultPlanCheck, FaultPlanError> {
        for (index, e) in self.events.iter().enumerate() {
            if e.duration == SimDuration::ZERO {
                return Err(FaultPlanError::EmptyWindow { index });
            }
            if let FaultScope::Domain(d) = e.scope {
                if d >= self.domains.len() {
                    return Err(FaultPlanError::UnknownDomain { index, domain: d });
                }
            }
        }
        let mut check = FaultPlanCheck::default();
        let class = |k: &FaultKind| match k {
            FaultKind::Bvt(_) => 0u8,
            FaultKind::Telemetry(_) => 1,
            FaultKind::Te(_) => 2,
            FaultKind::Optical(_) => 3,
        };
        for (i, a) in self.events.iter().enumerate() {
            for (j, b) in self.events.iter().enumerate().skip(i + 1) {
                if a.scope == b.scope
                    && class(&a.kind) == class(&b.kind)
                    && a.start < b.end()
                    && b.start < a.end()
                {
                    check.warnings.push(format!(
                        "events #{i} and #{j} overlap on {:?} with the same fault class \
                         (first match wins while both are active)",
                        a.scope
                    ));
                }
            }
        }
        Ok(check)
    }
}

/// Answers "which faults are active right now?" against a [`FaultPlan`].
///
/// Purely a time-indexed view; it holds no mutable state, so querying is
/// idempotent and never perturbs determinism. Resolving an
/// [`FaultScope::Srlg`] scope needs the topology's link → fiber map: pass
/// it through [`FaultInjector::with_fibers`]. Without one, the injector
/// falls back to the `WanTopology` default of one fiber per link
/// (`fiber_id == link index`).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// `fibers[link] = fiber_id`; `None` means the identity default.
    fibers: Option<Vec<usize>>,
}

impl FaultInjector {
    /// Wraps a plan with the default one-fiber-per-link mapping.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, fibers: None }
    }

    /// Wraps a plan with an explicit link → fiber-segment map, so
    /// [`FaultScope::Srlg`] events resolve against the real topology.
    pub fn with_fibers(plan: FaultPlan, fibers: Vec<usize>) -> Self {
        Self { plan, fibers: Some(fibers) }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// All events active at `now`.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = &FaultEvent> {
        self.plan.events.iter().filter(move |e| e.active_at(now))
    }

    fn fiber_of(&self, link: LinkId) -> usize {
        match &self.fibers {
            Some(f) => f.get(link.0).copied().unwrap_or(link.0),
            None => link.0,
        }
    }

    /// Whether an event's scope covers `link`.
    pub fn covers(&self, event: &FaultEvent, link: LinkId) -> bool {
        match event.scope {
            FaultScope::Link(l) => l == link,
            FaultScope::Srlg(fiber) => self.fiber_of(link) == fiber,
            FaultScope::Domain(d) => self
                .plan
                .domains
                .get(d)
                .is_some_and(|dom| dom.links.contains(&link)),
        }
    }

    /// The BVT fault armed on `link` at `now`, if any (first match wins;
    /// overlapping BVT faults on one link are not meaningful).
    pub fn bvt_fault(&self, link: LinkId, now: SimTime) -> Option<BvtFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Bvt(f) if self.covers(e, link) => Some(f),
            _ => None,
        })
    }

    /// The telemetry fault affecting `link` at `now`, if any.
    pub fn telemetry_fault(&self, link: LinkId, now: SimTime) -> Option<TelemetryFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Telemetry(f) if self.covers(e, link) => Some(f),
            _ => None,
        })
    }

    /// The TE fault in force at `now`, if any.
    pub fn te_fault(&self, now: SimTime) -> Option<TeFault> {
        self.active_at(now).find_map(|e| match e.kind {
            FaultKind::Te(f) => Some(f),
            _ => None,
        })
    }

    /// Total physical SNR penalty (dB) on `link` at `now` from active
    /// optical faults.
    ///
    /// Severities are *correlated, not identical*: every covered link
    /// shares the event's common shock, plus a deterministic per-link
    /// deviation of up to ±10 % of the shock (hashed from the event start
    /// and the link id), which is how one amplifier incident dims forty
    /// wavelengths by *almost* the same amount. Overlapping optical
    /// events stack additively.
    pub fn optical_penalty_db(&self, link: LinkId, now: SimTime) -> f64 {
        self.active_at(now)
            .filter_map(|e| match e.kind {
                FaultKind::Optical(f) if self.covers(e, link) => {
                    let common = f.severity_db();
                    let jitter = severity_deviation(e.start, link);
                    Some((common * (1.0 + 0.1 * jitter)).max(0.0))
                }
                _ => None,
            })
            .sum()
    }

    /// Whether any *correlated* (SRLG- or domain-scoped) fault covers
    /// `link` at `now` — the attribution bit the availability accounting
    /// uses to split outage time into independent vs correlated.
    pub fn correlated_active(&self, link: LinkId, now: SimTime) -> bool {
        self.active_at(now)
            .any(|e| e.scope.is_correlated() && self.covers(e, link))
    }

    /// Applies the active telemetry fault (if any) to a raw reading.
    ///
    /// `frozen` is the value delivered when the stream froze (the caller
    /// tracks it; this crate is stateless). Returns the reading the
    /// controller should see: `None` means the sample was lost.
    pub fn observe(
        &self,
        link: LinkId,
        raw: Db,
        frozen: Option<Db>,
        now: SimTime,
    ) -> Option<Db> {
        match self.telemetry_fault(link, now) {
            None => Some(raw),
            Some(TelemetryFault::DropSamples) => None,
            Some(TelemetryFault::FreezeReadings) => Some(frozen.unwrap_or(raw)),
            Some(TelemetryFault::SnrSpike { delta_db }) => Some(Db(raw.value() + delta_db)),
        }
    }
}

/// Deterministic per-link severity deviation in `[-1, 1]`, hashed from
/// the event start and the link id (splitmix64 finalizer). Pure data →
/// the same event always dims the same link by the same amount.
fn severity_deviation(start: SimTime, link: LinkId) -> f64 {
    let mut z = start
        .since_epoch()
        .as_millis()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(link.0 as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [-1, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Tuning for the random plan generator. Rates are Poisson-ish: each
/// class draws `rate_per_link_day × links × days` events (TE faults are
/// fleet-wide: `rate × days`; amplifier-span faults are per *fiber*:
/// `rate × fibers × days`), with exponential-ish durations around the
/// configured means. Everything derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Links in the fleet.
    pub n_links: usize,
    /// Schedule horizon.
    pub horizon: SimDuration,
    /// BVT faults per link-day.
    pub bvt_rate_per_link_day: f64,
    /// Telemetry faults per link-day.
    pub telemetry_rate_per_link_day: f64,
    /// TE faults per day (fleet-wide).
    pub te_rate_per_day: f64,
    /// Amplifier/fiber-span incidents per fiber-day. These generate
    /// [`FaultScope::Srlg`] events that hit every link sharing the
    /// segment. `0.0` (the default) disables correlated generation, which
    /// keeps plans from older configs byte-identical.
    pub amplifier_rate_per_fiber_day: f64,
    /// Mean armed window of a BVT fault.
    pub bvt_mean_duration: SimDuration,
    /// Mean duration of a telemetry fault.
    pub telemetry_mean_duration: SimDuration,
    /// Mean duration of a TE fault.
    pub te_mean_duration: SimDuration,
    /// Mean duration of an amplifier-span incident.
    pub amplifier_mean_duration: SimDuration,
    /// Mean common-shock severity (dB SNR penalty) of an amplifier-span
    /// incident. Individual events draw around this mean; full
    /// [`OpticalFault::AmplifierOutage`]s use the draw as-is while
    /// [`OpticalFault::SpanDegradation`]s halve it.
    pub amplifier_mean_severity_db: f64,
    /// Link → fiber-segment map used when placing SRLG events. Empty (the
    /// default) means one fiber per link — every "correlated" event then
    /// degenerates to a single link, matching the `WanTopology` default.
    pub fiber_of_link: Vec<usize>,
    /// Master seed; the whole plan is a pure function of the config.
    pub seed: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            n_links: 1,
            horizon: SimDuration::from_days(7),
            bvt_rate_per_link_day: 0.5,
            telemetry_rate_per_link_day: 0.5,
            te_rate_per_day: 0.5,
            amplifier_rate_per_fiber_day: 0.0,
            bvt_mean_duration: SimDuration::from_hours(2),
            telemetry_mean_duration: SimDuration::from_hours(1),
            te_mean_duration: SimDuration::from_minutes(30),
            amplifier_mean_duration: SimDuration::from_minutes(45),
            amplifier_mean_severity_db: 12.0,
            fiber_of_link: Vec::new(),
            seed: 0xFA_017,
        }
    }
}

impl FaultPlanConfig {
    /// Generates the plan. Deterministic: same config → same plan.
    pub fn generate(&self) -> FaultPlan {
        assert!(self.n_links > 0, "fault plan needs at least one link");
        let days = self.horizon.as_secs_f64() / 86_400.0;
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut events = Vec::new();

        let n_bvt = (self.bvt_rate_per_link_day * self.n_links as f64 * days).round() as usize;
        for _ in 0..n_bvt {
            let kind = match rng.next_u64() % 4 {
                0 => BvtFault::RelockFailure,
                1 => BvtFault::StuckLaser,
                2 => BvtFault::MdioTimeout,
                _ => BvtFault::CorruptRegister,
            };
            events.push(self.event(FaultKind::Bvt(kind), self.bvt_mean_duration, &mut rng));
        }

        let n_tel =
            (self.telemetry_rate_per_link_day * self.n_links as f64 * days).round() as usize;
        for _ in 0..n_tel {
            let kind = match rng.next_u64() % 3 {
                0 => TelemetryFault::DropSamples,
                1 => TelemetryFault::FreezeReadings,
                // Spikes in ±(3..15) dB — big enough to bait a bad
                // modulation decision if taken at face value.
                _ => {
                    let magnitude = 3.0 + 12.0 * rng.uniform();
                    let sign = if rng.next_u64().is_multiple_of(2) { 1.0 } else { -1.0 };
                    TelemetryFault::SnrSpike { delta_db: sign * magnitude }
                }
            };
            events.push(self.event(
                FaultKind::Telemetry(kind),
                self.telemetry_mean_duration,
                &mut rng,
            ));
        }

        let n_te = (self.te_rate_per_day * days).round() as usize;
        for _ in 0..n_te {
            let kind = if rng.next_u64().is_multiple_of(2) {
                TeFault::SolverTimeout
            } else {
                TeFault::SolverAbort
            };
            events.push(self.event(FaultKind::Te(kind), self.te_mean_duration, &mut rng));
        }

        // Correlated amplifier-span incidents: one event per draw, scoped
        // to a whole fiber segment. The severity is the *common shock*;
        // per-link deviations are applied at injection time.
        let fibers = self.fiber_segments();
        let n_amp =
            (self.amplifier_rate_per_fiber_day * fibers.len() as f64 * days).round() as usize;
        for _ in 0..n_amp {
            let fiber = fibers[rng.below(fibers.len())];
            // Mean-centred severity with ±35 % spread, floored at 1 dB so
            // an "incident" is never a no-op.
            let severity = (self.amplifier_mean_severity_db
                * (0.65 + 0.7 * rng.uniform()))
            .max(1.0);
            // 2-in-3 full amplifier outages, 1-in-3 milder span issues.
            let kind = if rng.next_u64() % 3 < 2 {
                OpticalFault::AmplifierOutage { severity_db: severity }
            } else {
                OpticalFault::SpanDegradation { severity_db: severity * 0.5 }
            };
            let template =
                self.event(FaultKind::Optical(kind), self.amplifier_mean_duration, &mut rng);
            events.push(FaultEvent { scope: FaultScope::Srlg(fiber), ..template });
        }

        FaultPlan { events, domains: Vec::new() }
    }

    /// Distinct fiber segments implied by the config's link → fiber map
    /// (identity when the map is empty), sorted for determinism.
    pub fn fiber_segments(&self) -> Vec<usize> {
        if self.fiber_of_link.is_empty() {
            (0..self.n_links).collect()
        } else {
            let mut fibers: Vec<usize> = self.fiber_of_link.clone();
            fibers.sort_unstable();
            fibers.dedup();
            fibers
        }
    }

    fn event(
        &self,
        kind: FaultKind,
        mean_duration: SimDuration,
        rng: &mut Xoshiro256,
    ) -> FaultEvent {
        let link = LinkId(rng.below(self.n_links));
        let start_secs = self.horizon.as_secs_f64() * rng.uniform();
        // Exponential durations, clamped to keep a fault from outliving
        // the horizon by much.
        let u = rng.uniform().max(1e-12);
        let dur_secs =
            (-u.ln() * mean_duration.as_secs_f64()).min(self.horizon.as_secs_f64() / 2.0);
        FaultEvent {
            kind,
            scope: FaultScope::Link(link),
            start: SimTime::EPOCH + SimDuration::from_secs_f64(start_secs),
            duration: SimDuration::from_secs_f64(dur_secs.max(1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultPlanConfig {
        FaultPlanConfig { n_links: 8, seed: 42, ..FaultPlanConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cfg().generate();
        let b = cfg().generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = cfg().generate();
        let b = FaultPlanConfig { seed: 43, ..cfg() }.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn rates_scale_event_counts() {
        let sparse = FaultPlanConfig {
            bvt_rate_per_link_day: 0.1,
            telemetry_rate_per_link_day: 0.1,
            te_rate_per_day: 0.1,
            ..cfg()
        }
        .generate();
        let dense = FaultPlanConfig {
            bvt_rate_per_link_day: 2.0,
            telemetry_rate_per_link_day: 2.0,
            te_rate_per_day: 2.0,
            ..cfg()
        }
        .generate();
        assert!(dense.len() > sparse.len() * 4, "{} vs {}", dense.len(), sparse.len());
        let (bvt, tel, te, _) = dense.class_counts();
        assert!(bvt > 0 && tel > 0 && te > 0);
    }

    #[test]
    fn events_stay_inside_horizon() {
        let plan = cfg().generate();
        let horizon = cfg().horizon;
        for e in &plan.events {
            assert!(e.start < SimTime::EPOCH + horizon);
            if let FaultScope::Link(l) = e.scope {
                assert!(l.0 < 8);
            }
            assert!(e.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn amplifier_rate_generates_srlg_events() {
        let plan = FaultPlanConfig {
            amplifier_rate_per_fiber_day: 0.5,
            // Four links on two fiber segments.
            n_links: 4,
            fiber_of_link: vec![0, 0, 1, 1],
            ..cfg()
        }
        .generate();
        let (_, _, _, optical) = plan.class_counts();
        assert!(optical > 0, "amplifier rate must generate optical events");
        assert_eq!(plan.correlated_count(), optical);
        for e in &plan.events {
            if let FaultKind::Optical(f) = e.kind {
                assert!(matches!(e.scope, FaultScope::Srlg(fid) if fid <= 1));
                assert!(f.severity_db() >= 1.0);
            }
        }
    }

    #[test]
    fn zero_amplifier_rate_matches_pre_domain_plans() {
        // The SRLG extension must not perturb existing seeded campaigns:
        // with the default (zero) amplifier rate, the generated events are
        // exactly the PR-1 classes in the PR-1 order.
        let plan = cfg().generate();
        let (_, _, _, optical) = plan.class_counts();
        assert_eq!(optical, 0);
        assert_eq!(plan.correlated_count(), 0);
    }

    #[test]
    fn injector_windows_are_half_open() {
        let event = FaultEvent::on_link(
            FaultKind::Te(TeFault::SolverTimeout),
            LinkId(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
        );
        let inj = FaultInjector::new(FaultPlan::none().with(event));
        let h = SimDuration::from_hours(1);
        assert_eq!(inj.te_fault(SimTime::EPOCH), None);
        assert_eq!(inj.te_fault(SimTime::EPOCH + h), Some(TeFault::SolverTimeout));
        assert_eq!(inj.te_fault(SimTime::EPOCH + h + h), None, "end is exclusive");
    }

    #[test]
    fn srlg_scope_covers_every_link_on_the_fiber() {
        let day = SimDuration::from_days(1);
        let plan = FaultPlan::none().with(FaultEvent::on_srlg(
            FaultKind::Bvt(BvtFault::RelockFailure),
            7,
            SimTime::EPOCH,
            day,
        ));
        // Links 0 and 2 ride fiber 7; link 1 rides fiber 3.
        let inj = FaultInjector::with_fibers(plan, vec![7, 3, 7]);
        let t0 = SimTime::EPOCH;
        assert_eq!(inj.bvt_fault(LinkId(0), t0), Some(BvtFault::RelockFailure));
        assert_eq!(inj.bvt_fault(LinkId(2), t0), Some(BvtFault::RelockFailure));
        assert_eq!(inj.bvt_fault(LinkId(1), t0), None);
        assert!(inj.correlated_active(LinkId(0), t0));
        assert!(!inj.correlated_active(LinkId(1), t0));
    }

    #[test]
    fn domain_scope_uses_the_plan_domain_table() {
        let day = SimDuration::from_days(1);
        let mut plan = FaultPlan::none();
        let conduit = plan.add_domain(FaultDomain {
            name: "conduit-7".into(),
            links: vec![LinkId(1), LinkId(3)],
        });
        let plan = plan.with(FaultEvent::on_domain(
            FaultKind::Telemetry(TelemetryFault::DropSamples),
            conduit,
            SimTime::EPOCH,
            day,
        ));
        let inj = FaultInjector::new(plan);
        let t0 = SimTime::EPOCH;
        assert_eq!(inj.telemetry_fault(LinkId(1), t0), Some(TelemetryFault::DropSamples));
        assert_eq!(inj.telemetry_fault(LinkId(3), t0), Some(TelemetryFault::DropSamples));
        assert_eq!(inj.telemetry_fault(LinkId(0), t0), None);
        assert!(inj.correlated_active(LinkId(3), t0));
    }

    #[test]
    fn optical_penalty_is_correlated_not_identical() {
        let day = SimDuration::from_days(1);
        let plan = FaultPlan::none().with(FaultEvent::on_srlg(
            FaultKind::Optical(OpticalFault::AmplifierOutage { severity_db: 20.0 }),
            0,
            SimTime::EPOCH,
            day,
        ));
        let inj = FaultInjector::with_fibers(plan, vec![0, 0, 0, 1]);
        let t0 = SimTime::EPOCH;
        let penalties: Vec<f64> =
            (0..3).map(|l| inj.optical_penalty_db(LinkId(l), t0)).collect();
        for &p in &penalties {
            // Common shock 20 dB ± 10 % deviation.
            assert!((18.0..=22.0).contains(&p), "penalty {p}");
        }
        // Correlated, not identical: the per-link deviations differ.
        assert!(penalties.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
        // Off-segment link sees nothing; outside the window nothing.
        assert_eq!(inj.optical_penalty_db(LinkId(3), t0), 0.0);
        assert_eq!(
            inj.optical_penalty_db(LinkId(0), t0 + day + SimDuration::from_secs(1)),
            0.0
        );
        // And the same query always returns the same value.
        assert_eq!(penalties[0], inj.optical_penalty_db(LinkId(0), t0));
    }

    #[test]
    fn validate_rejects_empty_windows() {
        let plan = FaultPlan::none().with(FaultEvent::on_link(
            FaultKind::Te(TeFault::SolverAbort),
            LinkId(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::ZERO,
        ));
        assert_eq!(plan.validate(), Err(FaultPlanError::EmptyWindow { index: 0 }));
    }

    #[test]
    fn validate_rejects_dangling_domains() {
        let plan = FaultPlan::none().with(FaultEvent::on_domain(
            FaultKind::Te(TeFault::SolverAbort),
            3,
            SimTime::EPOCH,
            SimDuration::from_hours(1),
        ));
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::UnknownDomain { index: 0, domain: 3 })
        );
    }

    #[test]
    fn validate_warns_on_overlapping_same_scope_windows() {
        let h = SimDuration::from_hours(1);
        let plan = FaultPlan::none()
            .with(FaultEvent::on_link(
                FaultKind::Bvt(BvtFault::StuckLaser),
                LinkId(2),
                SimTime::EPOCH,
                h + h,
            ))
            .with(FaultEvent::on_link(
                FaultKind::Bvt(BvtFault::MdioTimeout),
                LinkId(2),
                SimTime::EPOCH + h,
                h,
            ))
            // Different class on the same link: not a warning.
            .with(FaultEvent::on_link(
                FaultKind::Telemetry(TelemetryFault::DropSamples),
                LinkId(2),
                SimTime::EPOCH,
                h,
            ));
        let check = plan.validate().expect("plan is valid");
        assert_eq!(check.warnings.len(), 1, "{:?}", check.warnings);
        assert!(check.warnings[0].contains("#0"));
        assert!(check.warnings[0].contains("#1"));
    }

    #[test]
    fn generated_plans_validate_clean_of_errors() {
        let plan = FaultPlanConfig {
            amplifier_rate_per_fiber_day: 0.3,
            fiber_of_link: vec![0, 0, 1, 1, 2, 2, 3, 3],
            ..cfg()
        }
        .generate();
        plan.validate().expect("generated plans are structurally valid");
    }

    #[test]
    fn observe_applies_telemetry_faults() {
        let t0 = SimTime::EPOCH;
        let day = SimDuration::from_days(1);
        let plan = FaultPlan::none()
            .with(FaultEvent::on_link(
                FaultKind::Telemetry(TelemetryFault::DropSamples),
                LinkId(0),
                t0,
                day,
            ))
            .with(FaultEvent::on_link(
                FaultKind::Telemetry(TelemetryFault::FreezeReadings),
                LinkId(1),
                t0,
                day,
            ))
            .with(FaultEvent::on_link(
                FaultKind::Telemetry(TelemetryFault::SnrSpike { delta_db: 10.0 }),
                LinkId(2),
                t0,
                day,
            ));
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.observe(LinkId(0), Db(12.0), None, t0), None);
        assert_eq!(inj.observe(LinkId(1), Db(12.0), Some(Db(9.0)), t0), Some(Db(9.0)));
        assert_eq!(inj.observe(LinkId(2), Db(12.0), None, t0), Some(Db(22.0)));
        // Unaffected link passes through.
        assert_eq!(inj.observe(LinkId(3), Db(12.0), None, t0), Some(Db(12.0)));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut plan = FaultPlanConfig {
            amplifier_rate_per_fiber_day: 0.4,
            fiber_of_link: vec![0, 0, 1, 1, 2, 2, 3, 3],
            ..cfg()
        }
        .generate();
        plan.add_domain(FaultDomain { name: "conduit".into(), links: vec![LinkId(0)] });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = FaultPlanConfig {
            amplifier_rate_per_fiber_day: 0.25,
            amplifier_mean_severity_db: 18.0,
            fiber_of_link: vec![0, 1, 0, 1],
            ..cfg()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultPlanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // And the regenerated plan is identical — the config really is
        // the plan's complete description.
        assert_eq!(cfg.generate(), back.generate());
    }
}
