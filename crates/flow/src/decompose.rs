//! Flow decomposition into simple paths.
//!
//! Theorem 1's translation step needs the TE solution as *paths* (to
//! program tunnels) rather than per-edge totals. Any feasible `s`→`t` flow
//! decomposes into at most `|E|` simple paths plus cycles; cycles carry no
//! `s`→`t` value and are dropped (min-cost solutions contain none unless
//! zero-cost cycles exist).

use crate::network::{Flow, FlowNetwork};
use crate::EPS;

/// One path of a decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowPath {
    /// Node sequence from source to sink.
    pub nodes: Vec<usize>,
    /// Edge indices traversed (into the original network's edge list).
    pub edges: Vec<usize>,
    /// Amount of flow carried by this path.
    pub amount: f64,
}

/// Decomposes a flow into simple source→sink paths.
///
/// Returns paths whose amounts sum to `flow.value` (within tolerance).
pub fn decompose(net: &FlowNetwork, flow: &Flow, source: usize, sink: usize) -> Vec<FlowPath> {
    assert_eq!(flow.edge_flows.len(), net.n_edges(), "flow does not match network");
    let mut remaining = flow.edge_flows.clone();
    // Adjacency: node -> list of edge indices with remaining flow.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); net.n_nodes()];
    for (i, e) in net.edges().iter().enumerate() {
        if remaining[i] > EPS {
            out[e.from].push(i);
        }
    }
    let mut paths = Vec::new();
    loop {
        // Greedy walk from source along positive-flow edges.
        let mut nodes = vec![source];
        let mut edges = Vec::new();
        let mut visited = vec![false; net.n_nodes()];
        visited[source] = true;
        let mut u = source;
        while u != sink {
            // First outgoing edge with remaining flow.
            let Some(&edge_idx) = out[u].iter().find(|&&i| remaining[i] > EPS) else {
                break;
            };
            let v = net.edge(edge_idx).to;
            if visited[v] {
                // Cycle: cancel it and restart the walk.
                let pos = nodes.iter().position(|&n| n == v).unwrap();
                let cycle_edges: Vec<usize> =
                    edges[pos..].iter().copied().chain([edge_idx]).collect();
                let cancel = cycle_edges
                    .iter()
                    .map(|&i| remaining[i])
                    .fold(f64::INFINITY, f64::min);
                for &i in &cycle_edges {
                    remaining[i] -= cancel;
                }
                nodes.truncate(pos + 1);
                edges.truncate(pos);
                // Reset visitation to the truncated prefix.
                visited.iter_mut().for_each(|x| *x = false);
                for &n in &nodes {
                    visited[n] = true;
                }
                u = v;
                continue;
            }
            visited[v] = true;
            nodes.push(v);
            edges.push(edge_idx);
            u = v;
        }
        if u != sink {
            break; // no more source→sink flow
        }
        let amount = edges.iter().map(|&i| remaining[i]).fold(f64::INFINITY, f64::min);
        if amount <= EPS {
            break;
        }
        for &i in &edges {
            remaining[i] -= amount;
        }
        paths.push(FlowPath { nodes, edges, amount });
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::max_flow;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0, 0.0);
        net.add_edge(1, 2, 5.0, 0.0);
        let f = max_flow(&net, 0, 2);
        let paths = decompose(&net, &f, 0, 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2]);
        assert_eq!(paths[0].amount, 5.0);
    }

    #[test]
    fn parallel_routes_split() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0, 0.0);
        net.add_edge(1, 3, 3.0, 0.0);
        net.add_edge(0, 2, 5.0, 0.0);
        net.add_edge(2, 3, 5.0, 0.0);
        let f = max_flow(&net, 0, 3);
        let paths = decompose(&net, &f, 0, 3);
        assert_eq!(paths.len(), 2);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - f.value).abs() < 1e-9);
    }

    #[test]
    fn amounts_sum_to_value_on_complex_network() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0, 0.0);
        net.add_edge(0, 2, 13.0, 0.0);
        net.add_edge(1, 2, 10.0, 0.0);
        net.add_edge(2, 1, 4.0, 0.0);
        net.add_edge(1, 3, 12.0, 0.0);
        net.add_edge(3, 2, 9.0, 0.0);
        net.add_edge(2, 4, 14.0, 0.0);
        net.add_edge(4, 3, 7.0, 0.0);
        net.add_edge(3, 5, 20.0, 0.0);
        net.add_edge(4, 5, 4.0, 0.0);
        let f = max_flow(&net, 0, 5);
        let paths = decompose(&net, &f, 0, 5);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - f.value).abs() < 1e-6, "total={total} value={}", f.value);
        // Every path is simple and source→sink.
        for p in &paths {
            assert_eq!(p.nodes[0], 0);
            assert_eq!(*p.nodes.last().unwrap(), 5);
            let mut sorted = p.nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.nodes.len(), "loop in path {:?}", p.nodes);
            // Edge/node consistency.
            for (i, &e) in p.edges.iter().enumerate() {
                assert_eq!(net.edge(e).from, p.nodes[i]);
                assert_eq!(net.edge(e).to, p.nodes[i + 1]);
            }
        }
    }

    #[test]
    fn zero_flow_decomposes_to_nothing() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0, 0.0);
        let f = Flow { edge_flows: vec![0.0], value: 0.0 };
        assert!(decompose(&net, &f, 0, 1).is_empty());
    }

    #[test]
    fn pure_cycle_is_cancelled() {
        // Flow on a cycle not touching source/sink: decomposition must
        // return no paths and not loop forever.
        let mut net = FlowNetwork::new(4);
        net.add_edge(1, 2, 5.0, 0.0);
        net.add_edge(2, 1, 5.0, 0.0);
        net.add_edge(0, 3, 1.0, 0.0);
        let f = Flow { edge_flows: vec![2.0, 2.0, 1.0], value: 1.0 };
        let paths = decompose(&net, &f, 0, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].amount, 1.0);
    }

    #[test]
    fn cycle_attached_to_path_is_cancelled() {
        // 0→1→2 with a 1→3→1 cycle grafted on.
        let mut net = FlowNetwork::new(4);
        let e01 = net.add_edge(0, 1, 5.0, 0.0);
        let e12 = net.add_edge(1, 2, 5.0, 0.0);
        let e13 = net.add_edge(1, 3, 5.0, 0.0);
        let e31 = net.add_edge(3, 1, 5.0, 0.0);
        let mut flows = vec![0.0; 4];
        flows[e01] = 3.0;
        flows[e12] = 3.0;
        flows[e13] = 2.0;
        flows[e31] = 2.0;
        let f = Flow { edge_flows: flows, value: 3.0 };
        let paths = decompose(&net, &f, 0, 2);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - 3.0).abs() < 1e-9);
        for p in &paths {
            assert!(!p.nodes.contains(&3), "cycle node leaked into a path");
        }
    }
}
