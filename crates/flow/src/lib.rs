//! # rwc-flow
//!
//! Flow-algorithm substrate for the *Run, Walk, Crawl* reproduction.
//!
//! Theorem 1 of the paper reduces TE-with-dynamic-capacities to **min-cost
//! max-flow** on an augmented graph, and the TE layer itself needs
//! max-flow and multicommodity flow. The Rust ecosystem's optimisation
//! support is thin (the calibration notes call this out), so the solvers
//! are implemented here from scratch:
//!
//! - [`network`]: the shared [`network::FlowNetwork`] representation and
//!   residual graph;
//! - [`maxflow`]: Dinic's algorithm;
//! - [`mincost`]: successive shortest paths with Johnson potentials
//!   (Bellman–Ford bootstrap, Dijkstra iterations);
//! - [`mcf`]: multicommodity flow — the Garg–Könemann FPTAS for maximum
//!   total throughput with per-commodity demand caps, plus a greedy
//!   baseline;
//! - [`decompose`]: flow decomposition into simple paths.
//!
//! All capacities/costs are `f64`; comparisons use the crate-wide
//! [`EPS`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod maxflow;
pub mod mcf;
pub mod mincost;
pub mod network;

pub use maxflow::max_flow;
pub use mincost::min_cost_max_flow;
pub use network::FlowNetwork;

/// Tolerance for flow comparisons.
pub const EPS: f64 = 1e-9;
