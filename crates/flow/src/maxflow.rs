//! Dinic's maximum-flow algorithm.
//!
//! Level-graph BFS phases with blocking-flow DFS; `O(V²E)` in general and
//! far better on the sparse WAN graphs we feed it. Used directly as the
//! paper's "max-flow on G" reference (Theorem 1), and by the TE layer
//! to compute achievable throughput.

use crate::network::{Flow, FlowNetwork, Residual};
use crate::EPS;

/// Computes a maximum `source`→`sink` flow.
pub fn max_flow(net: &FlowNetwork, source: usize, sink: usize) -> Flow {
    assert!(source < net.n_nodes() && sink < net.n_nodes(), "endpoint out of range");
    assert_ne!(source, sink, "source and sink must differ");
    let mut r = Residual::from_network(net);
    let n = net.n_nodes();
    let mut value = 0.0;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    loop {
        // BFS: build level graph.
        level.iter_mut().for_each(|l| *l = -1);
        level[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &arc in &r.adj[u] {
                let v = r.head[arc];
                if r.cap[arc] > EPS && level[v] < 0 {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink] < 0 {
            break;
        }
        // DFS blocking flow.
        iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs(&mut r, &level, &mut iter, source, sink, f64::INFINITY);
            if pushed <= EPS {
                break;
            }
            value += pushed;
        }
    }
    Flow { edge_flows: r.edge_flows(net), value }
}

fn dfs(
    r: &mut Residual,
    level: &[i32],
    iter: &mut [usize],
    u: usize,
    sink: usize,
    limit: f64,
) -> f64 {
    if u == sink {
        return limit;
    }
    while iter[u] < r.adj[u].len() {
        let arc = r.adj[u][iter[u]];
        let v = r.head[arc];
        if r.cap[arc] > EPS && level[v] == level[u] + 1 {
            let pushed = dfs(r, level, iter, v, sink, limit.min(r.cap[arc]));
            if pushed > EPS {
                r.cap[arc] -= pushed;
                r.cap[arc ^ 1] += pushed;
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7.5, 0.0);
        let f = max_flow(&net, 0, 1);
        assert_eq!(f.value, 7.5);
        f.validate(&net, 0, 1).unwrap();
    }

    #[test]
    fn series_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0, 0.0);
        net.add_edge(1, 2, 4.0, 0.0);
        let f = max_flow(&net, 0, 2);
        assert_eq!(f.value, 4.0);
        f.validate(&net, 0, 2).unwrap();
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0, 0.0);
        net.add_edge(1, 3, 3.0, 0.0);
        net.add_edge(0, 2, 5.0, 0.0);
        net.add_edge(2, 3, 5.0, 0.0);
        let f = max_flow(&net, 0, 3);
        assert_eq!(f.value, 8.0);
        f.validate(&net, 0, 3).unwrap();
    }

    #[test]
    fn parallel_edges_both_used() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2.0, 0.0);
        net.add_edge(0, 1, 3.0, 0.0);
        let f = max_flow(&net, 0, 1);
        assert_eq!(f.value, 5.0);
        assert_eq!(f.edge_flows, vec![2.0, 3.0]);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with augmenting paths that need residual
        // (backward) arcs to reach the optimum.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0, 0.0);
        net.add_edge(0, 2, 13.0, 0.0);
        net.add_edge(1, 2, 10.0, 0.0);
        net.add_edge(2, 1, 4.0, 0.0);
        net.add_edge(1, 3, 12.0, 0.0);
        net.add_edge(3, 2, 9.0, 0.0);
        net.add_edge(2, 4, 14.0, 0.0);
        net.add_edge(4, 3, 7.0, 0.0);
        net.add_edge(3, 5, 20.0, 0.0);
        net.add_edge(4, 5, 4.0, 0.0);
        let f = max_flow(&net, 0, 5);
        assert!((f.value - 23.0).abs() < EPS, "value={}", f.value);
        f.validate(&net, 0, 5).unwrap();
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0, 0.0);
        let f = max_flow(&net, 0, 2);
        assert_eq!(f.value, 0.0);
        assert_eq!(f.edge_flows, vec![0.0]);
    }

    #[test]
    fn zero_capacity_edges_ignored() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0.0, 0.0);
        let f = max_flow(&net, 0, 1);
        assert_eq!(f.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.25, 0.0);
        net.add_edge(1, 2, 0.75, 0.0);
        let f = max_flow(&net, 0, 2);
        assert!((f.value - 0.75).abs() < EPS);
    }

    #[test]
    fn respects_direction() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(1, 0, 10.0, 0.0); // only wrong-way edge
        let f = max_flow(&net, 0, 1);
        assert_eq!(f.value, 0.0);
    }

    #[test]
    #[should_panic]
    fn same_source_sink_rejected() {
        let net = FlowNetwork::new(2);
        max_flow(&net, 0, 0);
    }

    #[test]
    fn min_cut_saturated() {
        // On the series network, the bottleneck edge is saturated.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0, 0.0);
        net.add_edge(1, 2, 4.0, 0.0);
        let f = max_flow(&net, 0, 2);
        assert!((f.edge_flows[1] - 4.0).abs() < EPS);
    }
}
