//! Multicommodity flow.
//!
//! SWAN/B4-style traffic engineering routes many `(source, sink, demand)`
//! commodities over shared capacity. Two solvers are provided:
//!
//! - [`max_multicommodity_flow`]: the Garg–Könemann FPTAS for maximum total
//!   throughput subject to per-commodity demand caps. Demands are enforced
//!   by a virtual per-commodity source edge of capacity `demand`, so the
//!   standard length-function machinery handles them unchanged. The result
//!   is within `(1 − ε)³` of optimal and always capacity-feasible.
//! - [`greedy_mcf`]: a shortest-path water-filling baseline (CSPF-like):
//!   commodities route greedily in the given order. Fast, order-dependent,
//!   and measurably worse under contention — a useful baseline for the
//!   throughput-gain experiments.

use crate::network::FlowNetwork;
use crate::EPS;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One traffic demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Origin node.
    pub source: usize,
    /// Destination node.
    pub sink: usize,
    /// Offered load (flow is capped at this).
    pub demand: f64,
}

/// Result of a multicommodity computation.
#[derive(Debug, Clone, PartialEq)]
pub struct McfResult {
    /// Flow routed per commodity (≤ its demand).
    pub routed: Vec<f64>,
    /// Per-commodity, per-edge flow (`routed[k] = Σ` over its paths).
    pub edge_flows: Vec<Vec<f64>>,
    /// Total throughput `Σ routed`.
    pub total: f64,
}

impl McfResult {
    /// Aggregate flow per edge across commodities.
    pub fn aggregate_edge_flows(&self, n_edges: usize) -> Vec<f64> {
        let mut agg = vec![0.0; n_edges];
        for per_edge in &self.edge_flows {
            for (a, &f) in agg.iter_mut().zip(per_edge) {
                *a += f;
            }
        }
        agg
    }

    /// Checks capacity feasibility and per-commodity demand caps.
    pub fn validate(&self, net: &FlowNetwork, commodities: &[Commodity]) -> Result<(), String> {
        let agg = self.aggregate_edge_flows(net.n_edges());
        for (i, (&f, e)) in agg.iter().zip(net.edges()).enumerate() {
            if f > e.capacity + 1e-6 {
                return Err(format!("edge {i} overloaded: {f} > {}", e.capacity));
            }
        }
        for (k, (&r, c)) in self.routed.iter().zip(commodities).enumerate() {
            if r > c.demand + 1e-6 {
                return Err(format!("commodity {k} over-routed: {r} > {}", c.demand));
            }
            if r < -EPS {
                return Err(format!("commodity {k} negative: {r}"));
            }
        }
        Ok(())
    }
}

#[derive(PartialEq)]
struct Entry {
    dist: f64,
    node: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra over per-edge lengths; returns (distance, parent edge) arrays.
fn shortest_path_by_length(
    n: usize,
    adj: &[Vec<usize>],
    edges: &[(usize, usize)],
    lengths: &[f64],
    source: usize,
) -> (Vec<f64>, Vec<Option<usize>>) {
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Entry { dist: 0.0, node: source });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] * (1.0 + 1e-12) {
            continue;
        }
        for &ei in &adj[u] {
            let (_, v) = edges[ei];
            let nd = d + lengths[ei];
            if nd < dist[v] - 1e-15 {
                dist[v] = nd;
                parent[v] = Some(ei);
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    (dist, parent)
}

/// Garg–Könemann FPTAS for maximum total multicommodity throughput with
/// demand caps.
///
/// `epsilon` trades accuracy for speed (0.05–0.15 is typical). The returned
/// solution is feasible and within `(1−ε)³` of the optimum.
pub fn max_multicommodity_flow(
    net: &FlowNetwork,
    commodities: &[Commodity],
    epsilon: f64,
) -> McfResult {
    assert!(!commodities.is_empty(), "no commodities");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon out of (0,1)");
    for c in commodities {
        assert!(c.source < net.n_nodes() && c.sink < net.n_nodes(), "endpoint out of range");
        assert!(c.source != c.sink, "zero-hop commodity");
        assert!(c.demand >= 0.0, "negative demand");
    }
    let k = commodities.len();
    let n = net.n_nodes() + k; // + virtual sources
    // Extended edge list: original edges then one virtual edge per commodity.
    let mut edges: Vec<(usize, usize)> = net.edges().iter().map(|e| (e.from, e.to)).collect();
    let mut caps: Vec<f64> = net.edges().iter().map(|e| e.capacity).collect();
    for (i, c) in commodities.iter().enumerate() {
        edges.push((net.n_nodes() + i, c.source));
        caps.push(c.demand);
    }
    let m_edges = edges.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(u, _)) in edges.iter().enumerate() {
        if caps[i] > EPS {
            adj[u].push(i);
        }
    }

    let m = m_edges.max(2) as f64;
    let delta = (1.0 + epsilon) * ((1.0 + epsilon) * m).powf(-1.0 / epsilon);
    let mut length: Vec<f64> = caps.iter().map(|&c| if c > EPS { delta / c } else { f64::INFINITY }).collect();
    let mut raw_flow: Vec<Vec<f64>> = vec![vec![0.0; m_edges]; k];

    // Phase loop: while some commodity still has a path shorter than 1.
    loop {
        let mut any = false;
        for (ki, c) in commodities.iter().enumerate() {
            if c.demand <= EPS {
                continue;
            }
            loop {
                let vsrc = net.n_nodes() + ki;
                let (dist, parent) = shortest_path_by_length(n, &adj, &edges, &length, vsrc);
                if !dist[c.sink].is_finite() || dist[c.sink] >= 1.0 {
                    break;
                }
                any = true;
                // Walk the path, find bottleneck.
                let mut path = Vec::new();
                let mut v = c.sink;
                while v != vsrc {
                    let ei = parent[v].expect("path incomplete");
                    path.push(ei);
                    v = edges[ei].0;
                }
                let bottleneck = path.iter().map(|&ei| caps[ei]).fold(f64::INFINITY, f64::min);
                for &ei in &path {
                    raw_flow[ki][ei] += bottleneck;
                    length[ei] *= 1.0 + epsilon * bottleneck / caps[ei];
                }
            }
        }
        if !any {
            break;
        }
    }

    // Scale: raw flows exceed capacity by ~log_{1+eps}(1/delta). Start from
    // the analytic factor, then tighten it to the *observed* worst edge
    // overload so the result is always exactly feasible (the analytic bound
    // is loose by a capacity-dependent constant on small graphs).
    let mut scale = ((1.0 / delta).ln() / (1.0 + epsilon).ln()).max(1.0);
    for ei in 0..m_edges {
        if caps[ei] > EPS {
            let total: f64 = raw_flow.iter().map(|per| per[ei]).sum();
            scale = scale.max(total / caps[ei]);
        }
    }
    let mut edge_flows = vec![vec![0.0; net.n_edges()]; k];
    let mut routed = vec![0.0; k];
    for ki in 0..k {
        // Every unit of commodity ki crosses its virtual edge, so the
        // virtual flow is its routed total. If scaling still leaves it
        // above the demand cap, shrink the whole commodity uniformly —
        // clipping only the total would leave phantom flow occupying
        // capacity on real edges.
        let v = raw_flow[ki][net.n_edges() + ki] / scale;
        let shrink = if v > commodities[ki].demand && v > EPS {
            commodities[ki].demand / v
        } else {
            1.0
        };
        for ei in 0..net.n_edges() {
            edge_flows[ki][ei] = raw_flow[ki][ei] / scale * shrink;
        }
        routed[ki] = v * shrink;
    }

    // Top-up pass: the conservative scaling leaves residual capacity on
    // most edges; greedily fill it with still-unsatisfied demand. This
    // recovers most of the FPTAS scaling loss at negligible cost and never
    // violates feasibility.
    let n_real = net.n_nodes();
    let real_edges: Vec<(usize, usize)> = net.edges().iter().map(|e| (e.from, e.to)).collect();
    let mut residual: Vec<f64> = (0..net.n_edges())
        .map(|ei| {
            let used: f64 = edge_flows.iter().map(|per| per[ei]).sum();
            (net.edge(ei).capacity - used).max(0.0)
        })
        .collect();
    let mut real_adj: Vec<Vec<usize>> = vec![Vec::new(); n_real];
    for (i, &(u, _)) in real_edges.iter().enumerate() {
        real_adj[u].push(i);
    }
    for (ki, c) in commodities.iter().enumerate() {
        let mut remaining = c.demand - routed[ki];
        while remaining > EPS {
            let lengths: Vec<f64> = residual
                .iter()
                .map(|&r| if r > EPS { 1.0 } else { f64::INFINITY })
                .collect();
            let (dist, parent) =
                shortest_path_by_length(n_real, &real_adj, &real_edges, &lengths, c.source);
            if !dist[c.sink].is_finite() {
                break;
            }
            let mut path = Vec::new();
            let mut v = c.sink;
            while v != c.source {
                let ei = parent[v].expect("path incomplete");
                path.push(ei);
                v = real_edges[ei].0;
            }
            let push = path.iter().map(|&ei| residual[ei]).fold(remaining, f64::min);
            for &ei in &path {
                residual[ei] -= push;
                edge_flows[ki][ei] += push;
            }
            routed[ki] += push;
            remaining -= push;
        }
    }

    let total = routed.iter().sum();
    let gk = McfResult { routed, edge_flows, total };

    // Hybrid selection: on small/structured instances the FPTAS's
    // feasibility scaling can cost more than greedy loses to ordering, and
    // vice versa on contention-heavy instances. Both results are feasible;
    // return the higher-throughput one (production TE controllers hedge
    // the same way).
    let greedy = greedy_mcf(net, commodities);
    if greedy.total > gk.total {
        greedy
    } else {
        gk
    }
}

/// Greedy shortest-path water-filling baseline.
///
/// Routes commodities in order; each demand is split across successive
/// shortest residual paths (hop-count metric) until satisfied or
/// disconnected.
pub fn greedy_mcf(net: &FlowNetwork, commodities: &[Commodity]) -> McfResult {
    let n = net.n_nodes();
    let edges: Vec<(usize, usize)> = net.edges().iter().map(|e| (e.from, e.to)).collect();
    let mut residual: Vec<f64> = net.edges().iter().map(|e| e.capacity).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(u, _)) in edges.iter().enumerate() {
        adj[u].push(i);
    }
    let mut edge_flows = vec![vec![0.0; net.n_edges()]; commodities.len()];
    let mut routed = vec![0.0; commodities.len()];
    for (ki, c) in commodities.iter().enumerate() {
        let mut remaining = c.demand;
        while remaining > EPS {
            // Hop-count shortest path among edges with residual capacity.
            let lengths: Vec<f64> = residual
                .iter()
                .map(|&r| if r > EPS { 1.0 } else { f64::INFINITY })
                .collect();
            let (dist, parent) = shortest_path_by_length(n, &adj, &edges, &lengths, c.source);
            if !dist[c.sink].is_finite() {
                break;
            }
            let mut path = Vec::new();
            let mut v = c.sink;
            while v != c.source {
                let ei = parent[v].expect("path incomplete");
                path.push(ei);
                v = edges[ei].0;
            }
            let bottleneck = path
                .iter()
                .map(|&ei| residual[ei])
                .fold(remaining, f64::min);
            for &ei in &path {
                residual[ei] -= bottleneck;
                edge_flows[ki][ei] += bottleneck;
            }
            routed[ki] += bottleneck;
            remaining -= bottleneck;
        }
    }
    let total = routed.iter().sum();
    McfResult { routed, edge_flows, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_commodity_shared_bottleneck() -> (FlowNetwork, Vec<Commodity>) {
        // Both commodities must cross the shared 1→2 edge of capacity 10.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 100.0, 0.0);
        net.add_edge(3, 1, 100.0, 0.0);
        net.add_edge(1, 2, 10.0, 0.0);
        let commodities = vec![
            Commodity { source: 0, sink: 2, demand: 8.0 },
            Commodity { source: 3, sink: 2, demand: 8.0 },
        ];
        (net, commodities)
    }

    #[test]
    fn gk_respects_shared_bottleneck() {
        let (net, cs) = two_commodity_shared_bottleneck();
        let r = max_multicommodity_flow(&net, &cs, 0.05);
        r.validate(&net, &cs).unwrap();
        // Optimum is 10 (the bottleneck); FPTAS must be within ~15%.
        assert!(r.total > 8.5 && r.total <= 10.0 + 1e-6, "total={}", r.total);
    }

    #[test]
    fn gk_uncontended_routes_everything() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 100.0, 0.0);
        net.add_edge(1, 2, 100.0, 0.0);
        let cs = vec![Commodity { source: 0, sink: 2, demand: 30.0 }];
        let r = max_multicommodity_flow(&net, &cs, 0.05);
        r.validate(&net, &cs).unwrap();
        assert!(r.routed[0] > 27.0, "routed={}", r.routed[0]);
    }

    #[test]
    fn gk_zero_demand_commodity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10.0, 0.0);
        let cs = vec![
            Commodity { source: 0, sink: 1, demand: 0.0 },
            Commodity { source: 0, sink: 1, demand: 5.0 },
        ];
        let r = max_multicommodity_flow(&net, &cs, 0.1);
        assert_eq!(r.routed[0], 0.0);
        assert!(r.routed[1] > 4.0);
    }

    #[test]
    fn gk_disconnected_commodity() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0, 0.0);
        let cs = vec![
            Commodity { source: 0, sink: 1, demand: 5.0 },
            Commodity { source: 2, sink: 3, demand: 5.0 },
        ];
        let r = max_multicommodity_flow(&net, &cs, 0.1);
        r.validate(&net, &cs).unwrap();
        assert_eq!(r.routed[1], 0.0);
        assert!(r.routed[0] > 4.0);
    }

    #[test]
    fn gk_tighter_epsilon_stays_near_optimal() {
        let (net, cs) = two_commodity_shared_bottleneck();
        let coarse = max_multicommodity_flow(&net, &cs, 0.3);
        let fine = max_multicommodity_flow(&net, &cs, 0.03);
        coarse.validate(&net, &cs).unwrap();
        fine.validate(&net, &cs).unwrap();
        // Optimum is 10; the fine run must land very close.
        assert!(fine.total > 9.5, "fine={}", fine.total);
        assert!(coarse.total > 8.0, "coarse={}", coarse.total);
    }

    #[test]
    fn greedy_routes_in_order() {
        let (net, cs) = two_commodity_shared_bottleneck();
        let r = greedy_mcf(&net, &cs);
        r.validate(&net, &cs).unwrap();
        // First commodity grabs its full 8; second gets the leftover 2.
        assert!((r.routed[0] - 8.0).abs() < EPS);
        assert!((r.routed[1] - 2.0).abs() < EPS);
        assert!((r.total - 10.0).abs() < EPS);
    }

    #[test]
    fn greedy_splits_across_paths() {
        // Demand 8 must split over two 5-capacity parallel routes.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0, 0.0);
        net.add_edge(1, 3, 5.0, 0.0);
        net.add_edge(0, 2, 5.0, 0.0);
        net.add_edge(2, 3, 5.0, 0.0);
        let cs = vec![Commodity { source: 0, sink: 3, demand: 8.0 }];
        let r = greedy_mcf(&net, &cs);
        r.validate(&net, &cs).unwrap();
        assert!((r.routed[0] - 8.0).abs() < EPS);
    }

    #[test]
    fn gk_beats_or_matches_greedy_under_contention() {
        // A trap for greedy: commodity 1's shortest path blocks commodity 2
        // entirely; the optimal solution detours commodity 1.
        let mut net = FlowNetwork::new(4);
        // 0→1 direct cheap-hop, and 0→2→1 detour.
        net.add_edge(0, 1, 10.0, 0.0); // shared bottleneck for commodity 2
        net.add_edge(0, 2, 10.0, 0.0);
        net.add_edge(2, 1, 10.0, 0.0);
        net.add_edge(1, 3, 10.0, 0.0);
        let cs = vec![
            Commodity { source: 0, sink: 1, demand: 10.0 },
            Commodity { source: 0, sink: 3, demand: 10.0 },
        ];
        let greedy = greedy_mcf(&net, &cs);
        let gk = max_multicommodity_flow(&net, &cs, 0.05);
        gk.validate(&net, &cs).unwrap();
        // Optimum: 20 (commodity 1 detours via 2). Greedy: commodity 1
        // takes 0→1 direct, leaving 1→3 reachable only via leftovers → 20
        // too if it splits; but greedy's commodity 1 exhausts 0→1, then
        // commodity 2 routes 0→2→1→3, also fine. Either way GK must be
        // within ε of 20 and never below greedy by more than ε-slack.
        assert!(gk.total >= greedy.total * 0.85, "gk={} greedy={}", gk.total, greedy.total);
        assert!(gk.total > 17.0, "gk={}", gk.total);
    }

    #[test]
    fn aggregate_edge_flows_sums_commodities() {
        let (net, cs) = two_commodity_shared_bottleneck();
        let r = greedy_mcf(&net, &cs);
        let agg = r.aggregate_edge_flows(net.n_edges());
        assert!((agg[2] - 10.0).abs() < EPS, "shared edge total");
    }

    #[test]
    #[should_panic]
    fn gk_rejects_bad_epsilon() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0, 0.0);
        max_multicommodity_flow(
            &net,
            &[Commodity { source: 0, sink: 1, demand: 1.0 }],
            1.5,
        );
    }
}
