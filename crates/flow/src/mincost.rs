//! Min-cost flow via successive shortest paths with Johnson potentials.
//!
//! This is the solver Theorem 1 hands the augmented graph to: among all
//! maximum flows it finds one of minimum total cost, so flow avoids
//! penalised fake links unless they buy extra throughput. Negative edge
//! costs are supported (Bellman–Ford bootstrap) as long as the input has no
//! negative cycle; all subsequent iterations run Dijkstra on reduced costs.

use crate::network::{Flow, FlowNetwork, Residual};
use crate::EPS;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a min-cost flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCostFlow {
    /// The flow assignment (value = total routed).
    pub flow: Flow,
    /// Total cost `Σ flow(e)·cost(e)`.
    pub cost: f64,
}

/// Computes a **maximum** `source`→`sink` flow of **minimum cost**.
///
/// ```
/// use rwc_flow::{min_cost_max_flow, FlowNetwork};
///
/// // The fake-link pattern: a free real edge and a penalised upgrade edge.
/// let mut net = FlowNetwork::new(2);
/// net.add_edge(0, 1, 100.0, 0.0);   // real link
/// net.add_edge(0, 1, 100.0, 100.0); // fake upgrade edge
/// let r = min_cost_max_flow(&net, 0, 1);
/// assert_eq!(r.flow.value, 200.0);
/// // Only the fake half of the flow pays the penalty.
/// assert_eq!(r.cost, 100.0 * 100.0);
/// ```
pub fn min_cost_max_flow(net: &FlowNetwork, source: usize, sink: usize) -> MinCostFlow {
    min_cost_flow_up_to(net, source, sink, f64::INFINITY)
}

/// Computes a minimum-cost flow of value `min(target, maxflow)`.
///
/// With `target = ∞` this is min-cost max-flow; with a finite target it
/// stops once the requested amount is routed (used for demand-capped TE).
pub fn min_cost_flow_up_to(
    net: &FlowNetwork,
    source: usize,
    sink: usize,
    target: f64,
) -> MinCostFlow {
    assert!(source < net.n_nodes() && sink < net.n_nodes(), "endpoint out of range");
    assert_ne!(source, sink, "source and sink must differ");
    assert!(target >= 0.0, "target must be non-negative");
    let n = net.n_nodes();
    let mut r = Residual::from_network(net);

    // Johnson potentials via Bellman–Ford (handles negative edge costs).
    let mut potential = vec![0.0f64; n];
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if potential[u] == f64::INFINITY {
                continue;
            }
            for &arc in &r.adj[u] {
                if r.cap[arc] > EPS {
                    let v = r.head[arc];
                    let nd = potential[u] + r.cost[arc];
                    if nd < potential[v] - EPS {
                        potential[v] = nd;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut value = 0.0;
    let mut total_cost = 0.0;
    let mut remaining = target;

    while remaining > EPS {
        // Dijkstra on reduced costs.
        let (dist, parent_arc) = dijkstra(&r, n, source, &potential);
        if dist[sink].is_infinite() {
            break;
        }
        for (u, d) in dist.iter().enumerate() {
            if d.is_finite() {
                potential[u] += d;
            }
        }
        // Bottleneck along the path.
        let mut bottleneck = remaining;
        let mut v = sink;
        while v != source {
            let arc = parent_arc[v].expect("path must be complete");
            bottleneck = bottleneck.min(r.cap[arc]);
            v = r.head[arc ^ 1];
        }
        // Apply.
        let mut v = sink;
        while v != source {
            let arc = parent_arc[v].expect("path must be complete");
            r.cap[arc] -= bottleneck;
            r.cap[arc ^ 1] += bottleneck;
            total_cost += bottleneck * r.cost[arc];
            v = r.head[arc ^ 1];
        }
        value += bottleneck;
        if remaining.is_finite() {
            remaining -= bottleneck;
        }
    }

    MinCostFlow { flow: Flow { edge_flows: r.edge_flows(net), value }, cost: total_cost }
}

#[derive(PartialEq)]
struct Entry {
    dist: f64,
    node: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn dijkstra(
    r: &Residual,
    n: usize,
    source: usize,
    potential: &[f64],
) -> (Vec<f64>, Vec<Option<usize>>) {
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Entry { dist: 0.0, node: source });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] + EPS {
            continue;
        }
        for &arc in &r.adj[u] {
            if r.cap[arc] <= EPS {
                continue;
            }
            let v = r.head[arc];
            // Reduced cost is non-negative by the potential invariant;
            // clamp tiny negatives from float drift.
            let reduced = (r.cost[arc] + potential[u] - potential[v]).max(0.0);
            let nd = d + reduced;
            if nd < dist[v] - EPS {
                dist[v] = nd;
                parent[v] = Some(arc);
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::max_flow;

    #[test]
    fn prefers_cheap_path() {
        // Two parallel routes; max flow needs both, but the cheap one must
        // carry as much as possible.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0, 1.0); // cheap route
        net.add_edge(1, 3, 5.0, 1.0);
        net.add_edge(0, 2, 5.0, 10.0); // expensive route
        net.add_edge(2, 3, 5.0, 10.0);
        let r = min_cost_max_flow(&net, 0, 3);
        assert_eq!(r.flow.value, 10.0);
        assert_eq!(r.cost, 5.0 * 2.0 + 5.0 * 20.0);
        r.flow.validate(&net, 0, 3).unwrap();
    }

    #[test]
    fn value_matches_dinic() {
        // Min-cost max-flow must find the same value as Dinic.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0, 3.0);
        net.add_edge(0, 2, 13.0, 1.0);
        net.add_edge(1, 2, 10.0, 2.0);
        net.add_edge(2, 1, 4.0, 0.0);
        net.add_edge(1, 3, 12.0, 5.0);
        net.add_edge(3, 2, 9.0, 1.0);
        net.add_edge(2, 4, 14.0, 2.0);
        net.add_edge(4, 3, 7.0, 0.0);
        net.add_edge(3, 5, 20.0, 1.0);
        net.add_edge(4, 5, 4.0, 7.0);
        let mc = min_cost_max_flow(&net, 0, 5);
        let mf = max_flow(&net, 0, 5);
        assert!((mc.flow.value - mf.value).abs() < 1e-6);
        mc.flow.validate(&net, 0, 5).unwrap();
    }

    #[test]
    fn capped_flow_stops_at_target() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10.0, 2.0);
        let r = min_cost_flow_up_to(&net, 0, 1, 4.0);
        assert_eq!(r.flow.value, 4.0);
        assert_eq!(r.cost, 8.0);
    }

    #[test]
    fn capped_flow_limited_by_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.0, 1.0);
        let r = min_cost_flow_up_to(&net, 0, 1, 100.0);
        assert_eq!(r.flow.value, 3.0);
    }

    #[test]
    fn zero_cost_edges_are_free() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0, 0.0);
        net.add_edge(1, 2, 5.0, 0.0);
        let r = min_cost_max_flow(&net, 0, 2);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.flow.value, 5.0);
    }

    #[test]
    fn cost_tie_breaks_by_throughput_first() {
        // The solver maximises value even if every unit is expensive.
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0, 1000.0);
        let r = min_cost_max_flow(&net, 0, 1);
        assert_eq!(r.flow.value, 5.0);
        assert_eq!(r.cost, 5000.0);
    }

    #[test]
    fn negative_costs_without_cycles() {
        // A negative-cost edge on the only path: Bellman–Ford bootstrap
        // must produce valid potentials.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0, -2.0);
        net.add_edge(1, 2, 4.0, 3.0);
        let r = min_cost_max_flow(&net, 0, 2);
        assert_eq!(r.flow.value, 4.0);
        assert_eq!(r.cost, 4.0 * 1.0);
        r.flow.validate(&net, 0, 2).unwrap();
    }

    #[test]
    fn negative_cost_detour_is_preferred() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 2, 10.0, 0.0); // direct, free
        net.add_edge(0, 1, 10.0, -5.0); // detour with reward
        net.add_edge(1, 2, 10.0, 1.0);
        let r = min_cost_max_flow(&net, 0, 2);
        assert_eq!(r.flow.value, 20.0);
        // The detour's net cost is -4 per unit; it must be used fully.
        assert_eq!(r.flow.edge_flows[1], 10.0);
        assert_eq!(r.cost, 10.0 * 0.0 + 10.0 * -4.0);
    }

    #[test]
    fn parallel_edges_with_distinct_costs() {
        // The fake-link pattern: a free real edge and a penalised parallel
        // fake edge. Flow must exhaust the free one first.
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 100.0, 0.0); // real
        net.add_edge(0, 1, 100.0, 100.0); // fake (upgrade)
        let r = min_cost_flow_up_to(&net, 0, 1, 125.0);
        assert_eq!(r.flow.value, 125.0);
        assert_eq!(r.flow.edge_flows[0], 100.0);
        assert_eq!(r.flow.edge_flows[1], 25.0);
        assert_eq!(r.cost, 2500.0);
    }

    #[test]
    fn zero_target_is_empty_flow() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0, 1.0);
        let r = min_cost_flow_up_to(&net, 0, 1, 0.0);
        assert_eq!(r.flow.value, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn unreachable_sink() {
        let net = FlowNetwork::new(2);
        let r = min_cost_max_flow(&net, 0, 1);
        assert_eq!(r.flow.value, 0.0);
    }
}
