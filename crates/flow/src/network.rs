//! The flow-network representation shared by all solvers.

use crate::EPS;

/// One directed edge with capacity and (for min-cost problems) unit cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEdge {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity (≥ 0).
    pub capacity: f64,
    /// Cost per unit of flow (may be zero; negative costs are accepted by
    /// the min-cost solver as long as no negative cycle exists).
    pub cost: f64,
}

/// A directed flow network over nodes `0..n`.
///
/// Parallel edges are allowed and meaningful (the paper's fake links are
/// parallel edges with different costs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowNetwork {
    n: usize,
    edges: Vec<FlowEdge>,
}

impl FlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.n += 1;
        self.n - 1
    }

    /// Adds an edge, returning its index.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: f64, cost: f64) -> usize {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        assert!(capacity >= 0.0 && capacity.is_finite(), "invalid capacity {capacity}");
        assert!(cost.is_finite(), "invalid cost {cost}");
        self.edges.push(FlowEdge { from, to, capacity, cost });
        self.edges.len() - 1
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[FlowEdge] {
        &self.edges
    }

    /// One edge.
    pub fn edge(&self, idx: usize) -> FlowEdge {
        self.edges[idx]
    }

    /// Sum of capacities of edges leaving `node`.
    pub fn out_capacity(&self, node: usize) -> f64 {
        self.edges.iter().filter(|e| e.from == node).map(|e| e.capacity).sum()
    }

    /// Updates one edge's capacity in place (for incremental round
    /// engines that patch dirty links instead of rebuilding the network).
    pub fn set_capacity(&mut self, idx: usize, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite(), "invalid capacity {capacity}");
        self.edges[idx].capacity = capacity;
    }

    /// Updates one edge's cost in place.
    pub fn set_cost(&mut self, idx: usize, cost: f64) {
        assert!(cost.is_finite(), "invalid cost {cost}");
        self.edges[idx].cost = cost;
    }

    /// Drops every edge with index ≥ `len`, keeping insertion order of the
    /// rest. Used to rebuild the fake-link suffix of an augmented network
    /// while leaving the real-edge prefix untouched.
    pub fn truncate_edges(&mut self, len: usize) {
        self.edges.truncate(len);
    }
}

/// A flow assignment over a network's edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Flow on each edge, parallel to [`FlowNetwork::edges`].
    pub edge_flows: Vec<f64>,
    /// Total flow value from source to sink.
    pub value: f64,
}

impl Flow {
    /// Verifies capacity constraints and conservation at every node except
    /// `source` and `sink`. Returns an error message on the first
    /// violation.
    pub fn validate(&self, net: &FlowNetwork, source: usize, sink: usize) -> Result<(), String> {
        if self.edge_flows.len() != net.n_edges() {
            return Err(format!(
                "flow has {} entries for {} edges",
                self.edge_flows.len(),
                net.n_edges()
            ));
        }
        let mut balance = vec![0.0; net.n_nodes()];
        for (i, (&f, e)) in self.edge_flows.iter().zip(net.edges()).enumerate() {
            if f < -EPS {
                return Err(format!("edge {i}: negative flow {f}"));
            }
            if f > e.capacity + EPS {
                return Err(format!("edge {i}: flow {f} exceeds capacity {}", e.capacity));
            }
            balance[e.from] -= f;
            balance[e.to] += f;
        }
        for (node, &b) in balance.iter().enumerate() {
            if node == source || node == sink {
                continue;
            }
            if b.abs() > 1e-6 {
                return Err(format!("node {node}: imbalance {b}"));
            }
        }
        let out_value = -balance[source];
        if (out_value - self.value).abs() > 1e-6 {
            return Err(format!(
                "declared value {} but source exports {}",
                self.value, out_value
            ));
        }
        Ok(())
    }

    /// Total cost of this flow under the network's edge costs.
    pub fn cost(&self, net: &FlowNetwork) -> f64 {
        self.edge_flows.iter().zip(net.edges()).map(|(&f, e)| f * e.cost).sum()
    }
}

/// The shared residual graph: arcs come in reverse pairs `(i, i^1)`.
#[derive(Debug, Clone)]
pub(crate) struct Residual {
    pub(crate) head: Vec<usize>,     // arc -> head node
    pub(crate) cap: Vec<f64>,        // arc -> remaining capacity
    pub(crate) cost: Vec<f64>,       // arc -> cost (reverse arcs negated)
    pub(crate) adj: Vec<Vec<usize>>, // node -> outgoing arcs
    pub(crate) orig: Vec<Option<usize>>, // arc -> original edge index (forward arcs)
}

impl Residual {
    pub(crate) fn from_network(net: &FlowNetwork) -> Self {
        let mut r = Residual {
            head: Vec::with_capacity(net.n_edges() * 2),
            cap: Vec::with_capacity(net.n_edges() * 2),
            cost: Vec::with_capacity(net.n_edges() * 2),
            adj: vec![Vec::new(); net.n_nodes()],
            orig: Vec::with_capacity(net.n_edges() * 2),
        };
        for (i, e) in net.edges().iter().enumerate() {
            let fwd = r.head.len();
            r.head.push(e.to);
            r.cap.push(e.capacity);
            r.cost.push(e.cost);
            r.orig.push(Some(i));
            r.adj[e.from].push(fwd);
            let bwd = r.head.len();
            r.head.push(e.from);
            r.cap.push(0.0);
            r.cost.push(-e.cost);
            r.orig.push(None);
            r.adj[e.to].push(bwd);
        }
        r
    }

    /// Extracts per-original-edge flow from the residual state.
    pub(crate) fn edge_flows(&self, net: &FlowNetwork) -> Vec<f64> {
        let mut flows = vec![0.0; net.n_edges()];
        for arc in (0..self.head.len()).step_by(2) {
            if let Some(orig) = self.orig[arc] {
                let sent = net.edge(orig).capacity - self.cap[arc];
                flows[orig] = sent.max(0.0);
            }
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlowNetwork {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0, 1.0);
        net.add_edge(1, 2, 5.0, 2.0);
        net
    }

    #[test]
    fn construction() {
        let net = tiny();
        assert_eq!(net.n_nodes(), 3);
        assert_eq!(net.n_edges(), 2);
        assert_eq!(net.edge(0).capacity, 10.0);
        assert_eq!(net.out_capacity(0), 10.0);
        assert_eq!(net.out_capacity(2), 0.0);
    }

    #[test]
    fn add_node_grows() {
        let mut net = tiny();
        let k = net.add_node();
        assert_eq!(k, 3);
        net.add_edge(2, 3, 1.0, 0.0);
        assert_eq!(net.n_edges(), 3);
    }

    #[test]
    fn validate_accepts_good_flow() {
        let net = tiny();
        let flow = Flow { edge_flows: vec![5.0, 5.0], value: 5.0 };
        assert!(flow.validate(&net, 0, 2).is_ok());
        assert_eq!(flow.cost(&net), 5.0 + 10.0);
    }

    #[test]
    fn validate_rejects_overflow() {
        let net = tiny();
        let flow = Flow { edge_flows: vec![11.0, 11.0], value: 11.0 };
        assert!(flow.validate(&net, 0, 2).unwrap_err().contains("exceeds capacity"));
    }

    #[test]
    fn validate_rejects_imbalance() {
        let net = tiny();
        let flow = Flow { edge_flows: vec![5.0, 3.0], value: 5.0 };
        assert!(flow.validate(&net, 0, 2).unwrap_err().contains("imbalance"));
    }

    #[test]
    fn validate_rejects_wrong_value() {
        let net = tiny();
        let flow = Flow { edge_flows: vec![5.0, 5.0], value: 4.0 };
        assert!(flow.validate(&net, 0, 2).unwrap_err().contains("declared value"));
    }

    #[test]
    fn residual_pairs() {
        let net = tiny();
        let r = Residual::from_network(&net);
        assert_eq!(r.head.len(), 4);
        assert_eq!(r.cap[0], 10.0);
        assert_eq!(r.cap[1], 0.0);
        assert_eq!(r.cost[1], -1.0);
        assert_eq!(r.orig[0], Some(0));
        assert_eq!(r.orig[1], None);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1.0, 0.0);
    }
}
