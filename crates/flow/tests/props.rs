//! Property tests for flow-algorithm invariants on random networks.

use proptest::prelude::*;
use rwc_flow::decompose::decompose;
use rwc_flow::mcf::{greedy_mcf, max_multicommodity_flow, Commodity};
use rwc_flow::network::FlowNetwork;
use rwc_flow::{max_flow, min_cost_max_flow};

fn arb_network() -> impl Strategy<Value = FlowNetwork> {
    proptest::collection::vec((0usize..7, 0usize..7, 0.1f64..25.0, 0.0f64..8.0), 3..25).prop_map(
        |edges| {
            let mut net = FlowNetwork::new(7);
            for (u, v, cap, cost) in edges {
                if u != v {
                    net.add_edge(u, v, cap, cost);
                }
            }
            net
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dinic's output always validates, and zeroing any saturated edge
    /// can only reduce the max flow (cut monotonicity).
    #[test]
    fn max_flow_validates_and_is_monotone(net in arb_network()) {
        let flow = max_flow(&net, 0, 6);
        prop_assert!(flow.validate(&net, 0, 6).is_ok());
        // Capacity monotonicity: doubling all capacities at least doubles
        // nothing away — value cannot decrease.
        let mut bigger = FlowNetwork::new(net.n_nodes());
        for e in net.edges() {
            bigger.add_edge(e.from, e.to, e.capacity * 2.0, e.cost);
        }
        let flow2 = max_flow(&bigger, 0, 6);
        prop_assert!(flow2.value >= flow.value - 1e-9);
        prop_assert!(flow2.value <= 2.0 * flow.value + 1e-9);
    }

    /// Min-cost max-flow achieves the max-flow value and its cost is a
    /// lower bound over any feasible max-flow (checked against Dinic's
    /// arbitrary one).
    #[test]
    fn min_cost_reaches_value_at_no_more_cost(net in arb_network()) {
        let dinic = max_flow(&net, 0, 6);
        let mc = min_cost_max_flow(&net, 0, 6);
        prop_assert!(mc.flow.validate(&net, 0, 6).is_ok());
        prop_assert!((mc.flow.value - dinic.value).abs() < 1e-6);
        prop_assert!(mc.cost <= dinic.cost(&net) + 1e-6,
            "min-cost {} beat by dinic {}", mc.cost, dinic.cost(&net));
    }

    /// Path decomposition conserves value, uses only forward edges with
    /// flow, and every path is simple source→sink.
    #[test]
    fn decomposition_invariants(net in arb_network()) {
        let flow = max_flow(&net, 0, 6);
        let paths = decompose(&net, &flow, 0, 6);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        prop_assert!((total - flow.value).abs() < 1e-6);
        for p in &paths {
            prop_assert!(p.amount > 0.0);
            prop_assert_eq!(p.nodes[0], 0);
            prop_assert_eq!(*p.nodes.last().unwrap(), 6);
            let mut sorted = p.nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
        // Per-edge: decomposed usage never exceeds the flow on that edge.
        let mut used = vec![0.0; net.n_edges()];
        for p in &paths {
            for &e in &p.edges {
                used[e] += p.amount;
            }
        }
        for (u, f) in used.iter().zip(&flow.edge_flows) {
            prop_assert!(u <= &(f + 1e-6));
        }
    }

    /// Both MCF solvers return feasible, demand-capped solutions, and the
    /// hybrid never loses to plain greedy.
    #[test]
    fn mcf_feasible_and_hybrid_dominates(
        net in arb_network(),
        demands in proptest::collection::vec((0usize..7, 0usize..7, 0.5f64..30.0), 1..5),
    ) {
        let commodities: Vec<Commodity> = demands
            .into_iter()
            .filter(|&(s, t, _)| s != t)
            .map(|(s, t, d)| Commodity { source: s, sink: t, demand: d })
            .collect();
        prop_assume!(!commodities.is_empty());
        let greedy = greedy_mcf(&net, &commodities);
        prop_assert!(greedy.validate(&net, &commodities).is_ok());
        let hybrid = max_multicommodity_flow(&net, &commodities, 0.1);
        prop_assert!(hybrid.validate(&net, &commodities).is_ok());
        prop_assert!(hybrid.total >= greedy.total - 1e-9,
            "hybrid {} < greedy {}", hybrid.total, greedy.total);
    }
}
