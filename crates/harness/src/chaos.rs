//! Seeded, deterministic fault injection for the sweep runtime.
//!
//! A [`ChaosPlan`] decides *before the run starts* which chunks will
//! panic, how many attempts stay poisoned, and after how many fresh
//! completions the run is killed mid-flight. Everything derives from the
//! plan's seed, so a chaos experiment is reproducible: the same plan
//! against the same fleet injects the same faults every time.
//!
//! This taxonomy is deliberately disjoint from `crates/faults`: that
//! crate models *network* faults (SNR dips, loss-of-light, flaps) that
//! are part of the simulated world and flow through the telemetry
//! pipeline; chaos here models *runtime* faults (worker panics, kills,
//! corrupted checkpoint files, stalled solves) that the harness must
//! absorb without changing any result bytes.

use rwc_util::rng::Xoshiro256;
use std::collections::BTreeSet;

/// A deterministic fault-injection schedule for one sweep.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed all injection draws derive from.
    pub seed: u64,
    /// Chunk ids whose early attempts panic.
    pub panic_chunks: BTreeSet<u64>,
    /// Kill the run (checkpoint + stop) after this many fresh chunk
    /// completions.
    pub kill_after_chunks: Option<u64>,
    /// How many attempts of a poisoned chunk panic before it succeeds.
    /// The default 1 means: first attempt panics, first retry succeeds.
    pub poison_attempts: u32,
}

impl ChaosPlan {
    /// An empty plan (no injections) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, panic_chunks: BTreeSet::new(), kill_after_chunks: None, poison_attempts: 1 }
    }

    /// Picks `n` distinct chunks out of `n_chunks` to poison, seeded.
    pub fn with_panics(mut self, n: usize, n_chunks: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ 0x000C_4A05);
        while self.panic_chunks.len() < n.min(n_chunks as usize) {
            let pick = (rng.uniform() * n_chunks as f64) as u64;
            self.panic_chunks.insert(pick.min(n_chunks.saturating_sub(1)));
        }
        self
    }

    /// Poisons one specific chunk.
    pub fn with_panic_chunk(mut self, chunk: u64) -> Self {
        self.panic_chunks.insert(chunk);
        self
    }

    /// Kills the run after `n` fresh chunk completions.
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after_chunks = Some(n);
        self
    }

    /// Keeps poisoned chunks panicking for their first `n` attempts.
    pub fn with_poison_attempts(mut self, n: u32) -> Self {
        self.poison_attempts = n;
        self
    }

    /// Should this `(chunk, attempt)` panic? Attempts are 0-based.
    pub fn should_panic(&self, chunk: u64, attempt: u32) -> bool {
        attempt < self.poison_attempts && self.panic_chunks.contains(&chunk)
    }
}

/// Flips one bit of one seeded byte — models silent on-disk corruption.
/// The result must always be rejected by the checkpoint loader (as a
/// parse error, checksum mismatch, or version mismatch).
pub fn corrupt_bit_flip(text: &str, seed: u64) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xB17_F11);
    let idx = (rng.uniform() * bytes.len() as f64) as usize % bytes.len();
    bytes[idx] ^= 0x01;
    // The flip may produce invalid UTF-8; lossy conversion still yields a
    // string the loader must reject (the checksum no longer matches).
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Truncates the file at a seeded point — models a crash mid-write on a
/// filesystem without the atomic-rename guarantee.
pub fn corrupt_truncate(text: &str, seed: u64) -> String {
    if text.is_empty() {
        return String::new();
    }
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x7A_C47E);
    let keep = 1 + (rng.uniform() * (text.len() - 1) as f64) as usize;
    let mut cut = keep.min(text.len() - 1);
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut.max(1)].to_string()
}

/// Rewrites the envelope version to a future one — models a checkpoint
/// from a newer build that this binary must refuse to load.
pub fn corrupt_version_bump(text: &str) -> String {
    let needle = format!("\"version\":{}", crate::checkpoint::CHECKPOINT_VERSION);
    let bumped = format!("\"version\":{}", crate::checkpoint::CHECKPOINT_VERSION + 1);
    text.replacen(&needle, &bumped, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_in_seed() {
        let a = ChaosPlan::new(7).with_panics(3, 16);
        let b = ChaosPlan::new(7).with_panics(3, 16);
        assert_eq!(a.panic_chunks, b.panic_chunks);
        assert_eq!(a.panic_chunks.len(), 3);
        assert!(a.panic_chunks.iter().all(|&c| c < 16));
    }

    #[test]
    fn poison_attempts_gate_retries() {
        let plan = ChaosPlan::new(1).with_panic_chunk(4).with_poison_attempts(2);
        assert!(plan.should_panic(4, 0));
        assert!(plan.should_panic(4, 1));
        assert!(!plan.should_panic(4, 2));
        assert!(!plan.should_panic(5, 0));
    }

    #[test]
    fn corruption_helpers_change_the_text() {
        let text = r#"{"version":1,"checksum":"fnv1a64:0000000000000000","payload":{}}"#;
        assert_ne!(corrupt_bit_flip(text, 9), text);
        assert!(corrupt_truncate(text, 9).len() < text.len());
        assert!(corrupt_version_bump(text).contains("\"version\":2"));
    }
}
