//! Versioned, checksummed sweep checkpoints.
//!
//! A checkpoint is a JSON envelope
//!
//! ```json
//! {"version": 1, "checksum": "fnv1a64:…", "payload": { … }}
//! ```
//!
//! whose payload captures sweep progress at **chunk granularity**: the
//! fingerprint of the run (fleet size, seed, chunk size, analysis mode),
//! every completed chunk's [`FleetAccumulator`] partial and per-chunk
//! metrics snapshot, plus the scenario round index and RNG/link cursors
//! for stream-resumable callers. Because links are generated independently
//! from `(seed, link_id)` and merges are slot-ordered, replaying the
//! missing chunks and merging them with the restored partials in chunk
//! order reproduces an uninterrupted run **byte for byte**.
//!
//! Integrity: the checksum is FNV-1a 64 over the canonical payload JSON.
//! The vendored `serde_json` writer/parser pair round-trips its own output
//! exactly (`to_string(&parse(s)?) == s`), so the loader re-serializes the
//! parsed payload and recomputes the hash — any bit flip or truncation
//! either breaks the JSON or breaks the hash, and both are rejected with a
//! typed [`CheckpointError`] instead of a panic or silent corruption.
//!
//! Durability: writes go to a sibling temp file first and are moved into
//! place with `rename`, which is atomic on POSIX filesystems — a kill
//! mid-write leaves either the previous complete checkpoint or a stray
//! temp file, never a torn one.

use rwc_obs::MetricsSnapshot;
use rwc_telemetry::FleetAccumulator;
use serde::{map_field, Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Current checkpoint format version. Bumped on any payload schema change;
/// loaders reject other versions rather than guessing.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a 64-bit hash — small, dependency-free, and more than strong
/// enough to catch accidental corruption (it is not a cryptographic MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a checkpoint could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file is not a valid checkpoint: unparseable JSON, missing
    /// envelope fields, checksum mismatch, or a payload that does not
    /// deserialize. Covers bit flips and truncation.
    Corrupt(String),
    /// The file is a checkpoint from another format version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The checkpoint is valid but belongs to a different run (fingerprint
    /// disagrees — different fleet, seed, chunk size or analysis mode).
    ConfigMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint rejected: {msg}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} is not supported (this build reads version {expected})"
            ),
            CheckpointError::ConfigMismatch(msg) => {
                write!(f, "checkpoint belongs to a different run: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Identity of a sweep: a checkpoint may only resume a run whose
/// fingerprint matches exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFingerprint {
    /// Total links in the fleet.
    pub n_links: u64,
    /// Links per chunk (fixed for the lifetime of the checkpoint so a
    /// resume with a different thread count still replays the same
    /// chunk boundaries).
    pub chunk_size: u64,
    /// Master fleet seed.
    pub seed: u64,
    /// Analysis path label (`"fused"` / `"legacy"`).
    pub mode: String,
}

impl SweepFingerprint {
    /// Checks that `other` (from a loaded checkpoint) matches this run.
    pub fn verify(&self, other: &SweepFingerprint) -> Result<(), CheckpointError> {
        if self == other {
            return Ok(());
        }
        Err(CheckpointError::ConfigMismatch(format!(
            "expected {self:?}, checkpoint carries {other:?}"
        )))
    }
}

/// One completed chunk: its id, its accumulator partial and (when metrics
/// collection is on) the metrics its links recorded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkCheckpoint {
    /// Chunk index (`links [id·chunk_size, …)`).
    pub id: u64,
    /// Slot-ordered accumulator partial for the chunk's links.
    pub accumulator: FleetAccumulator,
    /// Per-chunk metrics partial, absent when the sweep runs unobserved.
    pub metrics: Option<MetricsSnapshot>,
}

/// The checkpoint payload: everything needed to continue a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Identity of the run this checkpoint belongs to.
    pub fingerprint: SweepFingerprint,
    /// Completed chunks, sorted by id.
    pub chunks: Vec<ChunkCheckpoint>,
    /// Scenario TE-round cursor (0 for pure fleet sweeps); carried so the
    /// same envelope serves scenario-driver resume.
    pub round_index: u64,
    /// RNG stream state for stream-resumable generation (see
    /// [`rwc_telemetry::SnrCursor`]); fleet sweeps regenerate links from
    /// `(seed, link_id)` and leave this `None`.
    pub rng_state: Option<[u64; 4]>,
    /// First link id not covered by a completed chunk — the link cursor.
    pub next_link: u64,
}

impl SweepCheckpoint {
    /// An empty checkpoint for a fresh run.
    pub fn new(fingerprint: SweepFingerprint) -> Self {
        Self { fingerprint, chunks: Vec::new(), round_index: 0, rng_state: None, next_link: 0 }
    }

    /// Ids of the chunks this checkpoint has already completed.
    pub fn completed_ids(&self) -> Vec<u64> {
        self.chunks.iter().map(|c| c.id).collect()
    }
}

/// Serializes `checkpoint` and writes it atomically: the envelope goes to
/// a sibling `.tmp` file which is then `rename`d over `path`.
pub fn write_atomic(path: &Path, checkpoint: &SweepCheckpoint) -> Result<(), CheckpointError> {
    let payload = serde_json::to_string(checkpoint)
        .map_err(|e| CheckpointError::Io(format!("serialize: {e:?}")))?;
    let checksum = fnv1a64(payload.as_bytes());
    let envelope = format!(
        "{{\"version\":{CHECKPOINT_VERSION},\"checksum\":\"fnv1a64:{checksum:016x}\",\"payload\":{payload}}}"
    );
    let tmp = tmp_path(path);
    std::fs::write(&tmp, envelope)
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CheckpointError::Io(format!("rename into {}: {e}", path.display())))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Loads and verifies a checkpoint: envelope shape, format version,
/// checksum over the canonical payload bytes, then payload deserialization.
/// Every corruption mode (bit flip, truncation, version bump) maps to a
/// typed [`CheckpointError`].
pub fn load(path: &Path) -> Result<SweepCheckpoint, CheckpointError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    load_str(&text)
}

/// [`load`] over already-read bytes — the seam the corruption tests use.
pub fn load_str(text: &str) -> Result<SweepCheckpoint, CheckpointError> {
    let envelope = serde_json::parse(text)
        .map_err(|e| CheckpointError::Corrupt(format!("unparseable envelope: {e:?}")))?;
    let map = envelope
        .as_map()
        .ok_or_else(|| CheckpointError::Corrupt("envelope is not a JSON object".into()))?;
    let version = map_field(map, "version")
        .as_u64()
        .ok_or_else(|| CheckpointError::Corrupt("envelope has no numeric `version`".into()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let recorded = map_field(map, "checksum")
        .as_str()
        .ok_or_else(|| CheckpointError::Corrupt("envelope has no `checksum` string".into()))?;
    let payload = match map_field(map, "payload") {
        Content::Null => return Err(CheckpointError::Corrupt("envelope has no `payload`".into())),
        p => p,
    };
    // The writer/parser pair round-trips exactly, so re-serializing the
    // parsed payload reproduces the very bytes the writer hashed.
    let canonical = serde_json::to_string(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("re-serialize payload: {e:?}")))?;
    let actual = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    if actual != recorded {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: recorded {recorded}, computed {actual}"
        )));
    }
    SweepCheckpoint::from_content(payload)
        .map_err(|e: DeError| CheckpointError::Corrupt(format!("payload: {e}")))
}

/// Which epoch a [`CheckpointStore`] load was satisfied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointEpoch {
    /// The most recently written checkpoint.
    Current,
    /// The rotated previous epoch — the current one was missing or
    /// rejected.
    Previous,
}

/// Outcome of a [`CheckpointStore::load_or_fallback`] call.
///
/// `rejected` lists the typed errors of every epoch that was present but
/// disqualified (corrupt, wrong version, foreign fingerprint) — callers
/// count these instead of silently starting over.
#[derive(Debug)]
pub enum StoreLoad {
    /// No usable checkpoint: both epochs missing or rejected. Start fresh.
    Fresh {
        /// Errors of the epochs that existed but did not load.
        rejected: Vec<CheckpointError>,
    },
    /// A checkpoint loaded and (when a fingerprint was supplied) verified.
    Loaded {
        /// The restored checkpoint.
        checkpoint: SweepCheckpoint,
        /// Which epoch satisfied the load.
        epoch: CheckpointEpoch,
        /// Errors of newer epochs that were skipped over.
        rejected: Vec<CheckpointError>,
    },
}

/// A two-epoch checkpoint slot: the current file plus a rotated `.prev`.
///
/// [`write_atomic`] already guarantees a single file is never torn; the
/// store extends that to *silent corruption after the write* (bit rot, a
/// truncating copy, an operator editing the file): each write first
/// rotates the current epoch to `<path>.prev`, so a later load that
/// rejects the current epoch falls back one interval of progress instead
/// of starting from zero. A kill between the rotate and the write leaves
/// only the `.prev` epoch — which is exactly the fallback path.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `path`; the previous epoch lives at
    /// `<path>.prev`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The current-epoch file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The previous-epoch file.
    pub fn prev_path(&self) -> PathBuf {
        let mut name = self.path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".prev");
        self.path.with_file_name(name)
    }

    /// Rotates the current epoch (if any) to `.prev`, then writes
    /// `checkpoint` atomically as the new current epoch.
    pub fn write(&self, checkpoint: &SweepCheckpoint) -> Result<(), CheckpointError> {
        if self.path.exists() {
            let prev = self.prev_path();
            std::fs::rename(&self.path, &prev)
                .map_err(|e| CheckpointError::Io(format!("rotate into {}: {e}", prev.display())))?;
        }
        write_atomic(&self.path, checkpoint)
    }

    /// Loads the newest epoch that parses, verifies, and (when given)
    /// matches `fingerprint`. Missing files are skipped silently; files
    /// that exist but fail are recorded in `rejected`. Only returns `Err`
    /// for I/O trouble reading a file that exists.
    pub fn load_or_fallback(
        &self,
        fingerprint: Option<&SweepFingerprint>,
    ) -> Result<StoreLoad, CheckpointError> {
        let mut rejected = Vec::new();
        for (epoch, path) in
            [(CheckpointEpoch::Current, self.path.clone()), (CheckpointEpoch::Previous, self.prev_path())]
        {
            if !path.exists() {
                continue;
            }
            match load(&path).and_then(|cp| {
                if let Some(fp) = fingerprint {
                    fp.verify(&cp.fingerprint)?;
                }
                Ok(cp)
            }) {
                Ok(checkpoint) => {
                    return Ok(StoreLoad::Loaded { checkpoint, epoch, rejected });
                }
                Err(e @ CheckpointError::Io(_)) => return Err(e),
                Err(e) => rejected.push(e),
            }
        }
        Ok(StoreLoad::Fresh { rejected })
    }

    /// Removes both epochs (ignoring files that are already gone).
    pub fn clear(&self) {
        std::fs::remove_file(&self.path).ok();
        std::fs::remove_file(self.prev_path()).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fingerprint() -> SweepFingerprint {
        SweepFingerprint { n_links: 40, chunk_size: 5, seed: 7, mode: "fused".into() }
    }

    fn sample_checkpoint() -> SweepCheckpoint {
        let mut cp = SweepCheckpoint::new(fingerprint());
        cp.chunks.push(ChunkCheckpoint {
            id: 0,
            accumulator: FleetAccumulator::new(),
            metrics: None,
        });
        cp.round_index = 3;
        cp.rng_state = Some([1, 2, 3, 4]);
        cp.next_link = 5;
        cp
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values of the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn write_load_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_roundtrip_{}.json", std::process::id()));
        let cp = sample_checkpoint();
        write_atomic(&path, &cp).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.completed_ids(), cp.completed_ids());
        assert_eq!(back.round_index, 3);
        assert_eq!(back.rng_state, Some([1, 2, 3, 4]));
        assert_eq!(back.next_link, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_temp_file_left_behind() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_tmpcheck_{}.json", std::process::id()));
        write_atomic(&path, &sample_checkpoint()).unwrap();
        assert!(!tmp_path(&path).exists(), "temp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    fn envelope_text() -> String {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_envelope_{}.json", std::process::id()));
        write_atomic(&path, &sample_checkpoint()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        text
    }

    #[test]
    fn bit_flip_is_rejected() {
        let text = envelope_text();
        let mut bytes = text.clone().into_bytes();
        // Flip a bit inside the payload (past the envelope prelude).
        let idx = text.find("payload").unwrap() + 20;
        bytes[idx] ^= 0x01;
        if let Ok(flipped) = String::from_utf8(bytes) {
            assert!(load_str(&flipped).is_err(), "bit flip must not load");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = envelope_text();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(load_str(&text[..cut]).is_err(), "truncation at {cut} must not load");
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let text = envelope_text();
        let bumped = text.replacen(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            &format!("\"version\":{}", CHECKPOINT_VERSION + 1),
            1,
        );
        match load_str(&bumped) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn checksum_tamper_is_rejected() {
        let text = envelope_text();
        // Retarget the recorded checksum without touching the payload.
        let tampered = text.replacen("fnv1a64:", "fnv1a64:0", 1);
        assert!(matches!(load_str(&tampered), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let mine = fingerprint();
        let mut other = fingerprint();
        other.seed = 8;
        assert!(mine.verify(&fingerprint()).is_ok());
        assert!(matches!(mine.verify(&other), Err(CheckpointError::ConfigMismatch(_))));
    }

    #[test]
    fn missing_file_is_io() {
        let err = load(Path::new("/definitely/not/here.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let path = std::env::temp_dir()
            .join(format!("rwc_store_{tag}_{}.json", std::process::id()));
        let store = CheckpointStore::new(path);
        store.clear();
        store
    }

    #[test]
    fn store_rotates_epochs_and_loads_current() {
        let store = temp_store("rotate");
        let mut a = sample_checkpoint();
        a.round_index = 1;
        let mut b = sample_checkpoint();
        b.round_index = 2;
        store.write(&a).unwrap();
        store.write(&b).unwrap();
        assert!(store.prev_path().exists(), "first epoch must rotate to .prev");
        match store.load_or_fallback(Some(&fingerprint())).unwrap() {
            StoreLoad::Loaded { checkpoint, epoch, rejected } => {
                assert_eq!(checkpoint.round_index, 2);
                assert_eq!(epoch, CheckpointEpoch::Current);
                assert!(rejected.is_empty());
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        store.clear();
    }

    #[test]
    fn store_falls_back_when_current_is_corrupt() {
        let store = temp_store("fallback");
        let mut a = sample_checkpoint();
        a.round_index = 1;
        let mut b = sample_checkpoint();
        b.round_index = 2;
        store.write(&a).unwrap();
        store.write(&b).unwrap();
        // Corrupt the current epoch in place; the previous must satisfy.
        let text = std::fs::read_to_string(store.path()).unwrap();
        std::fs::write(store.path(), crate::chaos::corrupt_truncate(&text, 3)).unwrap();
        match store.load_or_fallback(Some(&fingerprint())).unwrap() {
            StoreLoad::Loaded { checkpoint, epoch, rejected } => {
                assert_eq!(checkpoint.round_index, 1);
                assert_eq!(epoch, CheckpointEpoch::Previous);
                assert_eq!(rejected.len(), 1);
            }
            other => panic!("expected Previous-epoch load, got {other:?}"),
        }
        store.clear();
    }

    #[test]
    fn store_is_fresh_when_both_epochs_fail() {
        let store = temp_store("fresh");
        store.write(&sample_checkpoint()).unwrap();
        store.write(&sample_checkpoint()).unwrap();
        for path in [store.path().to_path_buf(), store.prev_path()] {
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, crate::chaos::corrupt_version_bump(&text)).unwrap();
        }
        match store.load_or_fallback(None).unwrap() {
            StoreLoad::Fresh { rejected } => {
                assert_eq!(rejected.len(), 2);
                assert!(rejected
                    .iter()
                    .all(|e| matches!(e, CheckpointError::VersionMismatch { .. })));
            }
            other => panic!("expected Fresh, got {other:?}"),
        }
        store.clear();
    }

    #[test]
    fn store_with_no_files_is_fresh_and_clean() {
        let store = temp_store("none");
        match store.load_or_fallback(None).unwrap() {
            StoreLoad::Fresh { rejected } => assert!(rejected.is_empty()),
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn store_rejects_foreign_fingerprint_then_falls_back() {
        let store = temp_store("foreign");
        store.write(&sample_checkpoint()).unwrap();
        let mut foreign = fingerprint();
        foreign.seed = 999;
        let mut cp = SweepCheckpoint::new(foreign);
        cp.round_index = 9;
        store.write(&cp).unwrap();
        match store.load_or_fallback(Some(&fingerprint())).unwrap() {
            StoreLoad::Loaded { checkpoint, epoch, rejected } => {
                assert_eq!(epoch, CheckpointEpoch::Previous);
                assert_eq!(checkpoint.fingerprint, fingerprint());
                assert!(matches!(rejected[0], CheckpointError::ConfigMismatch(_)));
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        store.clear();
    }
}
