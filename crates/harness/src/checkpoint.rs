//! Versioned, checksummed sweep checkpoints.
//!
//! A checkpoint is a JSON envelope
//!
//! ```json
//! {"version": 1, "checksum": "fnv1a64:…", "payload": { … }}
//! ```
//!
//! whose payload captures sweep progress at **chunk granularity**: the
//! fingerprint of the run (fleet size, seed, chunk size, analysis mode),
//! every completed chunk's [`FleetAccumulator`] partial and per-chunk
//! metrics snapshot, plus the scenario round index and RNG/link cursors
//! for stream-resumable callers. Because links are generated independently
//! from `(seed, link_id)` and merges are slot-ordered, replaying the
//! missing chunks and merging them with the restored partials in chunk
//! order reproduces an uninterrupted run **byte for byte**.
//!
//! Integrity: the checksum is FNV-1a 64 over the canonical payload JSON.
//! The vendored `serde_json` writer/parser pair round-trips its own output
//! exactly (`to_string(&parse(s)?) == s`), so the loader re-serializes the
//! parsed payload and recomputes the hash — any bit flip or truncation
//! either breaks the JSON or breaks the hash, and both are rejected with a
//! typed [`CheckpointError`] instead of a panic or silent corruption.
//!
//! Durability: writes go to a sibling temp file first and are moved into
//! place with `rename`, which is atomic on POSIX filesystems — a kill
//! mid-write leaves either the previous complete checkpoint or a stray
//! temp file, never a torn one.

use rwc_obs::MetricsSnapshot;
use rwc_telemetry::FleetAccumulator;
use serde::{map_field, Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Current checkpoint format version. Bumped on any payload schema change;
/// loaders reject other versions rather than guessing.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a 64-bit hash — small, dependency-free, and more than strong
/// enough to catch accidental corruption (it is not a cryptographic MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a checkpoint could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file is not a valid checkpoint: unparseable JSON, missing
    /// envelope fields, checksum mismatch, or a payload that does not
    /// deserialize. Covers bit flips and truncation.
    Corrupt(String),
    /// The file is a checkpoint from another format version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The checkpoint is valid but belongs to a different run (fingerprint
    /// disagrees — different fleet, seed, chunk size or analysis mode).
    ConfigMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint rejected: {msg}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} is not supported (this build reads version {expected})"
            ),
            CheckpointError::ConfigMismatch(msg) => {
                write!(f, "checkpoint belongs to a different run: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Identity of a sweep: a checkpoint may only resume a run whose
/// fingerprint matches exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFingerprint {
    /// Total links in the fleet.
    pub n_links: u64,
    /// Links per chunk (fixed for the lifetime of the checkpoint so a
    /// resume with a different thread count still replays the same
    /// chunk boundaries).
    pub chunk_size: u64,
    /// Master fleet seed.
    pub seed: u64,
    /// Analysis path label (`"fused"` / `"legacy"`).
    pub mode: String,
}

impl SweepFingerprint {
    /// Checks that `other` (from a loaded checkpoint) matches this run.
    pub fn verify(&self, other: &SweepFingerprint) -> Result<(), CheckpointError> {
        if self == other {
            return Ok(());
        }
        Err(CheckpointError::ConfigMismatch(format!(
            "expected {self:?}, checkpoint carries {other:?}"
        )))
    }
}

/// One completed chunk: its id, its accumulator partial and (when metrics
/// collection is on) the metrics its links recorded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkCheckpoint {
    /// Chunk index (`links [id·chunk_size, …)`).
    pub id: u64,
    /// Slot-ordered accumulator partial for the chunk's links.
    pub accumulator: FleetAccumulator,
    /// Per-chunk metrics partial, absent when the sweep runs unobserved.
    pub metrics: Option<MetricsSnapshot>,
}

/// The checkpoint payload: everything needed to continue a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Identity of the run this checkpoint belongs to.
    pub fingerprint: SweepFingerprint,
    /// Completed chunks, sorted by id.
    pub chunks: Vec<ChunkCheckpoint>,
    /// Scenario TE-round cursor (0 for pure fleet sweeps); carried so the
    /// same envelope serves scenario-driver resume.
    pub round_index: u64,
    /// RNG stream state for stream-resumable generation (see
    /// [`rwc_telemetry::SnrCursor`]); fleet sweeps regenerate links from
    /// `(seed, link_id)` and leave this `None`.
    pub rng_state: Option<[u64; 4]>,
    /// First link id not covered by a completed chunk — the link cursor.
    pub next_link: u64,
}

impl SweepCheckpoint {
    /// An empty checkpoint for a fresh run.
    pub fn new(fingerprint: SweepFingerprint) -> Self {
        Self { fingerprint, chunks: Vec::new(), round_index: 0, rng_state: None, next_link: 0 }
    }

    /// Ids of the chunks this checkpoint has already completed.
    pub fn completed_ids(&self) -> Vec<u64> {
        self.chunks.iter().map(|c| c.id).collect()
    }
}

/// Serializes `checkpoint` and writes it atomically: the envelope goes to
/// a sibling `.tmp` file which is then `rename`d over `path`.
pub fn write_atomic(path: &Path, checkpoint: &SweepCheckpoint) -> Result<(), CheckpointError> {
    let payload = serde_json::to_string(checkpoint)
        .map_err(|e| CheckpointError::Io(format!("serialize: {e:?}")))?;
    let checksum = fnv1a64(payload.as_bytes());
    let envelope = format!(
        "{{\"version\":{CHECKPOINT_VERSION},\"checksum\":\"fnv1a64:{checksum:016x}\",\"payload\":{payload}}}"
    );
    let tmp = tmp_path(path);
    std::fs::write(&tmp, envelope)
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CheckpointError::Io(format!("rename into {}: {e}", path.display())))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Loads and verifies a checkpoint: envelope shape, format version,
/// checksum over the canonical payload bytes, then payload deserialization.
/// Every corruption mode (bit flip, truncation, version bump) maps to a
/// typed [`CheckpointError`].
pub fn load(path: &Path) -> Result<SweepCheckpoint, CheckpointError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    load_str(&text)
}

/// [`load`] over already-read bytes — the seam the corruption tests use.
pub fn load_str(text: &str) -> Result<SweepCheckpoint, CheckpointError> {
    let envelope = serde_json::parse(text)
        .map_err(|e| CheckpointError::Corrupt(format!("unparseable envelope: {e:?}")))?;
    let map = envelope
        .as_map()
        .ok_or_else(|| CheckpointError::Corrupt("envelope is not a JSON object".into()))?;
    let version = map_field(map, "version")
        .as_u64()
        .ok_or_else(|| CheckpointError::Corrupt("envelope has no numeric `version`".into()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let recorded = map_field(map, "checksum")
        .as_str()
        .ok_or_else(|| CheckpointError::Corrupt("envelope has no `checksum` string".into()))?;
    let payload = match map_field(map, "payload") {
        Content::Null => return Err(CheckpointError::Corrupt("envelope has no `payload`".into())),
        p => p,
    };
    // The writer/parser pair round-trips exactly, so re-serializing the
    // parsed payload reproduces the very bytes the writer hashed.
    let canonical = serde_json::to_string(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("re-serialize payload: {e:?}")))?;
    let actual = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    if actual != recorded {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: recorded {recorded}, computed {actual}"
        )));
    }
    SweepCheckpoint::from_content(payload)
        .map_err(|e: DeError| CheckpointError::Corrupt(format!("payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fingerprint() -> SweepFingerprint {
        SweepFingerprint { n_links: 40, chunk_size: 5, seed: 7, mode: "fused".into() }
    }

    fn sample_checkpoint() -> SweepCheckpoint {
        let mut cp = SweepCheckpoint::new(fingerprint());
        cp.chunks.push(ChunkCheckpoint {
            id: 0,
            accumulator: FleetAccumulator::new(),
            metrics: None,
        });
        cp.round_index = 3;
        cp.rng_state = Some([1, 2, 3, 4]);
        cp.next_link = 5;
        cp
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values of the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn write_load_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_roundtrip_{}.json", std::process::id()));
        let cp = sample_checkpoint();
        write_atomic(&path, &cp).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.completed_ids(), cp.completed_ids());
        assert_eq!(back.round_index, 3);
        assert_eq!(back.rng_state, Some([1, 2, 3, 4]));
        assert_eq!(back.next_link, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_temp_file_left_behind() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_tmpcheck_{}.json", std::process::id()));
        write_atomic(&path, &sample_checkpoint()).unwrap();
        assert!(!tmp_path(&path).exists(), "temp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    fn envelope_text() -> String {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rwc_cp_envelope_{}.json", std::process::id()));
        write_atomic(&path, &sample_checkpoint()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        text
    }

    #[test]
    fn bit_flip_is_rejected() {
        let text = envelope_text();
        let mut bytes = text.clone().into_bytes();
        // Flip a bit inside the payload (past the envelope prelude).
        let idx = text.find("payload").unwrap() + 20;
        bytes[idx] ^= 0x01;
        if let Ok(flipped) = String::from_utf8(bytes) {
            assert!(load_str(&flipped).is_err(), "bit flip must not load");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = envelope_text();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(load_str(&text[..cut]).is_err(), "truncation at {cut} must not load");
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let text = envelope_text();
        let bumped = text.replacen(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            &format!("\"version\":{}", CHECKPOINT_VERSION + 1),
            1,
        );
        match load_str(&bumped) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn checksum_tamper_is_rejected() {
        let text = envelope_text();
        // Retarget the recorded checksum without touching the payload.
        let tampered = text.replacen("fnv1a64:", "fnv1a64:0", 1);
        assert!(matches!(load_str(&tampered), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let mine = fingerprint();
        let mut other = fingerprint();
        other.seed = 8;
        assert!(mine.verify(&fingerprint()).is_ok());
        assert!(matches!(mine.verify(&other), Err(CheckpointError::ConfigMismatch(_))));
    }

    #[test]
    fn missing_file_is_io() {
        let err = load(Path::new("/definitely/not/here.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
