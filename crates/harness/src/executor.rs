//! The crash-safe, panic-isolated fleet-sweep executor.
//!
//! Work is the same atomic-counter chunk queue the bench driver always
//! used — `n_chunks ≈ 4 × workers` chunks of consecutive link ids, each
//! worker claiming the next index with a `fetch_add` — but the merge and
//! failure paths are hardened:
//!
//! - **poison-free handoff**: workers send `(chunk id, result)` over an
//!   mpsc channel to a collector instead of writing through a shared
//!   `Mutex` slot vector, so a panicking worker cannot poison anything
//!   another thread will later `.lock()`;
//! - **panic isolation**: each chunk attempt runs under `catch_unwind`; a
//!   panic re-queues the chunk *in place* with a jittered exponential
//!   backoff (the controller's `base × (1 ± jitter)` shape), up to a
//!   retry budget. Only a chunk that exhausts the budget fails the sweep,
//!   and then with a typed [`HarnessError`] naming the chunk;
//! - **checkpointing**: the collector snapshots completed chunks into a
//!   [`SweepCheckpoint`] every `every_chunks` completions, written
//!   atomically off the workers' path (they never wait on the write).
//!
//! Determinism: chunk results depend only on `(seed, link_id)` and the
//! final merge folds slots in ascending chunk order, so the accumulator
//! and merged metrics are byte-identical regardless of thread count,
//! retries, injected panics, or how many kill/resume cycles the sweep
//! went through — the invariant the resume proptests pin.

use crate::chaos::ChaosPlan;
use crate::checkpoint::{
    self, CheckpointError, ChunkCheckpoint, SweepCheckpoint, SweepFingerprint,
};
use rwc_obs::{Event, MetricsObserver, MetricsSnapshot, Observer};
use rwc_optics::ModulationTable;
use rwc_telemetry::{
    AnalysisMode, FleetAccumulator, FleetGenerator, FleetKernel, GenMode, LinkAnalysis,
};
use rwc_util::rng::Xoshiro256;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// What to sweep: the fleet, the table, and how.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec<'a> {
    /// The deterministic fleet.
    pub gen: &'a FleetGenerator,
    /// Ladder the links are analysed against.
    pub table: &'a ModulationTable,
    /// Fused or legacy per-link analysis.
    pub mode: AnalysisMode,
    /// Worker threads.
    pub n_threads: usize,
    /// Collect per-chunk metrics snapshots (kernel counters/events).
    pub collect_metrics: bool,
}

/// Retry behaviour for panicking chunks — the controller's jittered
/// backoff shape (`base × 2^(attempt−1) × (1 ± jitter)`, seeded draws).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per chunk after the first attempt. 0 = fail fast.
    pub budget: u32,
    /// Base backoff before the first retry.
    pub base_backoff: Duration,
    /// Fractional jitter in `[0, 1]` on every backoff draw.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { budget: 2, base_backoff: Duration::from_millis(2), jitter: 0.5, seed: 0x52_57_43 }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based) of `chunk` —
    /// deterministic in `(seed, chunk, attempt)`.
    pub fn backoff(&self, chunk: u64, attempt: u32) -> Duration {
        let exp = self.base_backoff.as_secs_f64() * f64::from(1u32 << (attempt - 1).min(16));
        if self.jitter == 0.0 {
            return Duration::from_secs_f64(exp);
        }
        let mut rng = Xoshiro256::seed_from_u64(
            self.seed
                .wrapping_add(chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(attempt)),
        );
        let scale = 1.0 + self.jitter * (2.0 * rng.uniform() - 1.0);
        Duration::from_secs_f64((exp * scale).max(0.0))
    }
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file (written atomically via temp + rename).
    pub path: PathBuf,
    /// Write after every this many chunk completions (the tick interval);
    /// a final checkpoint is always written when the sweep completes.
    pub every_chunks: u64,
}

/// Runtime knobs for one sweep.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Panic-retry policy.
    pub retry: RetryPolicy,
    /// Checkpointing, off by default.
    pub checkpoint: Option<CheckpointConfig>,
    /// Chaos injection, off by default.
    pub chaos: Option<ChaosPlan>,
    /// Sink for `harness.*` counters and events.
    pub observer: Arc<dyn Observer>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), checkpoint: None, chaos: None, observer: rwc_obs::noop() }
    }
}

/// Bookkeeping of one sweep run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Chunks in the sweep.
    pub chunks_total: u64,
    /// Chunks restored from the resume checkpoint.
    pub chunks_resumed: u64,
    /// Panic-triggered chunk retries.
    pub retries: u64,
    /// Checkpoints written (interval + final).
    pub checkpoints_written: u64,
    /// Panics the chaos plan injected.
    pub panics_injected: u64,
}

/// A completed sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// The slot-ordered fleet accumulator.
    pub accumulator: FleetAccumulator,
    /// Merged per-chunk metrics (when `collect_metrics`), chunk order.
    pub metrics: Option<MetricsSnapshot>,
    /// Run bookkeeping.
    pub stats: SweepStats,
}

/// How a sweep ended.
///
/// One value exists per sweep, so the size gap between the completed
/// result and the kill bookkeeping is irrelevant — no point boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SweepOutcome {
    /// Ran (or resumed) to completion.
    Completed(SweepResult),
    /// The chaos plan killed the run mid-sweep; a checkpoint covering
    /// `completed_chunks` was written if checkpointing is configured.
    Killed {
        /// Chunks completed (including restored ones) at the kill.
        completed_chunks: u64,
        /// Run bookkeeping up to the kill.
        stats: SweepStats,
    },
}

/// Why a sweep could not produce a result.
#[derive(Debug)]
pub enum HarnessError {
    /// Checkpoint I/O, corruption, version or fingerprint trouble.
    Checkpoint(CheckpointError),
    /// A chunk kept panicking past its retry budget.
    ChunkFailed {
        /// The chunk that failed.
        chunk: u64,
        /// Attempts spent (first run + retries).
        attempts: u32,
        /// The panic payload of the last attempt.
        message: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Checkpoint(e) => write!(f, "{e}"),
            HarnessError::ChunkFailed { chunk, attempts, message } => write!(
                f,
                "chunk {chunk} failed after {attempts} attempts (last panic: {message})"
            ),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Checkpoint(e) => Some(e),
            HarnessError::ChunkFailed { .. } => None,
        }
    }
}

impl From<CheckpointError> for HarnessError {
    fn from(e: CheckpointError) -> Self {
        HarnessError::Checkpoint(e)
    }
}

/// The chunk size the bench driver has always used: ~4 chunks per worker,
/// at least one link each.
pub fn chunk_size_for(n_links: usize, n_threads: usize) -> usize {
    n_links.div_ceil(n_threads.max(1) * 4).max(1)
}

/// The fingerprint's mode string covers both the analysis path and the
/// generation pipeline: resuming a checkpoint under a different generation
/// mode would merge byte-different traces, so the pair must match exactly.
/// Legacy-generation labels keep their pre-batch spelling, so checkpoints
/// written before `GenMode` existed still resume.
fn mode_label(mode: AnalysisMode, gen_mode: GenMode) -> &'static str {
    match (mode, gen_mode) {
        (AnalysisMode::Fused, GenMode::Legacy) => "fused",
        (AnalysisMode::Legacy, GenMode::Legacy) => "legacy",
        (AnalysisMode::Fused, GenMode::Batch) => "fused+batchgen",
        (AnalysisMode::Legacy, GenMode::Batch) => "legacy+batchgen",
    }
}

struct ChunkDone {
    acc: FleetAccumulator,
    metrics: Option<MetricsSnapshot>,
}

enum WorkerMsg {
    Done(usize, Box<ChunkDone>),
    Retry { chunk: usize, attempt: u32, injected: bool },
    Failed { chunk: usize, attempts: u32, message: String },
}

/// Runs one chunk attempt. Panics (including injected ones) unwind out of
/// here and are caught by the worker loop.
fn process_chunk(
    spec: &SweepSpec<'_>,
    kernel: &mut FleetKernel,
    chunk: usize,
    chunk_size: usize,
    attempt: u32,
    chaos: Option<&ChaosPlan>,
    observer: &Arc<dyn Observer>,
) -> ChunkDone {
    if let Some(plan) = chaos {
        if plan.should_panic(chunk as u64, attempt) {
            observer.incr("harness.chaos_panics", 1);
            panic!("chaos: injected panic in chunk {chunk} (attempt {attempt})");
        }
    }
    // A fresh per-attempt observer keeps the metrics of failed attempts
    // out of the sweep: only the successful attempt's counts survive.
    let chunk_obs = spec.collect_metrics.then(|| Arc::new(MetricsObserver::new()));
    match &chunk_obs {
        Some(obs) => kernel.set_observer(obs.clone() as Arc<dyn Observer>),
        None => kernel.set_observer(rwc_obs::noop()),
    }
    let lo = chunk * chunk_size;
    let hi = (lo + chunk_size).min(spec.gen.n_links());
    let mut acc = FleetAccumulator::new();
    for link_id in lo..hi {
        match spec.mode {
            AnalysisMode::Fused => {
                acc.push(&kernel.analyze_generated(spec.gen, link_id, spec.table));
            }
            AnalysisMode::Legacy => {
                let link = spec.gen.link(link_id);
                acc.push(&LinkAnalysis::new(&link.trace, spec.table));
            }
        }
    }
    ChunkDone { acc, metrics: chunk_obs.map(|o| o.snapshot()) }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn build_checkpoint(
    fingerprint: &SweepFingerprint,
    slots: &[Option<ChunkDone>],
) -> SweepCheckpoint {
    let mut cp = SweepCheckpoint::new(fingerprint.clone());
    for (id, slot) in slots.iter().enumerate() {
        if let Some(done) = slot {
            cp.chunks.push(ChunkCheckpoint {
                id: id as u64,
                accumulator: done.acc.clone(),
                metrics: done.metrics.clone(),
            });
        }
    }
    let first_missing =
        slots.iter().position(Option::is_none).unwrap_or(slots.len()) as u64;
    cp.next_link = first_missing * fingerprint.chunk_size;
    cp
}

/// Runs a fleet sweep under the crash-safe runtime. `resume` restores a
/// previously written checkpoint (fingerprint-verified); the returned
/// result is byte-identical to an uninterrupted run.
pub fn run_fleet_sweep(
    spec: &SweepSpec<'_>,
    cfg: &ExecutorConfig,
    resume: Option<&SweepCheckpoint>,
) -> Result<SweepOutcome, HarnessError> {
    let n_links = spec.gen.n_links();
    let workers = spec.n_threads.max(1);
    // Resume replays the checkpoint's chunk boundaries even under a
    // different thread count — chunk ids must mean the same links.
    let chunk_size = match resume {
        Some(cp) => cp.fingerprint.chunk_size as usize,
        None => chunk_size_for(n_links, workers),
    };
    if chunk_size == 0 {
        return Err(CheckpointError::Corrupt("chunk_size 0 in checkpoint".into()).into());
    }
    let fingerprint = SweepFingerprint {
        n_links: n_links as u64,
        chunk_size: chunk_size as u64,
        seed: spec.gen.config().seed,
        mode: mode_label(spec.mode, spec.gen.gen_mode()).into(),
    };
    let n_chunks = n_links.div_ceil(chunk_size);
    let mut slots: Vec<Option<ChunkDone>> = (0..n_chunks).map(|_| None).collect();
    let mut stats = SweepStats { chunks_total: n_chunks as u64, ..SweepStats::default() };

    if let Some(cp) = resume {
        fingerprint.verify(&cp.fingerprint)?;
        for chunk in &cp.chunks {
            let id = chunk.id as usize;
            if id >= n_chunks {
                return Err(CheckpointError::Corrupt(format!(
                    "chunk id {id} out of range (sweep has {n_chunks} chunks)"
                ))
                .into());
            }
            slots[id] =
                Some(ChunkDone { acc: chunk.accumulator.clone(), metrics: chunk.metrics.clone() });
        }
        stats.chunks_resumed = cp.chunks.len() as u64;
        cfg.observer.incr("harness.resume_verified", 1);
        cfg.observer.event(&Event::ResumeVerified { restored_chunks: stats.chunks_resumed });
    }

    let pending: Vec<usize> =
        (0..n_chunks).filter(|&c| slots[c].is_none()).collect();
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let kill_budget = cfg.chaos.as_ref().and_then(|p| p.kill_after_chunks);

    let mut first_failure: Option<HarnessError> = None;
    let mut killed = false;

    std::thread::scope(|scope| -> Result<(), HarnessError> {
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        for _ in 0..workers {
            let tx = tx.clone();
            let pending = &pending;
            let next = &next;
            let stop = &stop;
            let cfg = &cfg;
            let spec = &spec;
            scope.spawn(move || {
                let mut kernel = FleetKernel::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&chunk) = pending.get(idx) else { break };
                    let mut attempt: u32 = 0;
                    loop {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            process_chunk(
                                spec,
                                &mut kernel,
                                chunk,
                                chunk_size,
                                attempt,
                                cfg.chaos.as_ref(),
                                &cfg.observer,
                            )
                        }));
                        match outcome {
                            Ok(done) => {
                                tx.send(WorkerMsg::Done(chunk, Box::new(done))).ok();
                                break;
                            }
                            Err(payload) => {
                                let message = panic_message(payload);
                                let injected = message.starts_with("chaos:");
                                if attempt >= cfg.retry.budget {
                                    tx.send(WorkerMsg::Failed {
                                        chunk,
                                        attempts: attempt + 1,
                                        message,
                                    })
                                    .ok();
                                    break;
                                }
                                attempt += 1;
                                tx.send(WorkerMsg::Retry { chunk, attempt, injected }).ok();
                                std::thread::sleep(
                                    cfg.retry.backoff(chunk as u64, attempt),
                                );
                            }
                        }
                    }
                }
            });
        }
        drop(tx);

        // The collector owns the slots and the checkpoint file; workers
        // never block on either.
        let mut completed = stats.chunks_resumed;
        let mut fresh_completed: u64 = 0;
        let mut since_checkpoint: u64 = 0;
        for msg in rx {
            match msg {
                WorkerMsg::Done(chunk, done) => {
                    if killed {
                        continue; // drain without recording past the kill
                    }
                    slots[chunk] = Some(*done);
                    completed += 1;
                    fresh_completed += 1;
                    since_checkpoint += 1;
                    if let Some(kill_after) = kill_budget {
                        if fresh_completed >= kill_after {
                            killed = true;
                            stop.store(true, Ordering::Relaxed);
                            cfg.observer.incr("harness.chaos_kills", 1);
                            if let Some(ckpt) = &cfg.checkpoint {
                                let cp = build_checkpoint(&fingerprint, &slots);
                                checkpoint::write_atomic(&ckpt.path, &cp)?;
                                stats.checkpoints_written += 1;
                                cfg.observer.incr("harness.checkpoints_written", 1);
                                cfg.observer.event(&Event::CheckpointWritten {
                                    completed_chunks: completed,
                                });
                            }
                            continue;
                        }
                    }
                    if let Some(ckpt) = &cfg.checkpoint {
                        if since_checkpoint >= ckpt.every_chunks && completed < n_chunks as u64 {
                            since_checkpoint = 0;
                            let cp = build_checkpoint(&fingerprint, &slots);
                            checkpoint::write_atomic(&ckpt.path, &cp)?;
                            stats.checkpoints_written += 1;
                            cfg.observer.incr("harness.checkpoints_written", 1);
                            cfg.observer.event(&Event::CheckpointWritten {
                                completed_chunks: completed,
                            });
                        }
                    }
                }
                WorkerMsg::Retry { chunk, attempt, injected } => {
                    stats.retries += 1;
                    if injected {
                        stats.panics_injected += 1;
                    }
                    cfg.observer.incr("harness.chunk_retries", 1);
                    cfg.observer.event(&Event::ChunkRetried {
                        chunk: chunk as u64,
                        attempt: u64::from(attempt),
                    });
                }
                WorkerMsg::Failed { chunk, attempts, message } => {
                    if first_failure.is_none() {
                        cfg.observer.incr("harness.chunk_failures", 1);
                        first_failure = Some(HarnessError::ChunkFailed {
                            chunk: chunk as u64,
                            attempts,
                            message,
                        });
                    }
                    stop.store(true, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    })?;

    if let Some(err) = first_failure {
        return Err(err);
    }
    if killed {
        let completed_chunks = slots.iter().filter(|s| s.is_some()).count() as u64;
        return Ok(SweepOutcome::Killed { completed_chunks, stats });
    }

    // Final checkpoint: a completed run leaves a full snapshot behind so a
    // re-launch can verify instead of recompute.
    if let Some(ckpt) = &cfg.checkpoint {
        let cp = build_checkpoint(&fingerprint, &slots);
        checkpoint::write_atomic(&ckpt.path, &cp)?;
        stats.checkpoints_written += 1;
        cfg.observer.incr("harness.checkpoints_written", 1);
        cfg.observer
            .event(&Event::CheckpointWritten { completed_chunks: n_chunks as u64 });
    }

    // Slot-ordered merge: identical to a sequential pass over link ids.
    let mut accumulator = FleetAccumulator::new();
    let mut metrics: Option<MetricsSnapshot> = None;
    for (chunk, slot) in slots.into_iter().enumerate() {
        // An empty slot past the kill/failure gates above means the
        // executor lost track of a chunk — surface it as a typed failure
        // rather than poisoning whoever embeds the harness.
        let Some(done) = slot else {
            return Err(HarnessError::ChunkFailed {
                chunk: chunk as u64,
                attempts: 0,
                message: "chunk never completed despite a clean sweep".to_string(),
            });
        };
        accumulator.merge(done.acc);
        if let Some(m) = done.metrics {
            match &mut metrics {
                None => metrics = Some(m),
                Some(merged) => merged.merge(&m),
            }
        }
    }
    Ok(SweepOutcome::Completed(SweepResult { accumulator, metrics, stats }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_telemetry::FleetConfig;

    fn tiny_fleet() -> FleetGenerator {
        FleetGenerator::new(FleetConfig {
            n_fibers: 2,
            wavelengths_per_fiber: 8,
            horizon: rwc_util::time::SimDuration::from_days(20),
            ..FleetConfig::paper()
        })
    }

    fn spec<'a>(
        gen: &'a FleetGenerator,
        table: &'a ModulationTable,
        threads: usize,
    ) -> SweepSpec<'a> {
        SweepSpec { gen, table, mode: AnalysisMode::Fused, n_threads: threads, collect_metrics: true }
    }

    fn completed(outcome: SweepOutcome) -> SweepResult {
        match outcome {
            SweepOutcome::Completed(r) => r,
            SweepOutcome::Killed { .. } => panic!("unexpected kill"),
        }
    }

    #[test]
    fn sweep_matches_sequential_fleet_analysis() {
        let gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let sequential = gen.fleet_analysis(&table);
        for threads in [1, 3] {
            let out = run_fleet_sweep(&spec(&gen, &table, threads), &ExecutorConfig::default(), None)
                .unwrap();
            let result = completed(out);
            assert_eq!(
                serde_json::to_string(&result.accumulator).unwrap(),
                serde_json::to_string(&sequential).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn injected_panic_degrades_to_retry_not_failure() {
        let gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let reference = completed(
            run_fleet_sweep(&spec(&gen, &table, 2), &ExecutorConfig::default(), None).unwrap(),
        );
        let cfg = ExecutorConfig {
            chaos: Some(ChaosPlan::new(11).with_panic_chunk(1)),
            ..ExecutorConfig::default()
        };
        let result = completed(run_fleet_sweep(&spec(&gen, &table, 2), &cfg, None).unwrap());
        assert!(result.stats.retries >= 1);
        assert!(result.stats.panics_injected >= 1);
        assert_eq!(
            serde_json::to_string(&result.accumulator).unwrap(),
            serde_json::to_string(&reference.accumulator).unwrap(),
        );
        assert_eq!(
            result.metrics.as_ref().map(MetricsSnapshot::to_json),
            reference.metrics.as_ref().map(MetricsSnapshot::to_json),
        );
    }

    #[test]
    fn exhausted_retry_budget_is_a_typed_error() {
        let gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let cfg = ExecutorConfig {
            retry: RetryPolicy { budget: 1, ..RetryPolicy::default() },
            // Poison more attempts than the budget allows.
            chaos: Some(ChaosPlan::new(5).with_panic_chunk(0).with_poison_attempts(5)),
            ..ExecutorConfig::default()
        };
        match run_fleet_sweep(&spec(&gen, &table, 2), &cfg, None) {
            Err(HarnessError::ChunkFailed { chunk, attempts, message }) => {
                assert_eq!(chunk, 0);
                assert_eq!(attempts, 2);
                assert!(message.contains("chaos"), "message: {message}");
            }
            other => panic!("expected ChunkFailed, got {other:?}"),
        }
    }

    #[test]
    fn kill_then_resume_is_byte_identical() {
        let gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let reference = completed(
            run_fleet_sweep(&spec(&gen, &table, 2), &ExecutorConfig::default(), None).unwrap(),
        );
        let path = std::env::temp_dir()
            .join(format!("rwc_exec_resume_{}.json", std::process::id()));
        let cfg = ExecutorConfig {
            checkpoint: Some(CheckpointConfig { path: path.clone(), every_chunks: 1 }),
            chaos: Some(ChaosPlan::new(3).with_kill_after(2)),
            ..ExecutorConfig::default()
        };
        match run_fleet_sweep(&spec(&gen, &table, 2), &cfg, None).unwrap() {
            SweepOutcome::Killed { completed_chunks, .. } => {
                assert!(completed_chunks >= 2);
            }
            SweepOutcome::Completed(_) => panic!("chaos kill did not fire"),
        }
        let cp = checkpoint::load(&path).unwrap();
        assert!(!cp.chunks.is_empty());
        // Resume with a *different* thread count: chunk boundaries come
        // from the checkpoint, so identity must still hold.
        let resume_cfg = ExecutorConfig {
            checkpoint: Some(CheckpointConfig { path: path.clone(), every_chunks: 4 }),
            ..ExecutorConfig::default()
        };
        let resumed =
            completed(run_fleet_sweep(&spec(&gen, &table, 5), &resume_cfg, Some(&cp)).unwrap());
        assert!(resumed.stats.chunks_resumed >= 2);
        assert_eq!(
            serde_json::to_string(&resumed.accumulator).unwrap(),
            serde_json::to_string(&reference.accumulator).unwrap(),
        );
        assert_eq!(
            resumed.metrics.as_ref().map(MetricsSnapshot::to_json),
            reference.metrics.as_ref().map(MetricsSnapshot::to_json),
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_gen_sweep_is_thread_count_invariant() {
        // Batch generation must be byte-identical across thread counts —
        // the sweep-level half of the batch identity contract.
        let gen = tiny_fleet().with_gen_mode(GenMode::Batch);
        let table = ModulationTable::paper_default();
        let sequential = gen.fleet_analysis(&table);
        for threads in [1, 2, 5] {
            let out = run_fleet_sweep(&spec(&gen, &table, threads), &ExecutorConfig::default(), None)
                .unwrap();
            let result = completed(out);
            assert_eq!(
                serde_json::to_string(&result.accumulator).unwrap(),
                serde_json::to_string(&sequential).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn resume_rejects_cross_gen_mode_checkpoint() {
        // A checkpoint written under legacy generation must not resume a
        // batch-generation sweep: the remaining chunks would carry
        // byte-different traces.
        let legacy_gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let n_links = legacy_gen.n_links() as u64;
        let chunk_size = chunk_size_for(n_links as usize, 2) as u64;
        let cp = SweepCheckpoint::new(SweepFingerprint {
            n_links,
            chunk_size,
            seed: legacy_gen.config().seed,
            mode: "fused".into(),
        });
        // Same fingerprint resumes fine under legacy generation…
        run_fleet_sweep(&spec(&legacy_gen, &table, 2), &ExecutorConfig::default(), Some(&cp))
            .expect("legacy-gen resume accepts a legacy fingerprint");
        // …but is rejected under batch generation.
        let batch_gen = tiny_fleet().with_gen_mode(GenMode::Batch);
        match run_fleet_sweep(&spec(&batch_gen, &table, 2), &ExecutorConfig::default(), Some(&cp)) {
            Err(HarnessError::Checkpoint(CheckpointError::ConfigMismatch(_))) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }

    #[test]
    fn resume_rejects_foreign_fingerprint() {
        let gen = tiny_fleet();
        let table = ModulationTable::paper_default();
        let mut cp = SweepCheckpoint::new(SweepFingerprint {
            n_links: 999,
            chunk_size: 3,
            seed: 1,
            mode: "fused".into(),
        });
        cp.chunks.clear();
        match run_fleet_sweep(&spec(&gen, &table, 2), &ExecutorConfig::default(), Some(&cp)) {
            Err(HarnessError::Checkpoint(CheckpointError::ConfigMismatch(_))) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}
