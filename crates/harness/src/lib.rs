//! # rwc-harness — the crash-safe sweep runtime
//!
//! Fleet sweeps in this repo are embarrassingly parallel and fully
//! deterministic: every link is generated independently from
//! `(seed, link_id)` and merges are slot-ordered. This crate turns that
//! determinism into *robustness*:
//!
//! - [`checkpoint`] — a versioned, checksummed, atomically written
//!   snapshot of sweep progress at chunk granularity; a resumed run is
//!   byte-identical to an uninterrupted one.
//! - [`executor`] — panic-isolated workers with poison-free mpsc merge
//!   handoff, jittered retry of failed chunks, and interval
//!   checkpointing off the workers' hot path.
//! - [`chaos`] — seeded deterministic fault injection (worker panics,
//!   mid-run kills, checkpoint corruption) used by the `repro chaos`
//!   experiment and CI's chaos-smoke job to prove the two modules above
//!   actually hold.
//!
//! The crate sits below `rwc-bench` (which drives it from the `repro`
//! binary) and above telemetry/obs: it knows how to run a fleet sweep,
//! not what the sweep is for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod executor;

pub use chaos::{corrupt_bit_flip, corrupt_truncate, corrupt_version_bump, ChaosPlan};
pub use checkpoint::{
    CheckpointEpoch, CheckpointError, CheckpointStore, ChunkCheckpoint, StoreLoad,
    SweepCheckpoint, SweepFingerprint, CHECKPOINT_VERSION,
};
pub use executor::{
    chunk_size_for, run_fleet_sweep, CheckpointConfig, ExecutorConfig, HarnessError, RetryPolicy,
    SweepOutcome, SweepResult, SweepSpec, SweepStats,
};
