//! Resume-determinism properties for the crash-safe sweep runtime.
//!
//! Two promises are pinned on randomized inputs:
//!
//! 1. **Kill/resume identity** — for random fleets and thread counts,
//!    (run → kill after k chunks → write checkpoint → resume, possibly
//!    under a different thread count) produces the *byte-identical*
//!    accumulator and merged metrics of an uninterrupted run. The oracle
//!    is serialized JSON, so every f64 bit participates.
//! 2. **Corruption rejection** — every mutation the chaos module knows
//!    (single bit flip, truncation at a random point, envelope version
//!    bump) makes the loader return a typed error; no mutated checkpoint
//!    ever loads, and no temp file is left behind.

use proptest::prelude::*;
use rwc_harness::{
    chaos, checkpoint, ChaosPlan, CheckpointConfig, CheckpointError, ExecutorConfig, SweepOutcome,
    SweepSpec,
};
use rwc_obs::MetricsSnapshot;
use rwc_optics::ModulationTable;
use rwc_telemetry::{AnalysisMode, FleetConfig, FleetGenerator};
use rwc_util::time::SimDuration;

/// Small randomized fleets: enough links for several chunks, short
/// horizons so the suite stays fast.
fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    (0u64..1_000_000, 1usize..3, 2usize..7, 5u64..12).prop_map(
        |(seed, n_fibers, wavelengths_per_fiber, days)| FleetConfig {
            seed,
            n_fibers,
            wavelengths_per_fiber,
            horizon: SimDuration::from_days(days),
            ..FleetConfig::paper()
        },
    )
}

fn spec<'a>(
    gen: &'a FleetGenerator,
    table: &'a ModulationTable,
    n_threads: usize,
) -> SweepSpec<'a> {
    SweepSpec { gen, table, mode: AnalysisMode::Fused, n_threads, collect_metrics: true }
}

fn tmp_path(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rwc_props_{tag}_{}_{seed}.json", std::process::id()))
}

fn run_uninterrupted(
    gen: &FleetGenerator,
    table: &ModulationTable,
    threads: usize,
) -> (String, Option<String>) {
    match rwc_harness::run_fleet_sweep(&spec(gen, table, threads), &ExecutorConfig::default(), None)
        .expect("clean sweep succeeds")
    {
        SweepOutcome::Completed(r) => (
            serde_json::to_string(&r.accumulator).expect("accumulator serializes"),
            r.metrics.as_ref().map(MetricsSnapshot::to_json),
        ),
        SweepOutcome::Killed { .. } => unreachable!("no chaos plan"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// run → kill after k chunks → resume == uninterrupted, byte for
    /// byte, across distinct (kill thread count, resume thread count).
    #[test]
    fn kill_and_resume_is_byte_identical(
        cfg in fleet_strategy(),
        kill_threads in 1usize..5,
        resume_threads in 1usize..5,
        kill_after in 1u64..4,
    ) {
        let gen = FleetGenerator::new(cfg.clone());
        let table = ModulationTable::paper_default();
        let (ref_acc, ref_metrics) = run_uninterrupted(&gen, &table, 1);

        let path = tmp_path("resume", cfg.seed ^ (kill_threads as u64) << 8 ^ kill_after);
        let kill_cfg = ExecutorConfig {
            checkpoint: Some(CheckpointConfig { path: path.clone(), every_chunks: 1 }),
            chaos: Some(ChaosPlan::new(cfg.seed).with_kill_after(kill_after)),
            ..ExecutorConfig::default()
        };
        let outcome = rwc_harness::run_fleet_sweep(&spec(&gen, &table, kill_threads), &kill_cfg, None)
            .expect("killed sweep still writes its checkpoint");
        match outcome {
            SweepOutcome::Killed { completed_chunks, .. } => {
                prop_assert!(completed_chunks >= kill_after);
            }
            // A tiny fleet can complete before the kill budget is hit;
            // its result must still match the reference.
            SweepOutcome::Completed(r) => {
                prop_assert_eq!(
                    serde_json::to_string(&r.accumulator).expect("serializes"),
                    ref_acc
                );
                std::fs::remove_file(&path).ok();
                return Ok(());
            }
        }

        let cp = checkpoint::load(&path).expect("checkpoint loads back");
        let resumed = match rwc_harness::run_fleet_sweep(
            &spec(&gen, &table, resume_threads),
            &ExecutorConfig::default(),
            Some(&cp),
        )
        .expect("resume succeeds")
        {
            SweepOutcome::Completed(r) => r,
            SweepOutcome::Killed { .. } => unreachable!("resume run has no chaos plan"),
        };
        prop_assert!(resumed.stats.chunks_resumed >= kill_after);
        prop_assert_eq!(
            serde_json::to_string(&resumed.accumulator).expect("serializes"),
            ref_acc
        );
        prop_assert_eq!(resumed.metrics.as_ref().map(MetricsSnapshot::to_json), ref_metrics);
        std::fs::remove_file(&path).ok();
    }

    /// Every corruption the chaos module can inflict on a checkpoint file
    /// is rejected with a typed error.
    #[test]
    fn corrupted_checkpoints_are_rejected(
        cfg in fleet_strategy(),
        mutation_seed in 0u64..1_000_000,
    ) {
        let gen = FleetGenerator::new(cfg.clone());
        let table = ModulationTable::paper_default();
        let path = tmp_path("corrupt", cfg.seed ^ mutation_seed);
        let run_cfg = ExecutorConfig {
            checkpoint: Some(CheckpointConfig { path: path.clone(), every_chunks: 1 }),
            ..ExecutorConfig::default()
        };
        rwc_harness::run_fleet_sweep(&spec(&gen, &table, 2), &run_cfg, None)
            .expect("sweep succeeds");
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        std::fs::remove_file(&path).ok();

        // The pristine text loads; every mutation of it must not.
        checkpoint::load_str(&text).expect("pristine checkpoint loads");

        let flipped = chaos::corrupt_bit_flip(&text, mutation_seed);
        prop_assert!(flipped != text);
        prop_assert!(checkpoint::load_str(&flipped).is_err(), "bit flip accepted");

        let truncated = chaos::corrupt_truncate(&text, mutation_seed);
        prop_assert!(truncated.len() < text.len());
        prop_assert!(checkpoint::load_str(&truncated).is_err(), "truncation accepted");

        let bumped = chaos::corrupt_version_bump(&text);
        match checkpoint::load_str(&bumped) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                prop_assert_eq!(found, rwc_harness::CHECKPOINT_VERSION + 1);
                prop_assert_eq!(expected, rwc_harness::CHECKPOINT_VERSION);
            }
            other => prop_assert!(false, "version bump not rejected as such: {:?}", other),
        }
    }
}
