//! Flow problems encoded as linear programs.
//!
//! These encoders give the combinatorial solvers in `rwc-flow` an exact
//! reference: Dinic and the min-cost solver are polynomial and exact
//! already (the LP double-checks the implementation), while the
//! Garg–Könemann multicommodity FPTAS is approximate and is validated
//! against the LP optimum within its `ε` guarantee.

use crate::model::{LpBuilder, Relation};
use crate::simplex::{solve, LpOutcome};

/// Edge list form used by the encoders: `(from, to, capacity)`.
pub type EdgeList = Vec<(usize, usize, f64)>;

/// Exact max-flow value via LP.
///
/// Variables: one flow per edge. Objective: net outflow of `source`.
/// Constraints: conservation at every non-terminal node, capacity per edge.
pub fn max_flow_lp_value(n_nodes: usize, edges: &EdgeList, source: usize, sink: usize) -> f64 {
    assert!(source < n_nodes && sink < n_nodes && source != sink);
    // Objective: net outflow of source = sum(out) - sum(in).
    let mut b = LpBuilder::new();
    for &(u, v, _) in edges.iter() {
        let coeff = if u == source {
            1.0
        } else if v == source {
            -1.0
        } else {
            0.0
        };
        b.add_var(coeff);
    }
    // Capacity constraints.
    for (i, &(_, _, cap)) in edges.iter().enumerate() {
        b.add_constraint(&[(i, 1.0)], Relation::Le, cap);
    }
    // Conservation at non-terminals.
    for node in 0..n_nodes {
        if node == source || node == sink {
            continue;
        }
        let mut terms = Vec::new();
        for (i, &(u, v, _)) in edges.iter().enumerate() {
            if u == node {
                terms.push((i, 1.0));
            }
            if v == node {
                terms.push((i, -1.0));
            }
        }
        if !terms.is_empty() {
            b.add_constraint(&terms, Relation::Eq, 0.0);
        }
    }
    match solve(&b.build()) {
        LpOutcome::Optimal(s) => s.objective,
        other => panic!("max-flow LP must be optimal, got {other:?}"),
    }
}

/// Exact min-cost max-flow via LP: first solves for the max-flow value `F`,
/// then minimises cost subject to shipping exactly `F`.
///
/// `edges` carry `(from, to, capacity, cost)`. Returns `(value, cost)`.
pub fn min_cost_max_flow_lp(
    n_nodes: usize,
    edges: &[(usize, usize, f64, f64)],
    source: usize,
    sink: usize,
) -> (f64, f64) {
    let cap_only: EdgeList = edges.iter().map(|&(u, v, c, _)| (u, v, c)).collect();
    let value = max_flow_lp_value(n_nodes, &cap_only, source, sink);

    let mut b = LpBuilder::new();
    for &(_, _, _, cost) in edges {
        b.add_var(-cost); // maximise −cost = minimise cost
    }
    for (i, &(_, _, cap, _)) in edges.iter().enumerate() {
        b.add_constraint(&[(i, 1.0)], Relation::Le, cap);
    }
    for node in 0..n_nodes {
        if node == source || node == sink {
            continue;
        }
        let mut terms = Vec::new();
        for (i, &(u, v, _, _)) in edges.iter().enumerate() {
            if u == node {
                terms.push((i, 1.0));
            }
            if v == node {
                terms.push((i, -1.0));
            }
        }
        if !terms.is_empty() {
            b.add_constraint(&terms, Relation::Eq, 0.0);
        }
    }
    // Ship exactly the max-flow value out of the source.
    let mut source_terms = Vec::new();
    for (i, &(u, v, _, _)) in edges.iter().enumerate() {
        if u == source {
            source_terms.push((i, 1.0));
        }
        if v == source {
            source_terms.push((i, -1.0));
        }
    }
    b.add_constraint(&source_terms, Relation::Eq, value);
    match solve(&b.build()) {
        LpOutcome::Optimal(s) => (value, -s.objective),
        other => panic!("min-cost LP must be optimal, got {other:?}"),
    }
}

/// Exact maximum total multicommodity throughput with demand caps.
///
/// Variables: per-commodity, per-edge flows. Returns the optimal total.
pub fn max_multicommodity_lp_total(
    n_nodes: usize,
    edges: &EdgeList,
    commodities: &[(usize, usize, f64)],
) -> f64 {
    assert!(!commodities.is_empty());
    let k = commodities.len();
    let m = edges.len();
    let mut b = LpBuilder::new();
    // Variable (ki, ei) at index ki*m + ei. Objective: net outflow at each
    // commodity's source.
    for (src, _, _) in commodities {
        for &(u, v, _) in edges.iter() {
            let coeff = if u == *src {
                1.0
            } else if v == *src {
                -1.0
            } else {
                0.0
            };
            b.add_var(coeff);
        }
    }
    // Shared capacity.
    for (ei, edge) in edges.iter().enumerate().take(m) {
        let terms: Vec<(usize, f64)> = (0..k).map(|ki| (ki * m + ei, 1.0)).collect();
        b.add_constraint(&terms, Relation::Le, edge.2);
    }
    // Conservation per commodity at non-terminals.
    for (ki, &(src, dst, _)) in commodities.iter().enumerate() {
        for node in 0..n_nodes {
            if node == src || node == dst {
                continue;
            }
            let mut terms = Vec::new();
            for (ei, &(u, v, _)) in edges.iter().enumerate() {
                if u == node {
                    terms.push((ki * m + ei, 1.0));
                }
                if v == node {
                    terms.push((ki * m + ei, -1.0));
                }
            }
            if !terms.is_empty() {
                b.add_constraint(&terms, Relation::Eq, 0.0);
            }
        }
        // Demand cap: net outflow at the commodity's source ≤ demand.
        let mut terms = Vec::new();
        for (ei, &(u, v, _)) in edges.iter().enumerate() {
            if u == src {
                terms.push((ki * m + ei, 1.0));
            }
            if v == src {
                terms.push((ki * m + ei, -1.0));
            }
        }
        b.add_constraint(&terms, Relation::Le, commodities[ki].2);
        // No re-entrant flow at the source (keeps net outflow = gross).
    }
    match solve(&b.build()) {
        LpOutcome::Optimal(s) => s.objective,
        other => panic!("MCF LP must be optimal, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_max_flow_series() {
        let edges = vec![(0, 1, 10.0), (1, 2, 4.0)];
        assert!((max_flow_lp_value(3, &edges, 0, 2) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lp_max_flow_clrs() {
        let edges = vec![
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ];
        assert!((max_flow_lp_value(6, &edges, 0, 5) - 23.0).abs() < 1e-6);
    }

    #[test]
    fn lp_min_cost_prefers_cheap() {
        let edges = vec![
            (0, 1, 5.0, 1.0),
            (1, 3, 5.0, 1.0),
            (0, 2, 5.0, 10.0),
            (2, 3, 5.0, 10.0),
        ];
        let (value, cost) = min_cost_max_flow_lp(4, &edges, 0, 3);
        assert!((value - 10.0).abs() < 1e-6);
        assert!((cost - (10.0 + 100.0)).abs() < 1e-6);
    }

    #[test]
    fn lp_mcf_shared_bottleneck() {
        let edges = vec![(0, 1, 100.0), (3, 1, 100.0), (1, 2, 10.0)];
        let commodities = vec![(0, 2, 8.0), (3, 2, 8.0)];
        let total = max_multicommodity_lp_total(4, &edges, &commodities);
        assert!((total - 10.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn lp_mcf_uncontended() {
        let edges = vec![(0, 1, 100.0), (1, 2, 100.0)];
        let commodities = vec![(0, 2, 30.0)];
        let total = max_multicommodity_lp_total(3, &edges, &commodities);
        assert!((total - 30.0).abs() < 1e-6);
    }

    #[test]
    fn matches_combinatorial_solvers() {
        use rwc_flow::network::FlowNetwork;
        let edge_data = [
            (0usize, 1usize, 7.0, 2.0),
            (0, 2, 9.0, 1.0),
            (1, 2, 3.0, 0.5),
            (1, 3, 5.0, 3.0),
            (2, 3, 8.0, 2.5),
            (2, 4, 4.0, 1.0),
            (3, 4, 10.0, 0.0),
        ];
        let mut net = FlowNetwork::new(5);
        for &(u, v, c, w) in &edge_data {
            net.add_edge(u, v, c, w);
        }
        let dinic = rwc_flow::max_flow(&net, 0, 4);
        let cap_only: EdgeList = edge_data.iter().map(|&(u, v, c, _)| (u, v, c)).collect();
        let lp_val = max_flow_lp_value(5, &cap_only, 0, 4);
        assert!((dinic.value - lp_val).abs() < 1e-6, "dinic={} lp={lp_val}", dinic.value);

        let mc = rwc_flow::min_cost_max_flow(&net, 0, 4);
        let (lp_v, lp_c) = min_cost_max_flow_lp(5, &edge_data, 0, 4);
        assert!((mc.flow.value - lp_v).abs() < 1e-6);
        assert!((mc.cost - lp_c).abs() < 1e-6, "ssp={} lp={lp_c}", mc.cost);
    }

    #[test]
    fn gk_within_epsilon_of_lp() {
        use rwc_flow::mcf::{max_multicommodity_flow, Commodity};
        use rwc_flow::network::FlowNetwork;
        let edges = vec![
            (0usize, 1usize, 6.0),
            (1, 3, 6.0),
            (0, 2, 4.0),
            (2, 3, 4.0),
            (1, 2, 2.0),
        ];
        let commodities = [(0usize, 3usize, 7.0), (2, 3, 3.0)];
        let lp_total = max_multicommodity_lp_total(4, &edges, &commodities);
        let mut net = FlowNetwork::new(4);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c, 0.0);
        }
        let cs: Vec<Commodity> = commodities
            .iter()
            .map(|&(s, t, d)| Commodity { source: s, sink: t, demand: d })
            .collect();
        let gk = max_multicommodity_flow(&net, &cs, 0.05);
        gk.validate(&net, &cs).unwrap();
        // The FPTAS guarantee degrades by a capacity-dependent constant on
        // tiny instances (the feasibility scaling divides by the *worst*
        // edge overload); 80% of optimal is its honest floor here. Exact
        // answers for small networks come from this LP encoder instead.
        assert!(
            gk.total >= lp_total * 0.80 && gk.total <= lp_total + 1e-6,
            "gk={} lp={lp_total}",
            gk.total
        );
    }
}
