//! # rwc-lp
//!
//! A small, exact linear-programming solver (two-phase dense simplex with
//! Bland's rule) plus encoders that express flow problems as LPs.
//!
//! Why build one: the reproduction's headline theorem says min-cost
//! max-flow on the augmented graph equals max-flow on the dynamic-capacity
//! graph. The combinatorial solvers in `rwc-flow` are fast but
//! approximate in the multicommodity case; this crate provides the *ground
//! truth* they are validated against in tests and benchmarks (the Rust
//! ecosystem's optimisation offerings are thin, per the calibration notes,
//! so this is written from scratch on `std` only).
//!
//! - [`model`]: the LP model ([`model::LinearProgram`], built via
//!   [`model::LpBuilder`]);
//! - [`simplex`]: the dense tableau solver (legacy backend, escape hatch);
//! - [`sparse`]: CSC computational form + bound-absorbing lowering;
//! - [`revised`]: the sparse revised-simplex solver (default backend);
//! - [`flows`]: max-flow / min-cost-max-flow / multicommodity encoders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flows;
mod lu;
pub mod model;
mod pricing;
pub mod revised;
pub mod simplex;
pub mod sparse;

pub use model::{LinearProgram, LpBuilder, Relation};
pub use revised::SparseSimplexSolver;
pub use simplex::{
    solve, solve_with_budget, solve_with_backend, LpBackend, LpOutcome, SimplexSolver, Solution,
    SolverStats,
};
pub use sparse::{CscMatrix, SparseLp, SparseLpBuilder};
