//! Sparse LU factorisation of the simplex basis, with product-form eta
//! updates between refactorisations.
//!
//! The factorisation is left-looking Gilbert–Peierls: each basis column is
//! solved against the partially built `L` (the nonzero pattern found by a
//! depth-first reach over `L`'s graph, so work is proportional to entries
//! touched, not to `m`), then a pivot row is chosen by *threshold*
//! pivoting with a Markowitz-style tie-break — among candidate rows whose
//! magnitude is within [`PIVOT_THRESHOLD`] of the column maximum, prefer
//! the row that appears in the fewest basis columns, trading a bounded
//! amount of numerical slack for less fill-in. Columns are eliminated in
//! ascending-nnz order (static approximate minimum degree) for the same
//! reason.
//!
//! Between refactorisations, basis changes are absorbed as *product-form
//! eta* updates ([`Eta`]): replacing the column in basis slot `p` by a
//! column with ftran image `d` multiplies `B` by an elementary matrix
//! `E = I + (d - e_p)·e_pᵀ`, so `B⁻¹` picks up one sparse rank-one
//! correction per pivot instead of a full refactorisation. `ftran`
//! applies etas oldest→newest after the LU solve; `btran` applies them
//! newest→oldest before it. The eta file is capped by the driver (see
//! `revised.rs` — [`crate::revised`]) which refactorises when the chain
//! gets long enough that accumulated fill or drift would cost more than
//! a fresh factorisation.

/// Threshold-pivoting slack: candidate pivot rows must be within this
/// factor of the column's max magnitude. 1.0 would be strict partial
/// pivoting (numerically safest, most fill); industrial codes run 0.1 or
/// less — 0.25 is conservative for the mildly scaled TE bases here.
const PIVOT_THRESHOLD: f64 = 0.25;
/// Below this magnitude a pivot column is declared singular.
const SINGULAR_TOL: f64 = 1e-10;
/// Entries smaller than this are dropped from L/U and eta columns; keeps
/// cancellation dust from inflating the factors.
const DROP_TOL: f64 = 1e-13;

/// One product-form eta: `B_new = B_old · E` with `E`'s column `slot`
/// equal to `d` (the ftran image of the entering column).
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// Basis slot the entering column replaced.
    pub slot: usize,
    /// Off-pivot entries of `d`, in slot space.
    pub d: Vec<(usize, f64)>,
    /// The pivot entry `d[slot]` (magnitude ≥ the driver's pivot tol).
    pub dp: f64,
}

impl Eta {
    /// Applies `E⁻¹` in place (ftran direction), slot space.
    pub fn ftran(&self, x: &mut [f64]) {
        let xp = x[self.slot] / self.dp;
        if xp != 0.0 {
            for &(i, di) in &self.d {
                x[i] -= di * xp;
            }
        }
        x[self.slot] = xp;
    }

    /// Applies `E⁻ᵀ` in place (btran direction), slot space.
    pub fn btran(&self, y: &mut [f64]) {
        let mut acc = y[self.slot];
        for &(i, di) in &self.d {
            acc -= di * y[i];
        }
        y[self.slot] = acc / self.dp;
    }
}

/// Sparse LU factors of the basis matrix `B` (columns indexed by basis
/// *slot*, rows by original row index).
///
/// `L` is unit lower triangular in elimination order: column `k` stores
/// the multipliers at the original rows eliminated after step `k`. `U` is
/// upper triangular in step space: column `k` stores entries at earlier
/// steps plus the diagonal. `pivot_row` / `col_order` are the row/column
/// permutations.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactors {
    m: usize,
    l_colptr: Vec<usize>,
    l_row: Vec<usize>,
    l_val: Vec<f64>,
    u_colptr: Vec<usize>,
    u_step: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// step → original row chosen as pivot.
    pivot_row: Vec<usize>,
    /// original row → step (usize::MAX until assigned).
    row_step: Vec<usize>,
    /// step → basis slot eliminated at that step.
    col_order: Vec<usize>,
    // --- factorisation scratch (kept to amortise allocation) ----------
    work: Vec<f64>,
    mark: Vec<u32>,
    mark_gen: u32,
    dfs_stack: Vec<(usize, usize)>,
    topo: Vec<usize>,
    row_count: Vec<usize>,
}

impl LuFactors {
    /// Stored entries in `L` + `U` (diagonal included).
    pub fn nnz(&self) -> usize {
        self.l_row.len() + self.u_step.len() + self.m
    }

    /// Factorises the `m × m` basis given in CSC form (`cols` indexed by
    /// slot). Returns `Err(())` when the basis is numerically singular.
    pub fn factorize(
        &mut self,
        m: usize,
        colptr: &[usize],
        rows: &[usize],
        vals: &[f64],
    ) -> Result<(), ()> {
        self.m = m;
        self.l_colptr.clear();
        self.l_row.clear();
        self.l_val.clear();
        self.u_colptr.clear();
        self.u_step.clear();
        self.u_val.clear();
        self.u_diag.clear();
        self.l_colptr.push(0);
        self.u_colptr.push(0);
        self.pivot_row.clear();
        self.row_step.clear();
        self.row_step.resize(m, usize::MAX);
        self.col_order.clear();
        self.work.clear();
        self.work.resize(m, 0.0);
        self.mark.clear();
        self.mark.resize(m, 0);
        self.mark_gen = 0;

        // Static approximate Markowitz: eliminate thin columns first, and
        // prefer pivot rows that appear in few columns of B.
        self.row_count.clear();
        self.row_count.resize(m, 0);
        for &r in rows {
            self.row_count[r] += 1;
        }
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&s| colptr[s + 1] - colptr[s]);

        for (step, &slot) in order.iter().enumerate() {
            let (cs, ce) = (colptr[slot], colptr[slot + 1]);
            // Symbolic: reach of the column's pattern over L's graph, in
            // topological order (ancestors first).
            self.mark_gen += 1;
            self.topo.clear();
            for &r in &rows[cs..ce] {
                if self.mark[r] != self.mark_gen {
                    self.dfs(r);
                }
            }
            // Numeric: scatter, then eliminate along the reach.
            for (&r, &v) in rows[cs..ce].iter().zip(&vals[cs..ce]) {
                self.work[r] = v;
            }
            // `topo` is reverse post-order — iterate as pushed (we push
            // finished nodes onto the *end*, so reverse iteration gives
            // ancestors-first order).
            for ti in (0..self.topo.len()).rev() {
                let r = self.topo[ti];
                let s = self.row_step[r];
                if s == usize::MAX {
                    continue;
                }
                let xr = self.work[r];
                if xr != 0.0 {
                    for li in self.l_colptr[s]..self.l_colptr[s + 1] {
                        self.work[self.l_row[li]] -= self.l_val[li] * xr;
                    }
                }
            }
            // Pivot: threshold partial pivoting over the unassigned rows
            // of the pattern, Markowitz tie-break on static row count.
            let mut max_mag = 0.0f64;
            for ti in 0..self.topo.len() {
                let r = self.topo[ti];
                if self.row_step[r] == usize::MAX {
                    max_mag = max_mag.max(self.work[r].abs());
                }
            }
            if max_mag < SINGULAR_TOL {
                self.clear_work();
                return Err(());
            }
            let mut pivot: Option<(usize, usize)> = None; // (row, row_count)
            for ti in 0..self.topo.len() {
                let r = self.topo[ti];
                if self.row_step[r] != usize::MAX {
                    continue;
                }
                let mag = self.work[r].abs();
                if mag >= PIVOT_THRESHOLD * max_mag {
                    let rc = self.row_count[r];
                    if pivot.is_none_or(|(_, brc)| rc < brc) {
                        pivot = Some((r, rc));
                    }
                }
            }
            let (prow, _) = pivot.expect("threshold set is non-empty when max >= tol");
            let pval = self.work[prow];

            // Emit U column (assigned steps) and L column (multipliers).
            for ti in 0..self.topo.len() {
                let r = self.topo[ti];
                let s = self.row_step[r];
                if s != usize::MAX {
                    let v = self.work[r];
                    if v.abs() > DROP_TOL {
                        self.u_step.push(s);
                        self.u_val.push(v);
                    }
                }
            }
            self.u_colptr.push(self.u_step.len());
            self.u_diag.push(pval);
            for ti in 0..self.topo.len() {
                let r = self.topo[ti];
                if r == prow || self.row_step[r] != usize::MAX {
                    continue;
                }
                let mult = self.work[r] / pval;
                if mult.abs() > DROP_TOL {
                    self.l_row.push(r);
                    self.l_val.push(mult);
                }
            }
            self.l_colptr.push(self.l_row.len());
            self.pivot_row.push(prow);
            self.row_step[prow] = step;
            self.col_order.push(slot);
            self.clear_work();
        }
        Ok(())
    }

    fn clear_work(&mut self) {
        for ti in 0..self.topo.len() {
            self.work[self.topo[ti]] = 0.0;
        }
    }

    /// Iterative DFS over L's graph from row `start`; appends finished
    /// rows to `self.topo` (post-order) and marks visited rows.
    fn dfs(&mut self, start: usize) {
        self.mark[start] = self.mark_gen;
        self.dfs_stack.clear();
        self.dfs_stack.push((start, 0));
        while let Some(&(r, mut child)) = self.dfs_stack.last() {
            let s = self.row_step[r];
            let (cs, ce) = if s == usize::MAX {
                (0, 0)
            } else {
                (self.l_colptr[s], self.l_colptr[s + 1])
            };
            let mut advanced = false;
            while cs + child < ce {
                let next = self.l_row[cs + child];
                child += 1;
                if self.mark[next] != self.mark_gen {
                    self.mark[next] = self.mark_gen;
                    self.dfs_stack.last_mut().expect("stack non-empty").1 = child;
                    self.dfs_stack.push((next, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.topo.push(r);
                self.dfs_stack.pop();
            }
        }
    }

    /// Solves `B x = b`. Input: `rhs_rows` dense in row space (consumed as
    /// scratch). Output: `out_slots` dense in slot space. `step_buf` is
    /// caller-provided scratch of length ≥ m.
    pub fn ftran(&self, rhs_rows: &mut [f64], out_slots: &mut [f64], step_buf: &mut [f64]) {
        let m = self.m;
        // L solve, in row space.
        for k in 0..m {
            let yk = rhs_rows[self.pivot_row[k]];
            if yk != 0.0 {
                for li in self.l_colptr[k]..self.l_colptr[k + 1] {
                    rhs_rows[self.l_row[li]] -= self.l_val[li] * yk;
                }
            }
        }
        // Gather into step space, then U back-substitution.
        for k in 0..m {
            step_buf[k] = rhs_rows[self.pivot_row[k]];
        }
        for k in (0..m).rev() {
            let xk = step_buf[k] / self.u_diag[k];
            step_buf[k] = xk;
            if xk != 0.0 {
                for ui in self.u_colptr[k]..self.u_colptr[k + 1] {
                    step_buf[self.u_step[ui]] -= self.u_val[ui] * xk;
                }
            }
        }
        // Scatter to slots.
        for k in 0..m {
            out_slots[self.col_order[k]] = step_buf[k];
        }
    }

    /// Solves `Bᵀ y = c`. Input: `c_slots` dense in slot space. Output:
    /// `out_rows` dense in row space (fully overwritten). `step_buf` is
    /// caller-provided scratch of length ≥ m.
    pub fn btran(&self, c_slots: &[f64], out_rows: &mut [f64], step_buf: &mut [f64]) {
        let m = self.m;
        // Uᵀ forward solve, in step space (entries of column k are at
        // steps < k, already solved — in-place is safe).
        for k in 0..m {
            let mut acc = c_slots[self.col_order[k]];
            for ui in self.u_colptr[k]..self.u_colptr[k + 1] {
                acc -= self.u_val[ui] * step_buf[self.u_step[ui]];
            }
            step_buf[k] = acc / self.u_diag[k];
        }
        // Lᵀ backward solve: rows referenced by column k have steps > k,
        // already written.
        for k in (0..m).rev() {
            let mut acc = step_buf[k];
            for li in self.l_colptr[k]..self.l_colptr[k + 1] {
                acc -= self.l_val[li] * out_rows[self.l_row[li]];
            }
            out_rows[self.pivot_row[k]] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds CSC from dense column-major data.
    fn csc(m: usize, cols: &[&[f64]]) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let mut colptr = vec![0];
        let (mut rows, mut vals) = (Vec::new(), Vec::new());
        for col in cols {
            assert_eq!(col.len(), m);
            for (r, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    rows.push(r);
                    vals.push(v);
                }
            }
            colptr.push(rows.len());
        }
        (colptr, rows, vals)
    }

    fn solve_roundtrip(m: usize, cols: &[&[f64]], b: &[f64]) -> Vec<f64> {
        let (cp, r, v) = csc(m, cols);
        let mut lu = LuFactors::default();
        lu.factorize(m, &cp, &r, &v).expect("nonsingular");
        let mut rhs = b.to_vec();
        let mut out = vec![0.0; m];
        let mut scratch = vec![0.0; m];
        lu.ftran(&mut rhs, &mut out, &mut scratch);
        out
    }

    #[test]
    fn identity_roundtrip() {
        let x = solve_roundtrip(
            3,
            &[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]],
            &[3.0, -1.0, 2.0],
        );
        assert_eq!(x, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn ftran_solves_general_3x3() {
        // B = [[2,1,0],[0,3,1],[1,0,1]] (columns), x = B^-1 [5,7,3].
        let cols: &[&[f64]] = &[&[2.0, 0.0, 1.0], &[1.0, 3.0, 0.0], &[0.0, 1.0, 1.0]];
        let x = solve_roundtrip(3, cols, &[5.0, 7.0, 3.0]);
        // Verify B x = b.
        let b_check: Vec<f64> = (0..3)
            .map(|r| (0..3).map(|c| cols[c][r] * x[c]).sum())
            .collect();
        for (got, want) in b_check.iter().zip(&[5.0, 7.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{b_check:?}");
        }
    }

    #[test]
    fn btran_solves_transpose() {
        let cols: &[&[f64]] = &[&[2.0, 0.0, 1.0], &[1.0, 3.0, 0.0], &[0.0, 1.0, 1.0]];
        let (cp, r, v) = csc(3, cols);
        let mut lu = LuFactors::default();
        lu.factorize(3, &cp, &r, &v).unwrap();
        let c = [4.0, -2.0, 1.0]; // slot space
        let mut y = vec![0.0; 3];
        let mut scratch = vec![0.0; 3];
        lu.btran(&c, &mut y, &mut scratch);
        // Check Bᵀ y = c: for each slot j, column_j · y = c[j].
        for j in 0..3 {
            let dot: f64 = (0..3).map(|row| cols[j][row] * y[row]).sum();
            assert!((dot - c[j]).abs() < 1e-12, "col {j}: {dot} vs {}", c[j]);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let cols: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        let (cp, r, v) = csc(2, cols);
        let mut lu = LuFactors::default();
        assert!(lu.factorize(2, &cp, &r, &v).is_err());
    }

    #[test]
    fn zero_column_detected() {
        let cols: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 0.0]];
        let (cp, r, v) = csc(2, cols);
        let mut lu = LuFactors::default();
        assert!(lu.factorize(2, &cp, &r, &v).is_err());
    }

    #[test]
    fn eta_ftran_btran_agree_with_explicit_update() {
        // B = I (2x2); replace slot 0 with column a = [3, 1]^T.
        // d = B^-1 a = [3, 1]. New B = [[3,0],[1,1]].
        let eta = Eta { slot: 0, d: vec![(1, 1.0)], dp: 3.0 };
        // ftran: solve B_new x = [6, 5] → x = [2, 3].
        let mut x = vec![6.0, 5.0];
        eta.ftran(&mut x);
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12, "{x:?}");
        // btran: solve B_newᵀ y = [7, 2] → y = [(7 - 2)/3, 2] = [5/3, 2].
        let mut y = vec![7.0, 2.0];
        eta.btran(&mut y);
        assert!((y[0] - 5.0 / 3.0).abs() < 1e-12 && (y[1] - 2.0).abs() < 1e-12, "{y:?}");
    }

    #[test]
    fn larger_random_ish_roundtrip() {
        // Deterministic pseudo-random sparse nonsingular matrix (diagonal
        // dominance guarantees nonsingularity).
        let m = 40;
        let mut cols: Vec<Vec<f64>> = vec![vec![0.0; m]; m];
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (j, col) in cols.iter_mut().enumerate() {
            col[j] = 8.0 + next().abs();
            for _ in 0..3 {
                let r = ((next().abs() * m as f64) as usize).min(m - 1);
                if r != j {
                    col[r] = next();
                }
            }
        }
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let b: Vec<f64> = (0..m).map(|i| next() * 10.0 + i as f64).collect();
        let x = solve_roundtrip(m, &col_refs, &b);
        for r in 0..m {
            let got: f64 = (0..m).map(|c| cols[c][r] * x[c]).sum();
            assert!((got - b[r]).abs() < 1e-8, "row {r}: {got} vs {}", b[r]);
        }
    }
}
