//! LP model types.
//!
//! A [`LinearProgram`] is always a *maximisation* over non-negative
//! variables: `max c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0`. Minimisation is
//! expressed by negating the objective.

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
}

/// One linear constraint `coeffs · x (op) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Dense coefficient vector (length = number of variables).
    pub coeffs: Vec<f64>,
    /// Relation.
    pub op: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: maximise `objective · x` subject to constraints and
/// `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    /// Objective coefficients (length = number of variables).
    pub objective: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Validates dimensional consistency and finiteness.
    pub fn validate(&self) -> Result<(), String> {
        if self.objective.is_empty() {
            return Err("LP with no variables".into());
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err("non-finite objective coefficient".into());
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != self.objective.len() {
                return Err(format!(
                    "constraint {i}: {} coefficients for {} variables",
                    c.coeffs.len(),
                    self.objective.len()
                ));
            }
            if c.coeffs.iter().any(|x| !x.is_finite()) || !c.rhs.is_finite() {
                return Err(format!("constraint {i}: non-finite value"));
            }
        }
        Ok(())
    }
}

/// Incremental LP construction with named variables.
#[derive(Debug, Clone, Default)]
pub struct LpBuilder {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpBuilder {
    /// A builder with no variables yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with the given objective coefficient; returns its
    /// index. Must be called before any constraint mentions the variable.
    pub fn add_var(&mut self, objective_coeff: f64) -> usize {
        assert!(
            self.constraints.is_empty(),
            "add all variables before adding constraints"
        );
        self.objective.push(objective_coeff);
        self.objective.len() - 1
    }

    /// Number of variables added so far.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a sparse constraint `Σ coeff·x[var] (op) rhs`.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], op: Relation, rhs: f64) {
        let mut coeffs = vec![0.0; self.objective.len()];
        for &(var, coeff) in terms {
            assert!(var < coeffs.len(), "variable {var} out of range");
            coeffs[var] += coeff;
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Finalises the program.
    pub fn build(self) -> LinearProgram {
        let lp = LinearProgram { objective: self.objective, constraints: self.constraints };
        lp.validate().expect("builder produced an invalid LP");
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_dense_rows() {
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 14.0);
        b.add_constraint(&[(y, 1.0)], Relation::Ge, 1.0);
        let lp = b.build();
        assert_eq!(lp.n_vars(), 2);
        assert_eq!(lp.n_constraints(), 2);
        assert_eq!(lp.constraints[0].coeffs, vec![1.0, 2.0]);
        assert_eq!(lp.constraints[1].coeffs, vec![0.0, 1.0]);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 5.0);
        let lp = b.build();
        assert_eq!(lp.constraints[0].coeffs, vec![3.0]);
    }

    #[test]
    fn validate_catches_dimension_mismatch() {
        let lp = LinearProgram {
            objective: vec![1.0, 2.0],
            constraints: vec![Constraint { coeffs: vec![1.0], op: Relation::Le, rhs: 1.0 }],
        };
        assert!(lp.validate().is_err());
    }

    #[test]
    fn validate_catches_nan() {
        let lp = LinearProgram {
            objective: vec![f64::NAN],
            constraints: vec![],
        };
        assert!(lp.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn vars_after_constraints_rejected() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_var(1.0);
    }
}
