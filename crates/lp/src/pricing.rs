//! Candidate-list (partial) pricing for the revised simplex.
//!
//! Full Dantzig pricing scans every nonbasic column per pivot — O(nnz)
//! work that dwarfs the ftran/btran cost on large TE programs. Partial
//! pricing keeps a small *candidate list* of recently attractive columns:
//! each pivot re-prices only the list (the multipliers `y` change every
//! pivot, so cached reduced costs are stale by construction — but the
//! *set* of attractive columns drifts slowly), and only when the list
//! goes dry does a cyclic section scan over all columns refill it. The
//! scan cursor persists across refills so every column is examined
//! periodically — combined with the driver's Bland fallback this keeps
//! the termination guarantees of full pricing while touching a fraction
//! of the matrix per pivot.

/// Columns collected per refill before the section scan stops early.
const REFILL_TARGET: usize = 64;
/// Columns examined per section; a refill always finishes its section so
/// the cursor advances in fixed strides.
const SECTION: usize = 256;

/// Reusable candidate-list state. The driver owns eligibility (bounds,
/// enterability, reduced-cost sign) and passes it in as a closure that
/// returns the violation magnitude of an eligible column.
#[derive(Debug, Clone, Default)]
pub(crate) struct CandidateList {
    candidates: Vec<usize>,
    cursor: usize,
    /// Cyclic refill scans performed (drained into `SolverStats`).
    pub scans: u64,
}

impl CandidateList {
    /// Drops the retained candidates (phase switch, refactorisation with
    /// changed costs, warm-start reload — anything that invalidates the
    /// attractiveness the list encodes).
    pub fn invalidate(&mut self) {
        self.candidates.clear();
        self.cursor = 0;
    }

    /// Picks the entering column: the retained list first, cyclic section
    /// scans when it runs dry. Returns `None` only after a full wrap
    /// found no eligible column — which certifies optimality under the
    /// caller's eligibility predicate.
    pub fn select(
        &mut self,
        n_cols: usize,
        mut eligible: impl FnMut(usize) -> Option<f64>,
    ) -> Option<usize> {
        // Re-price the retained candidates against the current
        // multipliers; drop the ones that went sour.
        let mut best: Option<(f64, usize)> = None;
        self.candidates.retain(|&j| match eligible(j) {
            Some(v) => {
                if best.is_none_or(|(bv, _)| v > bv) {
                    best = Some((v, j));
                }
                true
            }
            None => false,
        });
        if let Some((_, j)) = best {
            return Some(j);
        }
        // Refill: cyclic section scan from the persistent cursor.
        self.scans += 1;
        let mut examined = 0;
        while examined < n_cols {
            let section_end = (examined + SECTION).min(n_cols);
            while examined < section_end {
                let j = self.cursor;
                self.cursor = (self.cursor + 1) % n_cols;
                examined += 1;
                if let Some(v) = eligible(j) {
                    self.candidates.push(j);
                    if best.is_none_or(|(bv, _)| v > bv) {
                        best = Some((v, j));
                    }
                }
            }
            if self.candidates.len() >= REFILL_TARGET {
                break;
            }
        }
        best.map(|(_, j)| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_max_violation_within_refill() {
        let mut cl = CandidateList::default();
        let viol = [0.0, 3.0, 1.0, 7.0, 0.0];
        let pick = cl.select(5, |j| (viol[j] > 0.0).then_some(viol[j]));
        assert_eq!(pick, Some(3));
        assert_eq!(cl.scans, 1);
    }

    #[test]
    fn retained_candidates_avoid_rescan() {
        let mut cl = CandidateList::default();
        let viol = [0.0, 3.0, 1.0, 7.0, 0.0];
        cl.select(5, |j| (viol[j] > 0.0).then_some(viol[j]));
        // Second select with the same eligibility: served from the list.
        let pick = cl.select(5, |j| (viol[j] > 0.0).then_some(viol[j]));
        assert_eq!(pick, Some(3));
        assert_eq!(cl.scans, 1, "no rescan while the list is warm");
    }

    #[test]
    fn dry_list_triggers_rescan_and_certifies_optimality() {
        let mut cl = CandidateList::default();
        let viol = [0.0, 3.0];
        cl.select(2, |j| (viol[j] > 0.0).then_some(viol[j]));
        assert_eq!(cl.select(2, |_| None), None);
        assert_eq!(cl.scans, 2);
    }

    #[test]
    fn cursor_cycles_through_large_column_sets() {
        let mut cl = CandidateList::default();
        let n = 10 * SECTION;
        // Only one eligible column, far from the start: cyclic scan must
        // keep going past the refill target (nothing collected) until it
        // finds it.
        let target = 7 * SECTION + 13;
        let pick = cl.select(n, |j| (j == target).then_some(1.0));
        assert_eq!(pick, Some(target));
    }
}
