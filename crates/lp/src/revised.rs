//! Revised simplex over sparse structures — the large-graph LP backend.
//!
//! The dense tableau in [`crate::simplex`] carries an `m × n_total`
//! matrix and rewrites all of it on every pivot: O(m·n) memory and time
//! per pivot, which does not survive the 10k-link augmented-graph regime.
//! This module keeps the same outward contract (warm start from the
//! retained basis, dual-simplex repair on rhs drift, Bland's-rule
//! anti-cycling, the stride-64 solve watchdog, [`LpOutcome`] semantics)
//! but only ever touches:
//!
//! - the CSC constraint matrix ([`crate::sparse::SparseLp`]), read-only;
//! - a sparse LU factorisation of the `m × m` basis
//!   ([`crate::lu::LuFactors`]) plus a chain of product-form eta updates,
//!   refactorised every [`REFACTOR_EVERY`] pivots;
//! - O(m) dense work vectors for ftran/btran.
//!
//! Variables are *bounded* (`0 ≤ x_j ≤ u_j`): capacity rows become plain
//! bounds in the lowering, so a bound-flip pivot costs one vector update
//! and no basis change at all. Entering columns come from candidate-list
//! partial pricing ([`crate::pricing::CandidateList`]) instead of a full
//! Dantzig scan.
//!
//! Warm starts key on the *structural sparsity pattern* (per-column
//! FNV hashes), not on variable count: dirty-link augmentation that
//! appends fake-edge columns maps the saved basis through the unchanged
//! prefix and keeps the factorisation instead of falling back cold.

use crate::model::{LinearProgram, Relation};
use crate::lu::{Eta, LuFactors};
use crate::pricing::CandidateList;
use crate::simplex::{LpOutcome, Solution, SolverStats};
use crate::sparse::SparseLp;
use std::time::{Duration, Instant};

const TOL: f64 = 1e-9;
/// Pivots between wall-clock watchdog checks (every pivot under a chaos
/// delay), mirroring the dense backend.
const WATCHDOG_STRIDE: u64 = 64;
/// Minimum magnitude for a ratio-test pivot element.
const PIVOT_TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_STREAK: u64 = 256;
/// Feasibility slack when accepting a warm basis / ending dual repair.
const WARM_FEAS_TOL: f64 = 1e-7;
/// Dual-feasibility slack for the repair precheck.
const DUAL_FEAS_TOL: f64 = 1e-7;
/// Eta-chain length that triggers a refactorisation: long chains cost
/// more per ftran/btran than a fresh factorisation and accumulate drift.
const REFACTOR_EVERY: usize = 64;
/// Entries below this are dropped from eta columns.
const ETA_DROP_TOL: f64 = 1e-12;
/// Residual Phase-I infeasibility above which the program is declared
/// infeasible (matches the dense backend).
const PHASE1_TOL: f64 = 1e-7;

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// A saved basis member, stored structurally so it can be re-mapped onto
/// a drifted layout (appended columns/rows keep the prefix meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SavedRef {
    /// Structural column `j` of the LP.
    Structural(usize),
    /// Logical (slack/surplus) of row `r`.
    Logical(usize),
}

/// The retained optimal basis plus the structural signature it belongs to.
#[derive(Debug, Clone)]
struct SavedBasis {
    n: usize,
    m: usize,
    /// Per-column structural pattern hashes of the solved LP.
    col_hashes: Vec<u64>,
    /// Row relations of the solved LP.
    rels: Vec<Relation>,
    /// Basis members by slot.
    basics: Vec<SavedRef>,
    /// Nonbasic members resting at their upper bound.
    at_upper: Vec<SavedRef>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptOutcome {
    Optimal,
    Unbounded,
    Stalled,
}

/// A reusable sparse revised-simplex engine. Mirrors
/// [`crate::SimplexSolver`]'s API and warm-start contract; scratch
/// buffers, the LU factors and the last optimal basis persist across
/// solves so a sequence of drifting TE rounds pays for factorisation
/// once, not per round.
#[derive(Debug, Clone, Default)]
pub struct SparseSimplexSolver {
    // --- problem of the solve in flight (set by `load`) ---------------
    n: usize,
    m: usize,
    /// Structural + logical (+ artificial, cold path only) column count.
    n_total: usize,
    /// Unified CSC over all columns: structurals, then one +1 logical
    /// per row, then any artificials the cold path appends.
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_vals: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Real objective (zero on logicals/artificials).
    obj_real: Vec<f64>,
    /// Objective of the phase in flight.
    cost: Vec<f64>,
    /// Columns eligible to enter (artificials are frozen).
    enterable: Vec<bool>,
    rels: Vec<Relation>,
    rhs: Vec<f64>,
    // --- basis state (persists across loads for fast resolves) --------
    /// basis[slot] = column index of the basic variable.
    basis: Vec<usize>,
    /// Per-column rest state.
    vstat: Vec<VStat>,
    /// Value of the basic variable in each slot.
    xb: Vec<f64>,
    lu: LuFactors,
    etas: Vec<Eta>,
    // --- scratch -------------------------------------------------------
    work_rows: Vec<f64>,
    work_slots: Vec<f64>,
    step_buf: Vec<f64>,
    /// ftran image of the entering column, slot space.
    w_col: Vec<f64>,
    /// Dual multipliers, row space.
    y_rows: Vec<f64>,
    /// btran image of a unit slot vector (dual repair), row space.
    rho_rows: Vec<f64>,
    fact_ptr: Vec<usize>,
    fact_rows: Vec<usize>,
    fact_vals: Vec<f64>,
    pricing: CandidateList,
    // --- warm-start state ----------------------------------------------
    saved: Option<SavedBasis>,
    /// Matrix values / objective of the last solved LP — with the saved
    /// pattern they form the fast-resolve fingerprint (rhs and bounds
    /// excluded on purpose: capacity drift moves those every round).
    saved_vals: Vec<f64>,
    saved_obj: Vec<f64>,
    /// True while `basis`/`vstat`/`lu`/`etas` still describe the final
    /// state of the last optimal solve.
    fact_valid: bool,
    stats: SolverStats,
    // --- watchdog -------------------------------------------------------
    solve_timeout: Option<Duration>,
    deadline: Option<Instant>,
    deadline_hit: bool,
    pivot_delay: Option<Duration>,
}

impl SparseSimplexSolver {
    /// A solver with no saved basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Warm-start and factorisation counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Length of the current eta chain — product-form updates applied on
    /// top of the last factorisation. Bench instrumentation for tuning
    /// the refactorisation policy.
    pub fn eta_chain_len(&self) -> usize {
        self.etas.len()
    }

    /// Stored nonzeros in the current LU factors of the basis.
    pub fn lu_nnz(&self) -> usize {
        self.lu.nnz()
    }

    /// Drops the saved basis; the next solve runs cold.
    pub fn reset(&mut self) {
        self.saved = None;
        self.fact_valid = false;
    }

    /// Arms (or disarms, with `None`) the solve-deadline watchdog; same
    /// semantics as [`crate::SimplexSolver::set_solve_timeout`].
    pub fn set_solve_timeout(&mut self, timeout: Option<Duration>) {
        self.solve_timeout = timeout;
    }

    /// Chaos hook: sleep this long before every pivot (deterministic
    /// watchdog tests). `None` (the default) is a no-op.
    pub fn set_pivot_delay(&mut self, delay: Option<Duration>) {
        self.pivot_delay = delay;
    }

    fn arm_deadline(&mut self) {
        self.deadline = self.solve_timeout.map(|t| Instant::now() + t);
        self.deadline_hit = false;
    }

    fn deadline_expired(&mut self) -> bool {
        if self.deadline_hit {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_hit = true;
                self.stats.watchdog_aborts += 1;
                true
            }
            _ => false,
        }
    }

    /// Solves a dense-model LP by lowering it to sparse computational
    /// form first; pivot budget scaled to the problem size.
    pub fn solve(&mut self, lp: &LinearProgram) -> LpOutcome {
        lp.validate().expect("invalid LP");
        let sp = SparseLp::from_dense(lp);
        let budget = default_budget(&sp);
        self.solve_sparse_with_budget(&sp, budget)
    }

    /// Solves a dense-model LP with an explicit per-phase pivot budget.
    pub fn solve_with_budget(&mut self, lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
        lp.validate().expect("invalid LP");
        let sp = SparseLp::from_dense(lp);
        self.solve_sparse_with_budget(&sp, max_pivots)
    }

    /// Solves a sparse LP with the default pivot budget.
    pub fn solve_sparse(&mut self, lp: &SparseLp) -> LpOutcome {
        self.solve_sparse_with_budget(lp, default_budget(lp))
    }

    /// Solves a sparse LP with an explicit per-phase pivot budget,
    /// warm-starting from the previous solve's basis when the structural
    /// pattern allows it.
    pub fn solve_sparse_with_budget(&mut self, lp: &SparseLp, max_pivots: u64) -> LpOutcome {
        lp.validate().expect("invalid LP");
        let hashes = lp.column_pattern_hashes();

        // Fast resolve: pattern, matrix values and objective identical to
        // the last optimal solve (rhs and bounds free to drift) — the
        // retained LU + eta chain is still a factorisation of the final
        // basis, so skip loading a fresh basis entirely.
        let fast = self.fast_resolve_applicable(lp, &hashes);
        self.load(lp);
        if fast {
            self.arm_deadline();
            self.stats.warm_attempts += 1;
            match self.try_fast_resolve(lp, &hashes, max_pivots) {
                // Watchdog-aborted fast resolve: fall through to the
                // warm/cold paths, each of which re-arms its deadline.
                Some(LpOutcome::Stalled) if self.deadline_hit => {}
                Some(outcome) => {
                    self.stats.warm_hits += 1;
                    return outcome;
                }
                None => self.stats.warm_attempts -= 1, // retry via warm path
            }
        }
        if let Some(plan) = self.warm_plan(lp, &hashes) {
            self.arm_deadline();
            self.stats.warm_attempts += 1;
            match self.try_warm(lp, &hashes, plan, max_pivots) {
                Some(LpOutcome::Stalled) if self.deadline_hit => {}
                Some(outcome) => {
                    self.stats.warm_hits += 1;
                    return outcome;
                }
                None => {}
            }
        }
        self.arm_deadline();
        self.cold(lp, &hashes, max_pivots)
    }

    // --- loading --------------------------------------------------------

    /// Builds the unified column arrays, bounds and rhs for `lp`. Never
    /// touches `basis`/`vstat`/`lu`/`etas` — the fast path retains them.
    fn load(&mut self, lp: &SparseLp) {
        let n = lp.n_vars();
        let m = lp.n_rows();
        self.n = n;
        self.m = m;
        self.n_total = n + m;

        self.col_ptr.clear();
        self.col_rows.clear();
        self.col_vals.clear();
        self.col_ptr.extend_from_slice(&lp.a.col_ptr);
        self.col_rows.extend_from_slice(&lp.a.row_idx);
        self.col_vals.extend_from_slice(&lp.a.values);
        for r in 0..m {
            self.col_rows.push(r);
            self.col_vals.push(1.0);
            self.col_ptr.push(self.col_rows.len());
        }

        self.lower.clear();
        self.upper.clear();
        self.lower.resize(n, 0.0);
        self.upper.extend_from_slice(&lp.upper);
        for r in 0..m {
            // `a·x + s = b` with the logical's bounds encoding the
            // relation: ≤ → s ∈ [0, ∞), ≥ → s ∈ (−∞, 0], = → s fixed.
            let (lo, hi) = match lp.rel[r] {
                Relation::Le => (0.0, f64::INFINITY),
                Relation::Ge => (f64::NEG_INFINITY, 0.0),
                Relation::Eq => (0.0, 0.0),
            };
            self.lower.push(lo);
            self.upper.push(hi);
        }

        self.obj_real.clear();
        self.obj_real.extend_from_slice(&lp.objective);
        self.obj_real.resize(self.n_total, 0.0);
        self.cost.clear();
        self.cost.resize(self.n_total, 0.0);
        self.enterable.clear();
        self.enterable.resize(self.n_total, true);
        self.rels.clear();
        self.rels.extend_from_slice(&lp.rel);
        self.rhs.clear();
        self.rhs.extend_from_slice(&lp.rhs);

        self.work_rows.resize(m, 0.0);
        self.work_slots.resize(m, 0.0);
        self.step_buf.resize(m, 0.0);
        self.w_col.resize(m, 0.0);
        self.y_rows.resize(m, 0.0);
        self.rho_rows.resize(m, 0.0);
        self.xb.resize(m, 0.0);
    }

    // --- linear algebra over the factorisation --------------------------

    /// Rebuilds the LU factors from the current basis columns and clears
    /// the eta chain. `Err` means the basis is numerically singular.
    fn refactorize(&mut self) -> Result<(), ()> {
        self.fact_ptr.clear();
        self.fact_rows.clear();
        self.fact_vals.clear();
        self.fact_ptr.push(0);
        for s in 0..self.m {
            let j = self.basis[s];
            let (cs, ce) = (self.col_ptr[j], self.col_ptr[j + 1]);
            self.fact_rows.extend_from_slice(&self.col_rows[cs..ce]);
            self.fact_vals.extend_from_slice(&self.col_vals[cs..ce]);
            self.fact_ptr.push(self.fact_rows.len());
        }
        self.etas.clear();
        self.stats.refactorizations += 1;
        self.lu.factorize(self.m, &self.fact_ptr, &self.fact_rows, &self.fact_vals)
    }

    /// Recomputes `xb = B⁻¹(b − N·x_N)` from the rest positions.
    fn compute_xb(&mut self) {
        self.work_rows.copy_from_slice(&self.rhs);
        for j in 0..self.n_total {
            let v = match self.vstat[j] {
                VStat::Basic => continue,
                VStat::AtLower => self.lower[j],
                VStat::AtUpper => self.upper[j],
            };
            debug_assert!(v.is_finite(), "nonbasic at an infinite bound");
            if v != 0.0 {
                for e in self.col_ptr[j]..self.col_ptr[j + 1] {
                    self.work_rows[self.col_rows[e]] -= self.col_vals[e] * v;
                }
            }
        }
        self.lu.ftran(&mut self.work_rows, &mut self.xb, &mut self.step_buf);
        for eta in &self.etas {
            eta.ftran(&mut self.xb);
        }
    }

    /// `w_col = B⁻¹ A_j` (slot space).
    fn ftran_col(&mut self, j: usize) {
        for v in &mut self.work_rows {
            *v = 0.0;
        }
        for e in self.col_ptr[j]..self.col_ptr[j + 1] {
            self.work_rows[self.col_rows[e]] = self.col_vals[e];
        }
        self.lu.ftran(&mut self.work_rows, &mut self.w_col, &mut self.step_buf);
        for eta in &self.etas {
            eta.ftran(&mut self.w_col);
        }
    }

    /// `y = B⁻ᵀ c_B` (row space) for the phase cost in flight.
    fn compute_duals(&mut self) {
        for s in 0..self.m {
            self.work_slots[s] = self.cost[self.basis[s]];
        }
        for eta in self.etas.iter().rev() {
            eta.btran(&mut self.work_slots);
        }
        self.lu.btran(&self.work_slots, &mut self.y_rows, &mut self.step_buf);
    }

    /// Reduced cost `c_j − y·A_j` against the current duals.
    fn reduced_cost(&self, j: usize) -> f64 {
        let mut d = self.cost[j];
        for e in self.col_ptr[j]..self.col_ptr[j + 1] {
            d -= self.y_rows[self.col_rows[e]] * self.col_vals[e];
        }
        d
    }

    // --- primal simplex -------------------------------------------------

    /// Violation magnitude of column `j` if it is eligible to enter.
    fn entering_violation(&self, j: usize) -> Option<f64> {
        if self.vstat[j] == VStat::Basic || !self.enterable[j] {
            return None;
        }
        if self.upper[j] - self.lower[j] <= 0.0 {
            return None; // fixed (Eq logicals, frozen artificials)
        }
        let d = self.reduced_cost(j);
        match self.vstat[j] {
            VStat::AtLower if d > TOL => Some(d),
            VStat::AtUpper if d < -TOL => Some(-d),
            _ => None,
        }
    }

    /// Picks the entering column: partial pricing normally, a full
    /// lowest-index scan under Bland's rule.
    fn select_entering(&mut self, bland: bool) -> Option<usize> {
        if bland {
            self.stats.pricing_scans += 1;
            return (0..self.n_total).find(|&j| self.entering_violation(j).is_some());
        }
        let mut pricing = std::mem::take(&mut self.pricing);
        let before = pricing.scans;
        let pick = pricing.select(self.n_total, |j| self.entering_violation(j));
        self.stats.pricing_scans += pricing.scans - before;
        self.pricing = pricing;
        pick
    }

    /// Runs bounded-variable primal simplex to optimality on the phase
    /// cost in flight.
    fn optimise(&mut self, max_pivots: u64) -> OptOutcome {
        self.pricing.invalidate();
        let mut pivots = 0u64;
        let mut streak = 0u64;
        loop {
            pivots += 1;
            if pivots > max_pivots {
                return OptOutcome::Stalled;
            }
            if let Some(delay) = self.pivot_delay {
                std::thread::sleep(delay);
            }
            if (self.pivot_delay.is_some() || pivots & (WATCHDOG_STRIDE - 1) == 0)
                && self.deadline_expired()
            {
                return OptOutcome::Stalled;
            }
            self.compute_duals();
            let bland = streak >= DEGENERATE_STREAK;
            let Some(j) = self.select_entering(bland) else {
                return OptOutcome::Optimal;
            };
            // Direction the entering variable moves off its bound.
            let dir = if self.vstat[j] == VStat::AtLower { 1.0 } else { -1.0 };
            self.ftran_col(j);
            // Ratio test: basic variable `s` moves at −dir·w[s]; it blocks
            // at whichever of its bounds that motion runs into.
            let mut bt = f64::INFINITY;
            let mut bs = usize::MAX;
            let mut babs = 0.0f64;
            let mut b_to_upper = false;
            for s in 0..self.m {
                let w = self.w_col[s];
                let rate = dir * w;
                let jb = self.basis[s];
                let (t, to_upper) = if rate > PIVOT_TOL {
                    let lb = self.lower[jb];
                    if !lb.is_finite() {
                        continue;
                    }
                    (((self.xb[s] - lb) / rate).max(0.0), false)
                } else if rate < -PIVOT_TOL {
                    let ub = self.upper[jb];
                    if !ub.is_finite() {
                        continue;
                    }
                    (((ub - self.xb[s]) / -rate).max(0.0), true)
                } else {
                    continue;
                };
                let better = t < bt - TOL
                    || (t < bt + TOL
                        && bs != usize::MAX
                        && if bland {
                            self.basis[s] < self.basis[bs]
                        } else {
                            w.abs() > babs
                        });
                if bs == usize::MAX && t < bt || better {
                    bt = t;
                    bs = s;
                    babs = w.abs();
                    b_to_upper = to_upper;
                }
            }
            let span = self.upper[j] - self.lower[j];
            if span <= bt {
                if span.is_infinite() {
                    // Nothing blocks. Grey-zone entries in (TOL, PIVOT_TOL]
                    // against a finite bound mean we cannot honestly
                    // certify unboundedness.
                    let murky = (0..self.m).any(|s| {
                        let rate = dir * self.w_col[s];
                        let jb = self.basis[s];
                        (rate > TOL && self.lower[jb].is_finite())
                            || (rate < -TOL && self.upper[jb].is_finite())
                    });
                    return if murky { OptOutcome::Stalled } else { OptOutcome::Unbounded };
                }
                // Bound flip: the entering variable crosses its whole
                // range before anything blocks — no basis change, no eta.
                for s in 0..self.m {
                    self.xb[s] -= dir * self.w_col[s] * span;
                }
                self.vstat[j] = if dir > 0.0 { VStat::AtUpper } else { VStat::AtLower };
                self.stats.pivots += 1;
                streak = if span <= TOL { streak + 1 } else { 0 };
                continue;
            }
            // Basis exchange at slot `bs`.
            let t = bt;
            let p = bs;
            for s in 0..self.m {
                self.xb[s] -= dir * self.w_col[s] * t;
            }
            let from = if dir > 0.0 { self.lower[j] } else { self.upper[j] };
            let leaving = self.basis[p];
            self.vstat[leaving] = if b_to_upper { VStat::AtUpper } else { VStat::AtLower };
            self.vstat[j] = VStat::Basic;
            self.basis[p] = j;
            self.xb[p] = from + dir * t;
            self.push_eta(p);
            streak = if t <= TOL { streak + 1 } else { 0 };
            if self.etas.len() >= REFACTOR_EVERY {
                if self.refactorize().is_err() {
                    return OptOutcome::Stalled;
                }
                self.compute_xb();
            }
        }
    }

    /// Records the basis exchange at slot `p` as a product-form eta built
    /// from the current `w_col` (the entering column's ftran image).
    fn push_eta(&mut self, p: usize) {
        let dp = self.w_col[p];
        debug_assert!(dp.abs() > ETA_DROP_TOL, "eta pivot ~zero");
        let d: Vec<(usize, f64)> = (0..self.m)
            .filter(|&s| s != p && self.w_col[s].abs() > ETA_DROP_TOL)
            .map(|s| (s, self.w_col[s]))
            .collect();
        self.etas.push(Eta { slot: p, d, dp });
        self.stats.pivots += 1;
        self.stats.eta_updates += 1;
    }

    // --- dual repair -----------------------------------------------------

    /// Largest bound violation across the basic variables.
    fn max_primal_violation(&self) -> f64 {
        let mut v = 0.0f64;
        for s in 0..self.m {
            let j = self.basis[s];
            v = v.max(self.lower[j] - self.xb[s]).max(self.xb[s] - self.upper[j]);
        }
        v
    }

    /// Squashes sub-tolerance bound violations left by repair/drift.
    fn clamp_basics(&mut self) {
        for s in 0..self.m {
            let j = self.basis[s];
            self.xb[s] = self.xb[s].clamp(self.lower[j], self.upper[j]);
        }
    }

    /// Bounded dual simplex: restores primal feasibility of a warm basis
    /// whose reduced costs are still optimal. Returns `false` when the
    /// basis is not dual-feasible, no pivot is available, or the budget /
    /// watchdog runs out — callers fall back to a cold solve.
    fn dual_repair(&mut self, max_pivots: u64) -> bool {
        self.cost.copy_from_slice(&self.obj_real);
        self.compute_duals();
        // Dual-feasibility precheck against the real costs: a violated
        // reduced cost means the matrix/objective changed, not just the
        // rhs — repair would chase a moving target, go cold instead.
        for j in 0..self.n_total {
            if self.vstat[j] == VStat::Basic || !self.enterable[j] {
                continue;
            }
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(j);
            match self.vstat[j] {
                VStat::AtLower if d > DUAL_FEAS_TOL => return false,
                VStat::AtUpper if d < -DUAL_FEAS_TOL => return false,
                _ => {}
            }
        }
        let mut pivots = 0u64;
        loop {
            // Leaving slot: worst bound violation; none left = repaired.
            let mut worst = WARM_FEAS_TOL;
            let mut p = usize::MAX;
            let mut below = false;
            for s in 0..self.m {
                let jb = self.basis[s];
                let vb = self.lower[jb] - self.xb[s];
                let va = self.xb[s] - self.upper[jb];
                if vb > worst {
                    worst = vb;
                    p = s;
                    below = true;
                }
                if va > worst {
                    worst = va;
                    p = s;
                    below = false;
                }
            }
            if p == usize::MAX {
                return true;
            }
            pivots += 1;
            if pivots > max_pivots {
                return false;
            }
            if let Some(delay) = self.pivot_delay {
                std::thread::sleep(delay);
            }
            if (self.pivot_delay.is_some() || pivots & (WATCHDOG_STRIDE - 1) == 0)
                && self.deadline_expired()
            {
                return false;
            }
            self.compute_duals();
            // Row of B⁻¹ for the leaving slot: rho = B⁻ᵀ e_p.
            for v in &mut self.work_slots {
                *v = 0.0;
            }
            self.work_slots[p] = 1.0;
            for eta in self.etas.iter().rev() {
                eta.btran(&mut self.work_slots);
            }
            self.lu.btran(&self.work_slots, &mut self.rho_rows, &mut self.step_buf);
            // Dual ratio test: entering candidates whose alpha sign moves
            // the leaving variable toward its violated bound while the
            // entering one moves off its own bound feasibly.
            let mut best_ratio = f64::INFINITY;
            let mut best_abs = 0.0f64;
            let mut enter = usize::MAX;
            for j in 0..self.n_total {
                if self.vstat[j] == VStat::Basic || !self.enterable[j] {
                    continue;
                }
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let mut alpha = 0.0;
                for e in self.col_ptr[j]..self.col_ptr[j + 1] {
                    alpha += self.rho_rows[self.col_rows[e]] * self.col_vals[e];
                }
                let eligible = if below {
                    (self.vstat[j] == VStat::AtLower && alpha < -PIVOT_TOL)
                        || (self.vstat[j] == VStat::AtUpper && alpha > PIVOT_TOL)
                } else {
                    (self.vstat[j] == VStat::AtLower && alpha > PIVOT_TOL)
                        || (self.vstat[j] == VStat::AtUpper && alpha < -PIVOT_TOL)
                };
                if !eligible {
                    continue;
                }
                let ratio = (self.reduced_cost(j) / alpha).max(0.0);
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && alpha.abs() > best_abs)
                {
                    best_ratio = ratio;
                    best_abs = alpha.abs();
                    enter = j;
                }
            }
            if enter == usize::MAX {
                return false;
            }
            self.ftran_col(enter);
            let alpha = self.w_col[p];
            if alpha.abs() < PIVOT_TOL {
                return false;
            }
            let jb = self.basis[p];
            let target = if below { self.lower[jb] } else { self.upper[jb] };
            let delta = (self.xb[p] - target) / alpha;
            for s in 0..self.m {
                self.xb[s] -= self.w_col[s] * delta;
            }
            let from = if self.vstat[enter] == VStat::AtLower {
                self.lower[enter]
            } else {
                self.upper[enter]
            };
            self.vstat[jb] = if below { VStat::AtLower } else { VStat::AtUpper };
            self.vstat[enter] = VStat::Basic;
            self.basis[p] = enter;
            self.xb[p] = from + delta;
            self.push_eta(p);
            if self.etas.len() >= REFACTOR_EVERY {
                if self.refactorize().is_err() {
                    return false;
                }
                self.compute_xb();
            }
        }
    }

    // --- warm / fast paths ----------------------------------------------

    /// True when the retained factorisation still factors this LP's final
    /// basis: saved pattern, relations, matrix values and objective all
    /// identical (rhs/bounds may drift — that is the point).
    fn fast_resolve_applicable(&self, lp: &SparseLp, hashes: &[u64]) -> bool {
        self.fact_valid
            && self.saved.as_ref().is_some_and(|s| {
                s.n == lp.n_vars()
                    && s.m == lp.n_rows()
                    && s.col_hashes == hashes
                    && s.rels == lp.rel
            })
            && self.saved_vals == lp.a.values
            && self.saved_obj == lp.objective
    }

    /// Resolves an rhs/bounds-only change on the retained basis: recompute
    /// `xb`, dual-repair any drift-induced infeasibility, Phase II
    /// (usually zero pivots). `None` = repair failed, caller goes warm/cold.
    fn try_fast_resolve(
        &mut self,
        lp: &SparseLp,
        hashes: &[u64],
        max_pivots: u64,
    ) -> Option<LpOutcome> {
        self.fact_valid = false;
        // The previous cold solve may have appended artificial entries.
        self.vstat.truncate(self.n_total);
        for j in 0..self.n_total {
            if self.vstat[j] == VStat::AtUpper && !self.upper[j].is_finite() {
                self.vstat[j] = VStat::AtLower;
            }
        }
        self.compute_xb();
        if self.max_primal_violation() > WARM_FEAS_TOL && !self.dual_repair(max_pivots) {
            return None;
        }
        self.clamp_basics();
        Some(self.phase_two(lp, hashes, max_pivots))
    }

    /// Maps the saved basis onto the new layout through the unchanged
    /// structural prefix. `None` when the common prefix diverges (pattern
    /// or relations changed in place, not just appended).
    fn warm_plan(&self, lp: &SparseLp, hashes: &[u64]) -> Option<(Vec<usize>, Vec<usize>)> {
        let saved = self.saved.as_ref()?;
        let n = lp.n_vars();
        let m = lp.n_rows();
        let np = saved
            .col_hashes
            .iter()
            .zip(hashes)
            .take_while(|(a, b)| a == b)
            .count();
        let mp = saved
            .rels
            .iter()
            .zip(&lp.rel)
            .take_while(|(a, b)| a == b)
            .count();
        if np < saved.n.min(n) || mp < saved.m.min(m) {
            return None;
        }
        let map = |r: &SavedRef| match *r {
            SavedRef::Structural(j) if j < np => Some(j),
            SavedRef::Logical(rr) if rr < mp => Some(n + rr),
            _ => None,
        };
        let mut used = vec![false; n + m];
        let mut basis = Vec::with_capacity(m);
        for r in &saved.basics {
            if let Some(col) = map(r) {
                if !used[col] && basis.len() < m {
                    used[col] = true;
                    basis.push(col);
                }
            }
        }
        // Uncovered slots host their row's logical.
        for r in 0..m {
            if basis.len() >= m {
                break;
            }
            if !used[n + r] {
                used[n + r] = true;
                basis.push(n + r);
            }
        }
        if basis.len() < m {
            return None;
        }
        let at_upper = saved
            .at_upper
            .iter()
            .filter_map(|r| map(r).filter(|&c| !used[c]))
            .collect();
        Some((basis, at_upper))
    }

    /// Warm path: refactorise the mapped basis, repair feasibility, run
    /// Phase II. `None` = singular/irreparable, caller goes cold.
    fn try_warm(
        &mut self,
        lp: &SparseLp,
        hashes: &[u64],
        plan: (Vec<usize>, Vec<usize>),
        max_pivots: u64,
    ) -> Option<LpOutcome> {
        self.fact_valid = false;
        let (basis_cols, at_upper_cols) = plan;
        self.vstat.clear();
        self.vstat.resize(self.n_total, VStat::AtLower);
        for r in 0..self.m {
            if self.rels[r] == Relation::Ge {
                self.vstat[self.n + r] = VStat::AtUpper;
            }
        }
        for &j in &at_upper_cols {
            if self.upper[j].is_finite() {
                self.vstat[j] = VStat::AtUpper;
            }
        }
        for &j in &basis_cols {
            self.vstat[j] = VStat::Basic;
        }
        self.basis = basis_cols;
        if self.refactorize().is_err() {
            return None;
        }
        self.compute_xb();
        if self.max_primal_violation() > WARM_FEAS_TOL && !self.dual_repair(max_pivots) {
            return None;
        }
        self.clamp_basics();
        Some(self.phase_two(lp, hashes, max_pivots))
    }

    // --- cold path -------------------------------------------------------

    /// Appends an artificial column `±e_row` (enterable never, used only
    /// to host an rhs the row's logical cannot).
    fn push_artificial(&mut self, row: usize, sign: f64) -> usize {
        let j = self.n_total;
        self.col_rows.push(row);
        self.col_vals.push(sign);
        self.col_ptr.push(self.col_rows.len());
        self.lower.push(0.0);
        self.upper.push(f64::INFINITY);
        self.obj_real.push(0.0);
        self.cost.push(0.0);
        self.enterable.push(false);
        self.vstat.push(VStat::Basic);
        self.n_total += 1;
        j
    }

    /// Cold path: all-logical start, Phase I drives artificials out of
    /// rows whose logical cannot host the rhs, Phase II optimises.
    fn cold(&mut self, lp: &SparseLp, hashes: &[u64], max_pivots: u64) -> LpOutcome {
        self.stats.cold_solves += 1;
        self.fact_valid = false;
        let (n, m) = (self.n, self.m);
        self.basis.clear();
        self.basis.extend(n..n + m);
        self.vstat.clear();
        self.vstat.resize(self.n_total, VStat::AtLower);
        for s in 0..m {
            self.vstat[n + s] = VStat::Basic;
        }
        self.xb.copy_from_slice(&self.rhs);
        let mut artificial_rows = Vec::new();
        for r in 0..m {
            let b = self.rhs[r];
            let logical = n + r;
            let hostable = b >= self.lower[logical] - TOL && b <= self.upper[logical] + TOL;
            if hostable {
                continue;
            }
            let sign = if b >= 0.0 { 1.0 } else { -1.0 };
            let ac = self.push_artificial(r, sign);
            artificial_rows.push(r);
            self.basis[r] = ac;
            self.xb[r] = b.abs();
            // Park the displaced logical at its natural (finite) bound.
            self.vstat[logical] = if self.rels[r] == Relation::Ge {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
        }
        if self.refactorize().is_err() {
            return LpOutcome::Stalled;
        }
        if !artificial_rows.is_empty() {
            // Phase I: maximise −Σ artificials.
            for c in &mut self.cost {
                *c = 0.0;
            }
            for j in (n + m)..self.n_total {
                self.cost[j] = -1.0;
            }
            match self.optimise(max_pivots) {
                OptOutcome::Optimal => {}
                // Phase I is bounded by construction; Unbounded here is a
                // numerical artifact — treat it as a stall.
                OptOutcome::Unbounded | OptOutcome::Stalled => return LpOutcome::Stalled,
            }
            let infeas: f64 = (0..m)
                .filter(|&s| self.basis[s] >= n + m)
                .map(|s| self.xb[s].max(0.0))
                .sum();
            if infeas > PHASE1_TOL {
                return LpOutcome::Infeasible;
            }
            // Freeze: any artificial still basic is pinned at zero.
            for j in (n + m)..self.n_total {
                self.upper[j] = 0.0;
            }
        }
        self.phase_two(lp, hashes, max_pivots)
    }

    // --- phase II / extraction -------------------------------------------

    fn phase_two(&mut self, lp: &SparseLp, hashes: &[u64], max_pivots: u64) -> LpOutcome {
        self.cost.copy_from_slice(&self.obj_real);
        match self.optimise(max_pivots) {
            OptOutcome::Unbounded => LpOutcome::Unbounded,
            OptOutcome::Stalled => LpOutcome::Stalled,
            OptOutcome::Optimal => {
                let mut x = vec![0.0; self.n];
                for (j, xj) in x.iter_mut().enumerate() {
                    if self.vstat[j] == VStat::AtUpper {
                        *xj = self.upper[j];
                    }
                }
                for s in 0..self.m {
                    let j = self.basis[s];
                    if j < self.n {
                        x[j] = self.xb[s].clamp(0.0, self.upper[j].max(0.0));
                    }
                }
                let objective = x.iter().zip(&lp.objective).map(|(xi, ci)| xi * ci).sum();
                self.save_state(lp, hashes);
                LpOutcome::Optimal(Solution { x, objective })
            }
        }
    }

    /// Retains the optimal basis + fingerprint for warm starts. A basis
    /// still containing an artificial (degenerate Phase I leftover)
    /// cannot seed a Phase-II-only restart and is not saved.
    fn save_state(&mut self, lp: &SparseLp, hashes: &[u64]) {
        let (n, m) = (self.n, self.m);
        if self.basis.iter().any(|&j| j >= n + m) {
            self.saved = None;
            self.fact_valid = false;
            return;
        }
        let as_ref = |j: usize| {
            if j < n {
                SavedRef::Structural(j)
            } else {
                SavedRef::Logical(j - n)
            }
        };
        let basics = self.basis.iter().map(|&j| as_ref(j)).collect();
        let at_upper = (0..n + m)
            .filter(|&j| self.vstat[j] == VStat::AtUpper)
            .map(as_ref)
            .collect();
        self.saved = Some(SavedBasis {
            n,
            m,
            col_hashes: hashes.to_vec(),
            rels: lp.rel.clone(),
            basics,
            at_upper,
        });
        self.saved_vals.clear();
        self.saved_vals.extend_from_slice(&lp.a.values);
        self.saved_obj.clear();
        self.saved_obj.extend_from_slice(&lp.objective);
        self.fact_valid = true;
    }
}

/// Pivot budget scaled to the problem size (same policy as the dense
/// backend).
fn default_budget(lp: &SparseLp) -> u64 {
    let m = lp.n_rows() as u64;
    let n = lp.n_vars() as u64;
    100_000u64.max(50 * (m + n))
}

/// Solves a dense-model LP through the sparse backend, one-shot.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    SparseSimplexSolver::new().solve(lp)
}

/// Solves a dense-model LP through the sparse backend with an explicit
/// per-phase pivot budget, one-shot.
pub fn solve_with_budget(lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
    SparseSimplexSolver::new().solve_with_budget(lp, max_pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpBuilder;
    use crate::sparse::SparseLpBuilder;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_two_var() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, z=36.
        // The two singleton rows lower to bounds; only one row remains.
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        b.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 36.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 3.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 5.0);
        assert_near(s.x[0] + s.x[1], 5.0);
    }

    #[test]
    fn ge_constraints() {
        // min x + 2y st x + y >= 4, y >= 1 (as max of negation).
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        let y = b.add_var(-2.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        b.add_constraint(&[(y, 1.0)], Relation::Ge, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, -5.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&b.build()), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve(&b.build()), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // -x <= -2 means x >= 2; max -x → x = 2.
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 2.0);
        assert_near(s.objective, -2.0);
    }

    #[test]
    fn degenerate_vertices_terminate() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0);
        b.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn beale_cycling_fixture_terminates() {
        // Beale's classic cycling example: Dantzig pricing with naive tie
        // breaks cycles forever. Partial pricing + the Bland fallback must
        // terminate at the optimum, z = 0.05 (x = (1/25, 0, 1, 0)).
        let mut b = LpBuilder::new();
        let x1 = b.add_var(0.75);
        let x2 = b.add_var(-150.0);
        let x3 = b.add_var(0.02);
        let x4 = b.add_var(-6.0);
        b.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        b.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        b.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 0.05);
    }

    #[test]
    fn zero_objective_finds_feasible_point() {
        let mut b = LpBuilder::new();
        let x = b.add_var(0.0);
        b.add_constraint(&[(x, 1.0)], Relation::Eq, 7.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 7.0);
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn pure_bound_program_flips_to_upper() {
        // Every row lowers to a bound: m = 0, solved by bound flips only.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 5.0);
        b.add_constraint(&[(y, 1.0)], Relation::Le, 3.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 8.0);
        assert_near(s.x[0], 5.0);
        assert_near(s.x[1], 3.0);
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let mut b = LpBuilder::new();
        let vars: Vec<usize> = (0..4).map(|i| b.add_var([2.0, -1.0, 3.0, 0.5][i])).collect();
        b.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0), (vars[2], 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(vars[2], 1.0), (vars[3], 2.0)], Relation::Le, 8.0);
        b.add_constraint(&[(vars[0], 1.0), (vars[3], -1.0)], Relation::Ge, 1.0);
        b.add_constraint(&[(vars[1], 1.0), (vars[2], 1.0)], Relation::Eq, 4.0);
        let lp = b.build();
        let s = solve(&lp).expect_optimal();
        for c in &lp.constraints {
            let lhs: f64 = c.coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            match c.op {
                Relation::Le => assert!(lhs <= c.rhs + 1e-6, "{lhs} <= {}", c.rhs),
                Relation::Ge => assert!(lhs >= c.rhs - 1e-6, "{lhs} >= {}", c.rhs),
                Relation::Eq => assert!((lhs - c.rhs).abs() < 1e-6, "{lhs} = {}", c.rhs),
            }
        }
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn maximum_matches_hand_dual() {
        let mut b = LpBuilder::new();
        let x = b.add_var(4.0);
        let y = b.add_var(3.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 15.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 24.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 4.0);
    }

    #[test]
    fn agrees_with_dense_backend_on_random_programs() {
        // Pseudo-random dense LPs: both backends must certify the same
        // optimum (or the same non-optimal outcome class).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..20 {
            let nv = 2 + (next() * 5.0) as usize;
            let nc = 1 + (next() * 5.0) as usize;
            let mut b = LpBuilder::new();
            let vars: Vec<usize> = (0..nv).map(|_| b.add_var(next() * 4.0 - 1.0)).collect();
            for _ in 0..nc {
                let terms: Vec<(usize, f64)> = vars
                    .iter()
                    .filter_map(|&v| {
                        if next() < 0.7 {
                            Some((v, next() * 3.0 + 0.1))
                        } else {
                            None
                        }
                    })
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                b.add_constraint(&terms, Relation::Le, next() * 20.0 + 1.0);
            }
            let lp = b.build();
            let sparse = solve(&lp);
            let dense = crate::simplex::SimplexSolver::new().solve(&lp);
            match (sparse, dense) {
                (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                    assert_near(a.objective, b.objective)
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    // --- warm-start behaviour ----------------------------------------

    fn textbook(r1: f64, r2: f64, r3: f64) -> LinearProgram {
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, r1);
        b.add_constraint(&[(y, 2.0)], Relation::Le, r2);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, r3);
        b.build()
    }

    #[test]
    fn warm_resolve_matches_cold_after_rhs_drift() {
        let mut solver = SparseSimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().cold_solves, 1);
        for (r1, r2, r3) in [(4.5, 11.0, 18.0), (4.0, 12.0, 17.0), (3.0, 13.0, 19.0)] {
            let lp = textbook(r1, r2, r3);
            let warm = solver.solve(&lp).expect_optimal();
            let cold = solve(&lp).expect_optimal();
            assert_near(warm.objective, cold.objective);
        }
        let stats = solver.stats();
        assert_eq!(stats.warm_attempts, 3);
        assert!(stats.warm_hits >= 1, "drifted rhs should keep the basis: {stats:?}");
    }

    #[test]
    fn dual_repair_rescues_rhs_only_drift() {
        let mut solver = SparseSimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        // x's capacity collapses below the x=2 the old basis carried.
        let lp = textbook(1.0, 12.0, 18.0);
        let warm = solver.solve(&lp).expect_optimal();
        let cold = solve(&lp).expect_optimal();
        assert_near(warm.objective, cold.objective);
        let stats = solver.stats();
        assert_eq!(stats.warm_attempts, 1);
        assert_eq!(stats.warm_hits, 1, "rhs-only drift must stay warm: {stats:?}");
    }

    #[test]
    fn warm_falls_back_when_basis_goes_infeasible() {
        let mut solver = SparseSimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        let lp = textbook(0.5, 1.0, 1.0);
        let warm = solver.solve(&lp).expect_optimal();
        let cold = solve(&lp).expect_optimal();
        assert_near(warm.objective, cold.objective);
    }

    #[test]
    fn warm_resolve_with_equalities() {
        let build = |cap: f64| {
            let mut b = LpBuilder::new();
            let x = b.add_var(1.0);
            let y = b.add_var(1.0);
            b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
            b.add_constraint(&[(x, 1.0)], Relation::Le, cap);
            b.build()
        };
        let mut solver = SparseSimplexSolver::new();
        let first = solver.solve(&build(3.0)).expect_optimal();
        assert_near(first.objective, 5.0);
        for cap in [2.5, 2.0, 3.5, 1.0] {
            let warm = solver.solve(&build(cap)).expect_optimal();
            let cold = solve(&build(cap)).expect_optimal();
            assert_near(warm.objective, cold.objective);
        }
    }

    #[test]
    fn appended_columns_keep_warm_start() {
        // The dirty-link augmentation shape: new columns appended at the
        // end, rows unchanged. The structural-prefix warm key must map
        // the saved basis instead of falling back cold.
        let base = |extra: bool| {
            let mut b = SparseLpBuilder::new(2);
            b.set_row(0, Relation::Le, 10.0);
            b.set_row(1, Relation::Le, 6.0);
            b.push_col(2.0, f64::INFINITY, &[(0, 1.0), (1, 1.0)]);
            b.push_col(1.0, 4.0, &[(0, 1.0)]);
            if extra {
                // A fake-edge column: attractive enough to enter.
                b.push_col(1.5, 2.0, &[(1, 1.0)]);
            }
            b.build()
        };
        let mut solver = SparseSimplexSolver::new();
        let first = solver.solve_sparse(&base(false)).expect_optimal();
        assert_near(first.objective, 16.0); // a = 6 (row1 cap), b = 4 (bound)
        let augmented = solver.solve_sparse(&base(true)).expect_optimal();
        let cold = SparseSimplexSolver::new().solve_sparse(&base(true)).expect_optimal();
        assert_near(augmented.objective, cold.objective);
        let stats = solver.stats();
        assert_eq!(stats.cold_solves, 1, "augmentation must not fall back cold: {stats:?}");
        assert_eq!(stats.warm_attempts, 1);
        assert_eq!(stats.warm_hits, 1);
    }

    #[test]
    fn stats_accumulate_consistently() {
        let mut solver = SparseSimplexSolver::new();
        for i in 0..5 {
            let lp = textbook(4.0 + i as f64 * 0.1, 12.0, 18.0);
            solver.solve(&lp).expect_optimal();
        }
        let stats = solver.stats();
        assert!(stats.warm_hits <= stats.warm_attempts);
        assert_eq!(stats.cold_solves + stats.warm_hits, 5);
        assert!(stats.pivots > 0);
        assert!(stats.refactorizations >= 1, "cold solve always factorises");
        assert!(stats.eta_updates <= stats.pivots);
        assert!(stats.warm_hit_rate() >= 0.0 && stats.warm_hit_rate() <= 1.0);
    }

    #[test]
    fn reset_forces_cold() {
        let mut solver = SparseSimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        solver.reset();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().warm_attempts, 0);
        assert_eq!(solver.stats().cold_solves, 2);
    }

    #[test]
    fn generous_watchdog_never_fires() {
        let mut solver = SparseSimplexSolver::new();
        solver.set_solve_timeout(Some(Duration::from_secs(60)));
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().watchdog_aborts, 0);
    }

    #[test]
    fn watchdog_turns_runaway_cold_solve_into_stalled() {
        let mut solver = SparseSimplexSolver::new();
        solver.set_solve_timeout(Some(Duration::from_millis(1)));
        solver.set_pivot_delay(Some(Duration::from_millis(10)));
        let outcome = solver.solve(&textbook(4.0, 12.0, 18.0));
        assert_eq!(outcome, LpOutcome::Stalled);
        assert_eq!(solver.stats().watchdog_aborts, 1);
    }

    #[test]
    fn watchdog_aborted_warm_attempt_falls_back_to_cold() {
        let mut solver = SparseSimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        let cold_before = solver.stats().cold_solves;
        solver.set_solve_timeout(Some(Duration::from_millis(1)));
        solver.set_pivot_delay(Some(Duration::from_millis(10)));
        let outcome = solver.solve(&textbook(4.0, 12.0, 17.0));
        assert_eq!(outcome, LpOutcome::Stalled);
        let stats = solver.stats();
        assert!(stats.watchdog_aborts >= 2, "stats: {stats:?}");
        assert_eq!(stats.cold_solves, cold_before + 1);
        solver.set_solve_timeout(None);
        solver.set_pivot_delay(None);
        solver.solve(&textbook(4.0, 12.0, 17.0)).expect_optimal();
    }

    #[test]
    fn budget_exhaustion_stalls() {
        let lp = textbook(4.0, 12.0, 18.0);
        assert_eq!(solve_with_budget(&lp, 0), LpOutcome::Stalled);
    }
}
