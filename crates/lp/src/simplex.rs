//! Two-phase primal simplex.
//!
//! Dense tableau, `1e-9` optimality tolerance. Pivot selection is
//! Dantzig's rule with a numerically stable ratio test (ties broken by
//! the largest pivot magnitude, and pivot elements below `PIVOT_TOL`
//! are never eligible — a degenerate pivot on a ~1e-9 element scales
//! the whole tableau by ~1e9 and the solve never recovers). A long
//! degenerate streak switches to Bland's rule for its termination
//! guarantee, and a hard pivot budget turns any residual stall into
//! [`LpOutcome::Stalled`] instead of a hang. Built for correctness on
//! the small/medium LPs the reproduction cross-validates against
//! (hundreds of variables), not for industrial scale.

use crate::model::{LinearProgram, Relation};

const TOL: f64 = 1e-9;
/// Minimum magnitude for a ratio-test pivot element.
const PIVOT_TOL: f64 = 1e-7;
/// Consecutive non-improving pivots before switching to Bland's rule.
const DEGENERATE_STREAK: u64 = 256;

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The pivot budget ran out before reaching optimality (numerical
    /// stall or pathological degeneracy). Callers should treat this as
    /// a solver failure, not a property of the model.
    Stalled,
}

impl LpOutcome {
    /// Unwraps the optimal solution; panics otherwise.
    pub fn expect_optimal(self) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal solution, got {other:?}"),
        }
    }
}

struct Tableau {
    /// Constraint matrix rows (m × n_total).
    a: Vec<Vec<f64>>,
    /// Right-hand sides (all ≥ 0 by construction).
    b: Vec<f64>,
    /// Objective row coefficients (reduced costs), length n_total.
    obj: Vec<f64>,
    /// Current objective value.
    obj_val: f64,
    /// Basis: basis[row] = column index of the basic variable.
    basis: Vec<usize>,
    n_total: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > TOL, "pivot on ~zero element");
        for x in self.a[row].iter_mut() {
            *x /= p;
        }
        self.b[row] /= p;
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() > TOL {
                for c in 0..self.n_total {
                    let v = self.a[row][c];
                    self.a[r][c] -= factor * v;
                }
                self.b[r] -= factor * self.b[row];
                if self.b[r] < 0.0 && self.b[r] > -TOL {
                    self.b[r] = 0.0;
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > TOL {
            for c in 0..self.n_total {
                self.obj[c] -= factor * self.a[row][c];
            }
            // Entering `factor > 0` worth of reduced cost at level b[row]
            // raises the objective.
            self.obj_val += factor * self.b[row];
        }
        self.basis[row] = col;
    }

    /// Runs simplex to optimality (maximisation: stop when all reduced
    /// costs ≤ tol). `allowed` masks columns eligible to enter;
    /// `max_pivots` bounds the total work.
    fn optimise(&mut self, allowed: &[bool], max_pivots: u64) -> OptimiseOutcome {
        let mut pivots = 0u64;
        let mut degenerate_streak = 0u64;
        loop {
            pivots += 1;
            if pivots > max_pivots {
                return OptimiseOutcome::Stalled;
            }
            // Entering column: Dantzig (largest reduced cost) normally;
            // Bland (lowest index) after a long degenerate streak, for
            // its termination guarantee.
            let bland = degenerate_streak >= DEGENERATE_STREAK;
            let mut col: Option<usize> = None;
            for (c, &ok) in allowed.iter().enumerate().take(self.n_total) {
                if ok && self.obj[c] > TOL {
                    if bland {
                        col = Some(c);
                        break;
                    }
                    if col.is_none_or(|best| self.obj[c] > self.obj[best]) {
                        col = Some(c);
                    }
                }
            }
            let Some(col) = col else {
                return OptimiseOutcome::Optimal;
            };
            // Ratio test. Pivot elements below PIVOT_TOL are ineligible:
            // a degenerate pivot on a near-zero element blows the tableau
            // up numerically. Ties on the minimum ratio go to the row
            // with the largest pivot magnitude (or lowest basis index
            // under Bland).
            let mut best: Option<(f64, usize)> = None;
            for r in 0..self.a.len() {
                let p = self.a[r][col];
                if p > PIVOT_TOL {
                    let ratio = self.b[r] / p;
                    let better = match best {
                        None => true,
                        Some((br, brow)) => {
                            ratio < br - TOL
                                || (ratio < br + TOL
                                    && if bland {
                                        self.basis[r] < self.basis[brow]
                                    } else {
                                        p > self.a[brow][col]
                                    })
                        }
                    };
                    if better {
                        best = Some((ratio, r));
                    }
                }
            }
            let Some((ratio, row)) = best else {
                // No eligible pivot row. If some column entries are in the
                // numerically grey zone (TOL, PIVOT_TOL] we cannot honestly
                // certify unboundedness; call it a stall.
                if (0..self.a.len()).any(|r| self.a[r][col] > TOL) {
                    return OptimiseOutcome::Stalled;
                }
                return OptimiseOutcome::Unbounded;
            };
            if ratio.abs() <= TOL {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(row, col);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptimiseOutcome {
    Optimal,
    Unbounded,
    Stalled,
}

/// Solves an LP (maximisation, `x ≥ 0`) with a pivot budget scaled to
/// the problem size.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    let m = lp.n_constraints() as u64;
    let n = lp.n_vars() as u64;
    // Generous: typical solves take O(m) pivots; the budget only trips
    // on numerical stalls or adversarial degeneracy.
    let budget = 100_000u64.max(50 * (m + n));
    solve_with_budget(lp, budget)
}

/// Solves an LP (maximisation, `x ≥ 0`) with an explicit per-phase
/// pivot budget. Returns [`LpOutcome::Stalled`] when the budget runs
/// out, which callers should surface as a solver error.
pub fn solve_with_budget(lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
    lp.validate().expect("invalid LP");
    let n = lp.n_vars();
    let m = lp.n_constraints();

    // Normalise: make every rhs non-negative by row negation.
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = lp
        .constraints
        .iter()
        .map(|c| (c.coeffs.clone(), c.op, c.rhs))
        .collect();
    for (coeffs, op, rhs) in &mut rows {
        if *rhs < 0.0 {
            for x in coeffs.iter_mut() {
                *x = -*x;
            }
            *rhs = -*rhs;
            *op = match *op {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    // Count extra columns: slack (Le), surplus+artificial (Ge),
    // artificial (Eq).
    let n_slack = rows.iter().filter(|r| r.1 == Relation::Le).count();
    let n_surplus = rows.iter().filter(|r| r.1 == Relation::Ge).count();
    let n_artificial = rows.iter().filter(|r| r.1 != Relation::Le).count();
    let n_total = n + n_slack + n_surplus + n_artificial;

    let mut a = vec![vec![0.0; n_total]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![0usize; m];
    let mut artificial_cols = Vec::new();
    let (mut slack_i, mut surplus_i, mut art_i) = (0, 0, 0);
    for (r, (coeffs, op, rhs)) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(coeffs);
        b[r] = *rhs;
        match op {
            Relation::Le => {
                let col = n + slack_i;
                slack_i += 1;
                a[r][col] = 1.0;
                basis[r] = col;
            }
            Relation::Ge => {
                let scol = n + n_slack + surplus_i;
                surplus_i += 1;
                a[r][scol] = -1.0;
                let acol = n + n_slack + n_surplus + art_i;
                art_i += 1;
                a[r][acol] = 1.0;
                basis[r] = acol;
                artificial_cols.push(acol);
            }
            Relation::Eq => {
                let acol = n + n_slack + n_surplus + art_i;
                art_i += 1;
                a[r][acol] = 1.0;
                basis[r] = acol;
                artificial_cols.push(acol);
            }
        }
    }

    let mut t = Tableau { a, b, obj: vec![0.0; n_total], obj_val: 0.0, basis, n_total };

    // Phase 1: maximise -(sum of artificials).
    if !artificial_cols.is_empty() {
        for &c in &artificial_cols {
            t.obj[c] = -1.0;
        }
        // Price out basic artificials: reduced row = c + Σ(artificial-basic
        // rows), objective value = −Σ of their rhs.
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                for c in 0..n_total {
                    t.obj[c] += t.a[r][c];
                }
                t.obj_val -= t.b[r];
            }
        }
        let allowed = vec![true; n_total];
        match t.optimise(&allowed, max_pivots) {
            OptimiseOutcome::Optimal => {}
            OptimiseOutcome::Stalled => return LpOutcome::Stalled,
            OptimiseOutcome::Unbounded => unreachable!("phase 1 cannot be unbounded"),
        }
        if t.obj_val < -1e-7 {
            return LpOutcome::Infeasible;
        }
        // Pivot remaining artificials out of the basis where possible.
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                if let Some(col) = (0..n + n_slack + n_surplus)
                    .find(|&c| t.a[r][c].abs() > PIVOT_TOL)
                {
                    t.pivot(r, col);
                }
                // Near-zero row: harmless, leave the artificial basic at
                // value 0 (pivoting on a tiny element would be worse).
            }
        }
    }

    // Phase 2: real objective; artificial columns are frozen out.
    t.obj = vec![0.0; n_total];
    t.obj[..n].copy_from_slice(&lp.objective);
    t.obj_val = 0.0;
    // Price out the current basis.
    for r in 0..m {
        let bc = t.basis[r];
        let coeff = t.obj[bc];
        if coeff.abs() > TOL {
            for c in 0..n_total {
                let v = t.a[r][c];
                t.obj[c] -= coeff * v;
            }
            t.obj_val += coeff * t.b[r];
        }
    }
    let mut allowed = vec![true; n_total];
    for &c in &artificial_cols {
        allowed[c] = false;
    }
    match t.optimise(&allowed, max_pivots) {
        OptimiseOutcome::Optimal => {}
        OptimiseOutcome::Stalled => return LpOutcome::Stalled,
        OptimiseOutcome::Unbounded => return LpOutcome::Unbounded,
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.b[r];
        }
    }
    LpOutcome::Optimal(Solution { x, objective: t.obj_val })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpBuilder;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_two_var() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, z=36.
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        b.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 36.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y st x + y = 5, x <= 3 → z = 5 (x=3,y=2 or any split).
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 3.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 5.0);
        assert_near(s.x[0] + s.x[1], 5.0);
    }

    #[test]
    fn ge_constraints() {
        // min x + 2y st x + y >= 4, y >= 1 (as max of negation)
        // → x=3, y=1, cost 5.
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        let y = b.add_var(-2.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        b.add_constraint(&[(y, 1.0)], Relation::Ge, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, -5.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&b.build()), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve(&b.build()), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // -x <= -2 means x >= 2; max -x → x = 2.
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 2.0);
        assert_near(s.objective, -2.0);
    }

    #[test]
    fn degenerate_vertices_terminate() {
        // Classic degeneracy: redundant constraints meeting at a vertex.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0);
        b.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn zero_objective_finds_feasible_point() {
        let mut b = LpBuilder::new();
        let x = b.add_var(0.0);
        b.add_constraint(&[(x, 1.0)], Relation::Eq, 7.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 7.0);
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        // Random-ish LP; verify feasibility of the returned point.
        let mut b = LpBuilder::new();
        let vars: Vec<usize> = (0..4).map(|i| b.add_var([2.0, -1.0, 3.0, 0.5][i])).collect();
        b.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0), (vars[2], 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(vars[2], 1.0), (vars[3], 2.0)], Relation::Le, 8.0);
        b.add_constraint(&[(vars[0], 1.0), (vars[3], -1.0)], Relation::Ge, 1.0);
        b.add_constraint(&[(vars[1], 1.0), (vars[2], 1.0)], Relation::Eq, 4.0);
        let lp = b.build();
        let s = solve(&lp).expect_optimal();
        for c in &lp.constraints {
            let lhs: f64 = c.coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            match c.op {
                Relation::Le => assert!(lhs <= c.rhs + 1e-6, "{lhs} <= {}", c.rhs),
                Relation::Ge => assert!(lhs >= c.rhs - 1e-6, "{lhs} >= {}", c.rhs),
                Relation::Eq => assert!((lhs - c.rhs).abs() < 1e-6, "{lhs} = {}", c.rhs),
            }
        }
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn maximum_matches_hand_dual() {
        // max 4x + 3y st 2x + y <= 10, x + 3y <= 15 → x=3, y=4, z=24.
        let mut b = LpBuilder::new();
        let x = b.add_var(4.0);
        let y = b.add_var(3.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 15.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 24.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 4.0);
    }
}
