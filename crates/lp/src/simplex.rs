//! Two-phase primal simplex over a flat, reusable tableau, with
//! basis warm-starting.
//!
//! The tableau is a contiguous row-major `Vec<f64>` (one allocation, one
//! cache-friendly stride per row) instead of a `Vec<Vec<f64>>`, and all
//! working storage lives in a [`SimplexSolver`] so repeated solves reuse
//! the same buffers. Pivot selection is Dantzig's rule with a numerically
//! stable ratio test (ties broken by the largest pivot magnitude, and
//! pivot elements below `PIVOT_TOL` are never eligible — a degenerate
//! pivot on a ~1e-9 element scales the whole tableau by ~1e9 and the
//! solve never recovers). A long degenerate streak switches to Bland's
//! rule for its termination guarantee, and a hard pivot budget turns any
//! residual stall into [`LpOutcome::Stalled`] instead of a hang.
//!
//! ## Warm starting
//!
//! A [`SimplexSolver`] remembers the optimal basis of its last solve.
//! When the next LP has the same shape (variable count and normalised
//! constraint relations — the layout that determines the slack/surplus/
//! artificial column assignment), the solver skips Phase I entirely: it
//! refactorises the old basis against the new coefficients (one
//! Gauss-Jordan pass, `m` pivots) and resumes Phase II from there. A
//! basis left primal-infeasible by rhs drift — a capacity dropped below
//! the flow the basis carried — is repaired with dual simplex pivots
//! (the reduced-cost row is still optimal, so feasibility is a handful
//! of pivots away); only a singular or dual-infeasible basis falls back
//! to a cold two-phase solve. Warm and cold solves of the same LP reach the
//! same optimal *objective* (both certify optimality of the same program;
//! the argmax may differ between degenerate vertices), which is the
//! equivalence the round engine's tests pin down to 1e-6.
//!
//! Built for correctness on the small/medium LPs the reproduction
//! cross-validates against (hundreds of variables), not for industrial
//! scale — but the flat tableau and warm starts make the per-round cost
//! of *re*-solving a slowly drifting LP several times cheaper than
//! solving it from scratch.

use crate::model::{LinearProgram, Relation};
use std::time::{Duration, Instant};

const TOL: f64 = 1e-9;
/// Pivots between wall-clock watchdog checks; a power of two so the test
/// compiles to a mask, keeping `Instant::now()` off the per-pivot path.
const WATCHDOG_STRIDE: u64 = 64;
/// Minimum magnitude for a ratio-test pivot element.
const PIVOT_TOL: f64 = 1e-7;
/// Minimum magnitude for a warm-start refactorisation pivot; below this
/// the saved basis is treated as singular and the solve falls back cold.
const REFACTOR_TOL: f64 = 1e-8;
/// Consecutive non-improving pivots before switching to Bland's rule.
const DEGENERATE_STREAK: u64 = 256;
/// Feasibility slack when accepting a refactorised warm basis.
const WARM_FEAS_TOL: f64 = 1e-7;

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The pivot budget ran out before reaching optimality (numerical
    /// stall or pathological degeneracy). Callers should treat this as
    /// a solver failure, not a property of the model.
    Stalled,
}

impl LpOutcome {
    /// Unwraps the optimal solution; panics otherwise.
    pub fn expect_optimal(self) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal solution, got {other:?}"),
        }
    }
}

/// Cumulative counters of a [`SimplexSolver`]'s warm-start behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solves that ran the cold two-phase path (including warm-start
    /// fallbacks).
    pub cold_solves: u64,
    /// Solves that attempted a warm start from the saved basis.
    pub warm_attempts: u64,
    /// Warm attempts that reached optimality without falling back.
    pub warm_hits: u64,
    /// Total pivots performed (both phases, all solves).
    pub pivots: u64,
    /// Solve attempts aborted by the wall-clock watchdog (each warm or
    /// cold attempt that hit its deadline counts once).
    pub watchdog_aborts: u64,
    /// Product-form eta updates pushed between refactorisations (sparse
    /// backend only; the dense tableau has no factorisation to update).
    pub eta_updates: u64,
    /// Basis refactorisations performed (sparse backend only).
    pub refactorizations: u64,
    /// Candidate-list refill scans over the full column set (sparse
    /// backend only; each scan prices up to the whole matrix once).
    pub pricing_scans: u64,
}

impl SolverStats {
    /// Fraction of warm attempts that stuck, in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_attempts == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_attempts as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptimiseOutcome {
    Optimal,
    Unbounded,
    Stalled,
}

/// A reusable simplex engine: flat tableau storage, scratch buffers and
/// the last optimal basis all persist across [`SimplexSolver::solve`]
/// calls, so a sequence of similar LPs (one TE round per capacity tick)
/// pays for allocation and Phase I once, not per round.
#[derive(Debug, Clone, Default)]
pub struct SimplexSolver {
    // --- tableau of the solve in flight -----------------------------
    /// Row-major m × n_total constraint matrix.
    a: Vec<f64>,
    /// Right-hand sides (≥ 0 after cold normalisation).
    b: Vec<f64>,
    /// Reduced-cost row, length n_total.
    obj: Vec<f64>,
    /// Current objective value.
    obj_val: f64,
    /// basis[row] = column index of the basic variable.
    basis: Vec<usize>,
    /// Columns eligible to enter (artificials are frozen in Phase II).
    allowed: Vec<bool>,
    /// Scratch copy of the pivot row (lets row updates iterate two
    /// disjoint slices without re-borrowing the tableau).
    pivot_row: Vec<f64>,
    /// Artificial column indices of the current layout.
    artificial_cols: Vec<usize>,
    // --- layout ------------------------------------------------------
    n: usize,
    m: usize,
    n_total: usize,
    /// Normalised relation per row (the thing that fixes the column
    /// layout); compared against the saved signature before warm starts.
    layout: Vec<Relation>,
    // --- warm-start state --------------------------------------------
    saved_basis: Vec<usize>,
    saved_layout: Vec<Relation>,
    saved_n: usize,
    has_saved: bool,
    // --- fast-resolve state ------------------------------------------
    /// True while `a`/`basis`/`obj` still hold the final tableau of the
    /// last optimal solve (cleared by `load`, set by a successful
    /// Phase II). With the fingerprint below it enables rhs-only
    /// resolves that skip loading and refactorisation entirely.
    tableau_valid: bool,
    /// Per row, the column that was this row's +1 unit column at load
    /// (slack for ≤ rows, artificial otherwise). In the final tableau
    /// these columns hold `B⁻¹`, which transforms a fresh rhs.
    unit_cols: Vec<usize>,
    /// Raw (un-normalised) coefficients of the last solved LP, flattened
    /// row-major, plus its objective, relations and rhs-sign pattern —
    /// the fingerprint that decides whether only the rhs changed.
    saved_coeffs: Vec<f64>,
    saved_objective: Vec<f64>,
    saved_ops: Vec<Relation>,
    saved_neg: Vec<bool>,
    stats: SolverStats,
    // --- watchdog -----------------------------------------------------
    /// Wall-clock budget per solve *attempt* (fast-resolve, warm, cold
    /// each get a fresh deadline). `None` disables the watchdog.
    solve_timeout: Option<Duration>,
    /// Deadline of the attempt in flight; transient, armed per attempt.
    deadline: Option<Instant>,
    /// The attempt in flight hit its deadline (distinguishes a watchdog
    /// abort from an ordinary pivot-budget stall).
    deadline_hit: bool,
    /// Chaos hook: artificial per-pivot delay, forcing a solve to run
    /// slow enough that the watchdog fires deterministically in tests.
    pivot_delay: Option<Duration>,
}

impl SimplexSolver {
    /// A solver with no saved basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Warm-start counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Drops the saved basis; the next solve runs cold.
    pub fn reset(&mut self) {
        self.has_saved = false;
        self.tableau_valid = false;
    }

    /// Arms (or disarms, with `None`) the solve-deadline watchdog: each
    /// solve attempt that runs past `timeout` of wall-clock time is
    /// aborted at the next stride boundary. An aborted *warm* attempt
    /// falls back to a cold solve with a fresh deadline; an aborted cold
    /// solve returns [`LpOutcome::Stalled`], which the TE layer maps to a
    /// typed timeout error instead of hanging the round.
    pub fn set_solve_timeout(&mut self, timeout: Option<Duration>) {
        self.solve_timeout = timeout;
    }

    /// Chaos hook: sleep this long before every pivot, making a solve
    /// arbitrarily slow so watchdog behaviour can be tested
    /// deterministically. `None` (the default) is a no-op.
    pub fn set_pivot_delay(&mut self, delay: Option<Duration>) {
        self.pivot_delay = delay;
    }

    /// Starts a fresh wall-clock budget for the next solve attempt.
    fn arm_deadline(&mut self) {
        self.deadline = self.solve_timeout.map(|t| Instant::now() + t);
        self.deadline_hit = false;
    }

    /// Checks the deadline (called every [`WATCHDOG_STRIDE`] pivots).
    /// Counts each attempt's abort once.
    fn deadline_expired(&mut self) -> bool {
        if self.deadline_hit {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_hit = true;
                self.stats.watchdog_aborts += 1;
                true
            }
            _ => false,
        }
    }

    /// Solves `lp` with the default pivot budget, warm-starting from the
    /// previous solve's basis when the layouts match.
    pub fn solve(&mut self, lp: &LinearProgram) -> LpOutcome {
        let m = lp.n_constraints() as u64;
        let n = lp.n_vars() as u64;
        // Generous: typical solves take O(m) pivots; the budget only
        // trips on numerical stalls or adversarial degeneracy.
        let budget = 100_000u64.max(50 * (m + n));
        self.solve_with_budget(lp, budget)
    }

    /// Solves `lp` with an explicit per-phase pivot budget.
    pub fn solve_with_budget(&mut self, lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
        lp.validate().expect("invalid LP");

        // Fast resolve: when only the rhs changed since the last optimal
        // solve, the final tableau is still a valid factorisation —
        // transform the new rhs through B⁻¹ (read off the unit columns)
        // and repair feasibility, skipping load + refactorisation.
        if self.fast_resolve_applicable(lp) {
            self.arm_deadline();
            self.stats.warm_attempts += 1;
            match self.try_fast_resolve(lp, max_pivots) {
                // A watchdog-aborted fast resolve is a runaway warm
                // attempt: fall through to the warm/cold paths below,
                // each of which re-arms its own deadline.
                Some(LpOutcome::Stalled) if self.deadline_hit => {}
                Some(outcome) => {
                    self.stats.warm_hits += 1;
                    return outcome;
                }
                None => self.stats.warm_attempts -= 1, // retry via full warm path
            }
        }

        self.load(lp);
        if self.warm_applicable() {
            self.arm_deadline();
            self.stats.warm_attempts += 1;
            match self.try_warm(lp, max_pivots) {
                // Runaway warm solve aborted by the watchdog: reload and
                // let the cold path below try with a fresh deadline
                // instead of surfacing the stall.
                Some(LpOutcome::Stalled) if self.deadline_hit => self.load(lp),
                Some(outcome) => {
                    self.stats.warm_hits += 1;
                    self.save_fingerprint(lp);
                    return outcome;
                }
                None => {
                    // Basis singular/infeasible under the new data: the
                    // tableau was mutated mid-refactorisation, reload and
                    // run the cold path.
                    self.load(lp);
                }
            }
        }
        self.arm_deadline();
        let outcome = self.cold(lp, max_pivots);
        self.save_fingerprint(lp);
        outcome
    }

    /// Remembers the raw LP just solved so the next call can detect an
    /// rhs-only change.
    fn save_fingerprint(&mut self, lp: &LinearProgram) {
        self.saved_coeffs.clear();
        for c in &lp.constraints {
            self.saved_coeffs.extend_from_slice(&c.coeffs);
        }
        self.saved_objective.clear();
        self.saved_objective.extend_from_slice(&lp.objective);
        self.saved_ops.clear();
        self.saved_ops.extend(lp.constraints.iter().map(|c| c.op));
        self.saved_neg.clear();
        self.saved_neg.extend(lp.constraints.iter().map(|c| c.rhs < 0.0));
    }

    /// True when the current tableau is a usable factorisation of `lp`:
    /// the last solve was optimal, its basis is artificial-free, and
    /// `lp` differs from the solved LP in rhs only (same coefficients,
    /// objective, relations and rhs-sign pattern).
    fn fast_resolve_applicable(&self, lp: &LinearProgram) -> bool {
        self.tableau_valid
            && self.has_saved
            && lp.n_vars() == self.n
            && lp.n_constraints() == self.m
            && self
                .saved_basis
                .iter()
                .all(|&c| c < self.n_total - self.artificial_cols.len())
            && lp.objective == self.saved_objective
            && lp
                .constraints
                .iter()
                .zip(self.saved_ops.iter().zip(&self.saved_neg))
                .all(|(c, (&op, &neg))| c.op == op && (c.rhs < 0.0) == neg)
            && lp
                .constraints
                .iter()
                .flat_map(|c| c.coeffs.iter())
                .eq(self.saved_coeffs.iter())
    }

    /// Resolves an rhs-only change in place: `b ← B⁻¹·|rhs|`, dual
    /// repair if drift made the basis infeasible, then Phase II (usually
    /// zero pivots — feasible + still-optimal reduced costs). Returns
    /// `None` when repair fails; the caller reloads and solves normally.
    fn try_fast_resolve(&mut self, lp: &LinearProgram, max_pivots: u64) -> Option<LpOutcome> {
        self.tableau_valid = false;
        let nt = self.n_total;
        self.pivot_row[..self.m].fill(0.0);
        for r in 0..self.m {
            let row = r * nt;
            let mut v = 0.0;
            for (i, &uc) in self.unit_cols.iter().enumerate() {
                let rhs = lp.constraints[i].rhs.abs();
                if rhs != 0.0 {
                    v += self.a[row + uc] * rhs;
                }
            }
            self.pivot_row[r] = v;
        }
        self.b.copy_from_slice(&self.pivot_row[..self.m]);
        if self.b.iter().any(|&v| v < -WARM_FEAS_TOL) && !self.dual_repair(lp, max_pivots) {
            return None;
        }
        for v in self.b.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        Some(self.phase_two(lp, max_pivots))
    }

    /// True when a saved basis exists for this exact layout and contains
    /// no artificial columns (an artificial left basic at zero from a
    /// degenerate cold solve cannot seed a Phase-II-only restart).
    fn warm_applicable(&self) -> bool {
        self.has_saved
            && self.saved_n == self.n
            && self.saved_layout == self.layout
            && self
                .saved_basis
                .iter()
                .all(|&c| c < self.n_total - self.artificial_cols.len())
    }

    /// Lowers `lp` into the flat tableau: normalises negative rhs rows by
    /// negation (coefficients are copied straight out of the borrowed
    /// constraints — no per-constraint clone), assigns slack/surplus/
    /// artificial columns and the initial (slack + artificial) basis.
    fn load(&mut self, lp: &LinearProgram) {
        let n = lp.n_vars();
        let m = lp.n_constraints();
        self.n = n;
        self.m = m;
        self.layout.clear();
        self.layout.extend(lp.constraints.iter().map(|c| {
            if c.rhs < 0.0 {
                match c.op {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                c.op
            }
        }));

        let n_slack = self.layout.iter().filter(|&&op| op == Relation::Le).count();
        let n_surplus = self.layout.iter().filter(|&&op| op == Relation::Ge).count();
        let n_artificial = self.layout.iter().filter(|&&op| op != Relation::Le).count();
        let n_total = n + n_slack + n_surplus + n_artificial;
        self.n_total = n_total;

        self.a.clear();
        self.a.resize(m * n_total, 0.0);
        self.b.clear();
        self.b.resize(m, 0.0);
        self.basis.clear();
        self.basis.resize(m, 0);
        self.artificial_cols.clear();
        self.pivot_row.clear();
        self.pivot_row.resize(n_total, 0.0);
        // Zeroed here so warm-path refactorisation pivots (which touch
        // the objective row) see a correctly sized buffer; phase II
        // re-prices it from the LP either way.
        self.obj.clear();
        self.obj.resize(n_total, 0.0);

        let (mut slack_i, mut surplus_i, mut art_i) = (0, 0, 0);
        for (r, c) in lp.constraints.iter().enumerate() {
            let row = &mut self.a[r * n_total..(r + 1) * n_total];
            let negate = c.rhs < 0.0;
            if negate {
                for (dst, &src) in row[..n].iter_mut().zip(&c.coeffs) {
                    *dst = -src;
                }
            } else {
                row[..n].copy_from_slice(&c.coeffs);
            }
            self.b[r] = c.rhs.abs();
            match self.layout[r] {
                Relation::Le => {
                    let col = n + slack_i;
                    slack_i += 1;
                    row[col] = 1.0;
                    self.basis[r] = col;
                }
                Relation::Ge => {
                    let scol = n + n_slack + surplus_i;
                    surplus_i += 1;
                    row[scol] = -1.0;
                    let acol = n + n_slack + n_surplus + art_i;
                    art_i += 1;
                    row[acol] = 1.0;
                    self.basis[r] = acol;
                    self.artificial_cols.push(acol);
                }
                Relation::Eq => {
                    let acol = n + n_slack + n_surplus + art_i;
                    art_i += 1;
                    row[acol] = 1.0;
                    self.basis[r] = acol;
                    self.artificial_cols.push(acol);
                }
            }
        }
        self.obj_val = 0.0;
        // The initial basis columns are exactly the rows' +1 unit
        // columns — the identity whose final-tableau image is B⁻¹.
        self.unit_cols.clear();
        self.unit_cols.extend_from_slice(&self.basis);
        self.tableau_valid = false;
    }

    /// Warm path: refactorise the saved basis against the freshly loaded
    /// tableau and, if it is still primal-feasible, run Phase II only.
    /// Returns `None` when the basis is singular or infeasible (caller
    /// reloads and goes cold). `Unbounded`/`Stalled` from Phase II are
    /// returned as-is — they are properties of the program / the budget,
    /// not of the starting basis.
    fn try_warm(&mut self, lp: &LinearProgram, max_pivots: u64) -> Option<LpOutcome> {
        // Gauss-Jordan with partial pivoting: make each saved basic
        // column a unit column. The saved row↔column association was
        // relative to the *final* tableau of the previous solve and means
        // nothing in the fresh matrix, so for each basic column pick the
        // not-yet-pivoted row with the largest magnitude. If none exceeds
        // the tolerance the basis matrix is singular under the new data.
        let mut row_done = vec![false; self.m];
        for i in 0..self.saved_basis.len() {
            let col = self.saved_basis[i];
            let mut best: Option<(f64, usize)> = None;
            for (r, &done) in row_done.iter().enumerate() {
                if done {
                    continue;
                }
                let p = self.a[r * self.n_total + col].abs();
                if best.is_none_or(|(bp, _)| p > bp) {
                    best = Some((p, r));
                }
            }
            let (p, r) = best?;
            if p < REFACTOR_TOL {
                return None;
            }
            self.pivot(r, col);
            row_done[r] = true;
        }
        // Primal feasibility of the refactorised basis. Mild
        // infeasibility — a capacity that drifted below the flow the old
        // basis carried — is the common case under per-round drift, and
        // the objective row is typically still dual-feasible, so repair
        // it with dual simplex pivots instead of discarding the basis.
        if self.b.iter().any(|&v| v < -WARM_FEAS_TOL) && !self.dual_repair(lp, max_pivots) {
            return None;
        }
        for v in self.b.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        Some(self.phase_two(lp, max_pivots))
    }

    /// Dual simplex: restores primal feasibility of a refactorised warm
    /// basis whose reduced-cost row is still optimal (≤ 0 everywhere).
    /// Returns `false` when the basis is not dual-feasible (constraint
    /// coefficients changed, not just the rhs), no pivot is available,
    /// or the budget runs out — callers fall back to a cold solve.
    fn dual_repair(&mut self, lp: &LinearProgram, max_pivots: u64) -> bool {
        let nt = self.n_total;
        // Price the real objective out against the current basis, the
        // same pricing Phase II performs, so the reduced-cost row is
        // available for the dual ratio test.
        self.obj.clear();
        self.obj.resize(nt, 0.0);
        self.obj[..self.n].copy_from_slice(&lp.objective);
        self.obj_val = 0.0;
        for r in 0..self.m {
            let bc = self.basis[r];
            let coeff = self.obj[bc];
            if coeff.abs() > TOL {
                let row = r * nt;
                for c in 0..nt {
                    self.obj[c] -= coeff * self.a[row + c];
                }
                self.obj_val += coeff * self.b[r];
            }
        }
        self.allowed.clear();
        self.allowed.resize(nt, true);
        for i in 0..self.artificial_cols.len() {
            self.allowed[self.artificial_cols[i]] = false;
        }
        if (0..nt).any(|c| self.allowed[c] && self.obj[c] > TOL) {
            return false;
        }
        let mut pivots = 0u64;
        loop {
            // Leaving row: most negative rhs; none left means repaired.
            let mut worst: Option<(f64, usize)> = None;
            for r in 0..self.m {
                if self.b[r] < -WARM_FEAS_TOL
                    && worst.is_none_or(|(bv, _)| self.b[r] < bv)
                {
                    worst = Some((self.b[r], r));
                }
            }
            let Some((_, row)) = worst else {
                return true;
            };
            pivots += 1;
            if pivots > max_pivots {
                return false;
            }
            if let Some(delay) = self.pivot_delay {
                std::thread::sleep(delay);
            }
            // Watchdog: an expired deadline reports the repair as failed,
            // which sends the caller down the cold-fallback path.
            if (self.pivot_delay.is_some() || pivots & (WATCHDOG_STRIDE - 1) == 0)
                && self.deadline_expired()
            {
                return false;
            }
            // Entering column: dual ratio test over strictly negative
            // pivot elements keeps every reduced cost ≤ 0; ties go to
            // the larger pivot magnitude for stability.
            let rstart = row * nt;
            let mut best: Option<(f64, usize)> = None;
            for c in 0..nt {
                if !self.allowed[c] {
                    continue;
                }
                let p = self.a[rstart + c];
                if p < -PIVOT_TOL {
                    let ratio = self.obj[c] / p; // obj ≤ 0, p < 0 → ratio ≥ 0
                    let better = match best {
                        None => true,
                        Some((br, bc)) => {
                            ratio < br - TOL
                                || (ratio < br + TOL && -p > self.a[rstart + bc].abs())
                        }
                    };
                    if better {
                        best = Some((ratio, c));
                    }
                }
            }
            let Some((_, col)) = best else {
                // No negative entry in an infeasible row: the program may
                // be infeasible, but let the cold path certify that.
                return false;
            };
            self.pivot(row, col);
        }
    }

    /// Cold path: Phase I drives the artificials out, Phase II optimises
    /// the real objective. On optimality the basis is saved for the next
    /// warm start.
    fn cold(&mut self, lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
        self.stats.cold_solves += 1;
        if !self.artificial_cols.is_empty() {
            // Phase 1: maximise -(sum of artificials).
            self.obj.clear();
            self.obj.resize(self.n_total, 0.0);
            for i in 0..self.artificial_cols.len() {
                self.obj[self.artificial_cols[i]] = -1.0;
            }
            self.obj_val = 0.0;
            // Price out basic artificials: reduced row = c + Σ(artificial-
            // basic rows), objective value = −Σ of their rhs.
            for r in 0..self.m {
                if self.artificial_cols.contains(&self.basis[r]) {
                    let row = r * self.n_total;
                    for c in 0..self.n_total {
                        self.obj[c] += self.a[row + c];
                    }
                    self.obj_val -= self.b[r];
                }
            }
            self.allowed.clear();
            self.allowed.resize(self.n_total, true);
            match self.optimise(max_pivots) {
                OptimiseOutcome::Optimal => {}
                OptimiseOutcome::Stalled => return LpOutcome::Stalled,
                OptimiseOutcome::Unbounded => unreachable!("phase 1 cannot be unbounded"),
            }
            if self.obj_val < -1e-7 {
                return LpOutcome::Infeasible;
            }
            // Pivot remaining artificials out of the basis where possible.
            let n_real = self.n_total - self.artificial_cols.len();
            for r in 0..self.m {
                if self.artificial_cols.contains(&self.basis[r]) {
                    let row = r * self.n_total;
                    if let Some(col) =
                        (0..n_real).find(|&c| self.a[row + c].abs() > PIVOT_TOL)
                    {
                        self.pivot(r, col);
                    }
                    // Near-zero row: harmless, leave the artificial basic
                    // at value 0 (pivoting on a tiny element would be
                    // worse).
                }
            }
        }
        self.phase_two(lp, max_pivots)
    }

    /// Phase II from the current (feasible) basis: price out the real
    /// objective, optimise with artificials frozen, extract the solution
    /// and save the basis for the next warm start.
    fn phase_two(&mut self, lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
        self.obj.clear();
        self.obj.resize(self.n_total, 0.0);
        self.obj[..self.n].copy_from_slice(&lp.objective);
        self.obj_val = 0.0;
        // Price out the current basis.
        for r in 0..self.m {
            let bc = self.basis[r];
            let coeff = self.obj[bc];
            if coeff.abs() > TOL {
                let row = r * self.n_total;
                for c in 0..self.n_total {
                    self.obj[c] -= coeff * self.a[row + c];
                }
                self.obj_val += coeff * self.b[r];
            }
        }
        self.allowed.clear();
        self.allowed.resize(self.n_total, true);
        for i in 0..self.artificial_cols.len() {
            self.allowed[self.artificial_cols[i]] = false;
        }
        match self.optimise(max_pivots) {
            OptimiseOutcome::Optimal => {}
            OptimiseOutcome::Stalled => return LpOutcome::Stalled,
            OptimiseOutcome::Unbounded => return LpOutcome::Unbounded,
        }

        // Save the optimal basis for warm starts; the tableau itself
        // stays valid for rhs-only fast resolves until the next load.
        self.saved_basis.clear();
        self.saved_basis.extend_from_slice(&self.basis);
        self.saved_layout.clear();
        self.saved_layout.extend_from_slice(&self.layout);
        self.saved_n = self.n;
        self.has_saved = true;
        self.tableau_valid = true;

        let mut x = vec![0.0; self.n];
        for r in 0..self.m {
            if self.basis[r] < self.n {
                x[self.basis[r]] = self.b[r];
            }
        }
        LpOutcome::Optimal(Solution { x, objective: self.obj_val })
    }

    /// One Gauss-Jordan pivot on (row, col) over the flat tableau.
    fn pivot(&mut self, row: usize, col: usize) {
        let nt = self.n_total;
        let start = row * nt;
        let p = self.a[start + col];
        debug_assert!(p.abs() > TOL, "pivot on ~zero element");
        for x in &mut self.a[start..start + nt] {
            *x /= p;
        }
        self.b[row] /= p;
        // Snapshot the normalised pivot row so other rows can be updated
        // with plain disjoint slice iteration.
        self.pivot_row.copy_from_slice(&self.a[start..start + nt]);
        let pivot_b = self.b[row];
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let rstart = r * nt;
            let factor = self.a[rstart + col];
            if factor.abs() > TOL {
                for (x, &pv) in
                    self.a[rstart..rstart + nt].iter_mut().zip(&self.pivot_row)
                {
                    *x -= factor * pv;
                }
                self.b[r] -= factor * pivot_b;
                if self.b[r] < 0.0 && self.b[r] > -TOL {
                    self.b[r] = 0.0;
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > TOL {
            for (o, &pv) in self.obj.iter_mut().zip(&self.pivot_row) {
                *o -= factor * pv;
            }
            // Entering `factor > 0` worth of reduced cost at level b[row]
            // raises the objective.
            self.obj_val += factor * pivot_b;
        }
        self.basis[row] = col;
        self.stats.pivots += 1;
    }

    /// Runs simplex to optimality (maximisation: stop when all reduced
    /// costs ≤ tol). `self.allowed` masks columns eligible to enter;
    /// `max_pivots` bounds the total work.
    fn optimise(&mut self, max_pivots: u64) -> OptimiseOutcome {
        let nt = self.n_total;
        let mut pivots = 0u64;
        let mut degenerate_streak = 0u64;
        loop {
            pivots += 1;
            if pivots > max_pivots {
                return OptimiseOutcome::Stalled;
            }
            if let Some(delay) = self.pivot_delay {
                std::thread::sleep(delay);
            }
            // Watchdog: checked every stride (every pivot under a chaos
            // delay, where strides would outlast the test) so a runaway
            // solve becomes a Stalled outcome instead of a hang.
            if (self.pivot_delay.is_some() || pivots & (WATCHDOG_STRIDE - 1) == 0)
                && self.deadline_expired()
            {
                return OptimiseOutcome::Stalled;
            }
            // Entering column: Dantzig (largest reduced cost) normally;
            // Bland (lowest index) after a long degenerate streak, for
            // its termination guarantee.
            let bland = degenerate_streak >= DEGENERATE_STREAK;
            let mut col: Option<usize> = None;
            for (c, &ok) in self.allowed.iter().enumerate().take(nt) {
                if ok && self.obj[c] > TOL {
                    if bland {
                        col = Some(c);
                        break;
                    }
                    if col.is_none_or(|best| self.obj[c] > self.obj[best]) {
                        col = Some(c);
                    }
                }
            }
            let Some(col) = col else {
                return OptimiseOutcome::Optimal;
            };
            // Ratio test. Pivot elements below PIVOT_TOL are ineligible:
            // a degenerate pivot on a near-zero element blows the tableau
            // up numerically. Ties on the minimum ratio go to the row
            // with the largest pivot magnitude (or lowest basis index
            // under Bland).
            let mut best: Option<(f64, usize)> = None;
            for r in 0..self.m {
                let p = self.a[r * nt + col];
                if p > PIVOT_TOL {
                    let ratio = self.b[r] / p;
                    let better = match best {
                        None => true,
                        Some((br, brow)) => {
                            ratio < br - TOL
                                || (ratio < br + TOL
                                    && if bland {
                                        self.basis[r] < self.basis[brow]
                                    } else {
                                        p > self.a[brow * nt + col]
                                    })
                        }
                    };
                    if better {
                        best = Some((ratio, r));
                    }
                }
            }
            let Some((ratio, row)) = best else {
                // No eligible pivot row. If some column entries are in the
                // numerically grey zone (TOL, PIVOT_TOL] we cannot honestly
                // certify unboundedness; call it a stall.
                if (0..self.m).any(|r| self.a[r * nt + col] > TOL) {
                    return OptimiseOutcome::Stalled;
                }
                return OptimiseOutcome::Unbounded;
            };
            if ratio.abs() <= TOL {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(row, col);
        }
    }
}

/// Which simplex core to run. The sparse revised simplex is the default;
/// the dense tableau remains as an escape hatch (and as the oracle the
/// equivalence proptests pin the sparse backend against, to 1e-6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LpBackend {
    /// Legacy dense tableau: O(m·n) memory and per-pivot work. Exact and
    /// battle-tested, but does not survive large augmented graphs.
    Dense,
    /// Sparse revised simplex: CSC matrix, LU-factorised basis with
    /// product-form eta updates, bounded variables, partial pricing.
    #[default]
    Sparse,
}

/// Solves an LP (maximisation, `x ≥ 0`) with a pivot budget scaled to
/// the problem size, on the default (sparse) backend. One-shot: use a
/// persistent solver to amortise allocation and warm-start.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    crate::revised::solve(lp)
}

/// Solves an LP (maximisation, `x ≥ 0`) with an explicit per-phase
/// pivot budget on the default (sparse) backend. Returns
/// [`LpOutcome::Stalled`] when the budget runs out, which callers should
/// surface as a solver error.
pub fn solve_with_budget(lp: &LinearProgram, max_pivots: u64) -> LpOutcome {
    crate::revised::solve_with_budget(lp, max_pivots)
}

/// Solves an LP on an explicitly chosen backend, one-shot.
pub fn solve_with_backend(lp: &LinearProgram, backend: LpBackend) -> LpOutcome {
    match backend {
        LpBackend::Dense => SimplexSolver::new().solve(lp),
        LpBackend::Sparse => crate::revised::solve(lp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpBuilder;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_two_var() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, z=36.
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        b.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 36.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y st x + y = 5, x <= 3 → z = 5 (x=3,y=2 or any split).
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 3.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 5.0);
        assert_near(s.x[0] + s.x[1], 5.0);
    }

    #[test]
    fn ge_constraints() {
        // min x + 2y st x + y >= 4, y >= 1 (as max of negation)
        // → x=3, y=1, cost 5.
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        let y = b.add_var(-2.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        b.add_constraint(&[(y, 1.0)], Relation::Ge, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, -5.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&b.build()), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve(&b.build()), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // -x <= -2 means x >= 2; max -x → x = 2.
        let mut b = LpBuilder::new();
        let x = b.add_var(-1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 2.0);
        assert_near(s.objective, -2.0);
    }

    #[test]
    fn degenerate_vertices_terminate() {
        // Classic degeneracy: redundant constraints meeting at a vertex.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0);
        b.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn zero_objective_finds_feasible_point() {
        let mut b = LpBuilder::new();
        let x = b.add_var(0.0);
        b.add_constraint(&[(x, 1.0)], Relation::Eq, 7.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.x[0], 7.0);
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        // Random-ish LP; verify feasibility of the returned point.
        let mut b = LpBuilder::new();
        let vars: Vec<usize> = (0..4).map(|i| b.add_var([2.0, -1.0, 3.0, 0.5][i])).collect();
        b.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0), (vars[2], 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(vars[2], 1.0), (vars[3], 2.0)], Relation::Le, 8.0);
        b.add_constraint(&[(vars[0], 1.0), (vars[3], -1.0)], Relation::Ge, 1.0);
        b.add_constraint(&[(vars[1], 1.0), (vars[2], 1.0)], Relation::Eq, 4.0);
        let lp = b.build();
        let s = solve(&lp).expect_optimal();
        for c in &lp.constraints {
            let lhs: f64 = c.coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            match c.op {
                Relation::Le => assert!(lhs <= c.rhs + 1e-6, "{lhs} <= {}", c.rhs),
                Relation::Ge => assert!(lhs >= c.rhs - 1e-6, "{lhs} >= {}", c.rhs),
                Relation::Eq => assert!((lhs - c.rhs).abs() < 1e-6, "{lhs} = {}", c.rhs),
            }
        }
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn maximum_matches_hand_dual() {
        // max 4x + 3y st 2x + y <= 10, x + 3y <= 15 → x=3, y=4, z=24.
        let mut b = LpBuilder::new();
        let x = b.add_var(4.0);
        let y = b.add_var(3.0);
        b.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 10.0);
        b.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 15.0);
        let s = solve(&b.build()).expect_optimal();
        assert_near(s.objective, 24.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 4.0);
    }

    // --- warm-start behaviour ----------------------------------------

    /// The textbook LP with adjustable rhs values.
    fn textbook(r1: f64, r2: f64, r3: f64) -> LinearProgram {
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, r1);
        b.add_constraint(&[(y, 2.0)], Relation::Le, r2);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, r3);
        b.build()
    }

    #[test]
    fn warm_resolve_matches_cold_after_rhs_drift() {
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().cold_solves, 1);
        for (r1, r2, r3) in [(4.5, 11.0, 18.0), (4.0, 12.0, 17.0), (3.0, 13.0, 19.0)] {
            let lp = textbook(r1, r2, r3);
            let warm = solver.solve(&lp).expect_optimal();
            let cold = solve(&lp).expect_optimal();
            assert_near(warm.objective, cold.objective);
        }
        let stats = solver.stats();
        assert_eq!(stats.warm_attempts, 3);
        assert!(stats.warm_hits >= 1, "drifted rhs should keep the basis: {stats:?}");
    }

    #[test]
    fn dual_repair_rescues_rhs_only_drift() {
        // Pure rhs drift leaves the basis dual-feasible: the warm path
        // must repair it with dual pivots instead of going cold.
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        // x's capacity collapses below the x=2 the old basis carried.
        let lp = textbook(1.0, 12.0, 18.0);
        let warm = solver.solve(&lp).expect_optimal();
        let cold = solve(&lp).expect_optimal();
        assert_near(warm.objective, cold.objective);
        let stats = solver.stats();
        assert_eq!(stats.warm_attempts, 1);
        assert_eq!(stats.warm_hits, 1, "rhs-only drift must stay warm: {stats:?}");
    }

    #[test]
    fn warm_falls_back_when_basis_goes_infeasible() {
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        // Collapse the capacities: the old vertex (x=2, y=6) is far
        // outside the new polytope, so either the warm basis refactorises
        // infeasible (fallback) or Phase II walks back — the objective
        // must match a cold solve regardless.
        let lp = textbook(0.5, 1.0, 1.0);
        let warm = solver.solve(&lp).expect_optimal();
        let cold = solve(&lp).expect_optimal();
        assert_near(warm.objective, cold.objective);
    }

    #[test]
    fn layout_change_forces_cold_solve() {
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        // Different shape entirely (extra Ge row): must not warm start.
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        b.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        let lp = b.build();
        let before = solver.stats().warm_attempts;
        let s = solver.solve(&lp).expect_optimal();
        assert_near(s.objective, 36.0);
        assert_eq!(solver.stats().warm_attempts, before, "layout mismatch must skip warm");
        assert_eq!(solver.stats().cold_solves, 2);
    }

    #[test]
    fn warm_resolve_with_equalities() {
        // Equality rows force Phase I on the cold path; the warm path
        // must skip it and still agree.
        let build = |cap: f64| {
            let mut b = LpBuilder::new();
            let x = b.add_var(1.0);
            let y = b.add_var(1.0);
            b.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
            b.add_constraint(&[(x, 1.0)], Relation::Le, cap);
            b.build()
        };
        let mut solver = SimplexSolver::new();
        let first = solver.solve(&build(3.0)).expect_optimal();
        assert_near(first.objective, 5.0);
        for cap in [2.5, 2.0, 3.5, 1.0] {
            let warm = solver.solve(&build(cap)).expect_optimal();
            let cold = solve(&build(cap)).expect_optimal();
            assert_near(warm.objective, cold.objective);
        }
    }

    #[test]
    fn stats_accumulate_consistently() {
        let mut solver = SimplexSolver::new();
        for i in 0..5 {
            let lp = textbook(4.0 + i as f64 * 0.1, 12.0, 18.0);
            solver.solve(&lp).expect_optimal();
        }
        let stats = solver.stats();
        assert!(stats.warm_hits <= stats.warm_attempts);
        assert_eq!(stats.cold_solves + stats.warm_hits, 5);
        assert!(stats.pivots > 0);
        assert!(stats.warm_hit_rate() >= 0.0 && stats.warm_hit_rate() <= 1.0);
    }

    #[test]
    fn reset_forces_cold() {
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        solver.reset();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().warm_attempts, 0);
        assert_eq!(solver.stats().cold_solves, 2);
    }

    #[test]
    fn generous_watchdog_never_fires() {
        let mut solver = SimplexSolver::new();
        solver.set_solve_timeout(Some(Duration::from_secs(60)));
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        assert_eq!(solver.stats().watchdog_aborts, 0);
    }

    #[test]
    fn watchdog_turns_runaway_cold_solve_into_stalled() {
        let mut solver = SimplexSolver::new();
        solver.set_solve_timeout(Some(Duration::from_millis(1)));
        solver.set_pivot_delay(Some(Duration::from_millis(10)));
        let outcome = solver.solve(&textbook(4.0, 12.0, 18.0));
        assert_eq!(outcome, LpOutcome::Stalled);
        assert_eq!(solver.stats().watchdog_aborts, 1);
    }

    #[test]
    fn watchdog_aborted_warm_attempt_falls_back_to_cold() {
        let mut solver = SimplexSolver::new();
        solver.solve(&textbook(4.0, 12.0, 18.0)).expect_optimal();
        let cold_before = solver.stats().cold_solves;
        // Force slowness: the warm attempt hits its deadline, falls back,
        // and the cold attempt (fresh deadline) then times out too — each
        // abort counted once, and the solve returns Stalled, not a hang.
        solver.set_solve_timeout(Some(Duration::from_millis(1)));
        solver.set_pivot_delay(Some(Duration::from_millis(10)));
        let outcome = solver.solve(&textbook(4.0, 12.0, 17.0));
        assert_eq!(outcome, LpOutcome::Stalled);
        let stats = solver.stats();
        assert!(stats.watchdog_aborts >= 2, "stats: {stats:?}");
        assert_eq!(stats.cold_solves, cold_before + 1);
        // Disarm: the same drifted LP now solves fine.
        solver.set_solve_timeout(None);
        solver.set_pivot_delay(None);
        solver.solve(&textbook(4.0, 12.0, 17.0)).expect_optimal();
    }
}
