//! Sparse LP representation: CSC matrix + bounded-variable program.
//!
//! The revised simplex in [`crate::revised`] consumes a [`SparseLp`]: a
//! compressed-sparse-column constraint matrix over *bounded* variables
//! (`0 ≤ x_j ≤ u_j`, with `u_j = ∞` allowed). Bounds absorb what the
//! dense tableau models as singleton slack rows — a capacity constraint
//! `x_j ≤ cap` becomes a plain upper bound, which removes one row *and*
//! one slack column per capacity from the basis the LU factorisation has
//! to carry. [`SparseLp::from_dense`] performs exactly that lowering
//! (singleton-row → bound presolve) on a dense [`LinearProgram`], so the
//! two backends accept the same model type.
//!
//! The per-column *pattern hashes* ([`SparseLp::column_pattern_hashes`])
//! are the warm-start key: a saved basis is reusable when the structural
//! sparsity pattern of the common column prefix is unchanged, which is
//! what lets dirty-link augmentation (fake-edge columns appended at the
//! end) keep the factorisation instead of falling back cold.

use crate::model::{LinearProgram, Relation};

/// A compressed-sparse-column matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CscMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Column start offsets into `row_idx`/`values`; length `n_cols + 1`.
    pub col_ptr: Vec<usize>,
    /// Row index of each stored entry, ascending within a column.
    pub row_idx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CscMatrix {
    /// An empty matrix with `n_rows` rows and no columns yet.
    pub fn new(n_rows: usize) -> Self {
        Self { n_rows, n_cols: 0, col_ptr: vec![0], row_idx: Vec::new(), values: Vec::new() }
    }

    /// Appends one column given `(row, value)` entries. Entries must have
    /// ascending row indices; zero values may be included and are kept
    /// (the pattern, not the value, is the warm-start contract).
    pub fn push_col(&mut self, entries: &[(usize, f64)]) {
        let mut last: Option<usize> = None;
        for &(r, v) in entries {
            assert!(r < self.n_rows, "row {r} out of range ({} rows)", self.n_rows);
            assert!(last.is_none_or(|p| p < r), "rows must be strictly ascending");
            last = Some(r);
            self.row_idx.push(r);
            self.values.push(v);
        }
        self.n_cols += 1;
        self.col_ptr.push(self.row_idx.len());
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The `(rows, values)` slices of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// FNV-1a hash of column `j`'s row-index pattern (values excluded:
    /// coefficient drift must not invalidate a warm start).
    pub fn col_pattern_hash(&self, j: usize) -> u64 {
        let (rows, _) = self.col(j);
        let mut h: u64 = 0xcbf29ce484222325;
        for &r in rows {
            for byte in (r as u64).to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        // Fold the count in so the empty column hashes differently from
        // a missing one.
        h ^= rows.len() as u64;
        h
    }
}

/// A bounded-variable LP in computational form:
/// `max c·x  s.t.  A x {≤,=,≥} b,  0 ≤ x ≤ u` (`u_j = ∞` allowed).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseLp {
    /// Objective coefficients, length `a.n_cols`.
    pub objective: Vec<f64>,
    /// Constraint matrix, `m × n`.
    pub a: CscMatrix,
    /// Relation per row.
    pub rel: Vec<Relation>,
    /// Right-hand side per row.
    pub rhs: Vec<f64>,
    /// Upper bound per variable (`f64::INFINITY` for unbounded).
    pub upper: Vec<f64>,
}

impl SparseLp {
    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.a.n_cols
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.a.n_rows
    }

    /// Validates dimensional consistency, finiteness and bound signs.
    pub fn validate(&self) -> Result<(), String> {
        if self.a.n_cols == 0 {
            return Err("LP with no variables".into());
        }
        if self.objective.len() != self.a.n_cols {
            return Err("objective length != column count".into());
        }
        if self.rel.len() != self.a.n_rows || self.rhs.len() != self.a.n_rows {
            return Err("row metadata length != row count".into());
        }
        if self.upper.len() != self.a.n_cols {
            return Err("bound length != column count".into());
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err("non-finite objective coefficient".into());
        }
        if self.a.values.iter().any(|v| !v.is_finite()) {
            return Err("non-finite matrix entry".into());
        }
        if self.rhs.iter().any(|b| !b.is_finite()) {
            return Err("non-finite rhs".into());
        }
        if self.upper.iter().any(|&u| u.is_nan() || u < 0.0) {
            return Err("upper bound negative or NaN".into());
        }
        Ok(())
    }

    /// Per-column pattern hashes — the structural-sparsity warm-start key.
    pub fn column_pattern_hashes(&self) -> Vec<u64> {
        (0..self.a.n_cols).map(|j| self.a.col_pattern_hash(j)).collect()
    }

    /// Lowers a dense [`LinearProgram`] into sparse computational form.
    ///
    /// Singleton-row presolve: a row `a·x_j ≤ b` with a single positive
    /// coefficient and non-negative rhs is equivalent to the bound
    /// `x_j ≤ b/a` — it is absorbed into `upper` instead of becoming a
    /// row. This is deliberately conservative (only `≤`, only `a > 0`,
    /// only `b ≥ 0`) so the transformation can never change the feasible
    /// region over `x ≥ 0`; capacity rows match exactly, and the
    /// eligibility predicate depends on the pattern plus rhs *sign*, both
    /// stable under per-round capacity drift — drifting capacities move a
    /// bound, never the row layout.
    pub fn from_dense(lp: &LinearProgram) -> SparseLp {
        let n = lp.n_vars();
        let mut upper = vec![f64::INFINITY; n];
        let mut keep: Vec<&crate::model::Constraint> = Vec::with_capacity(lp.constraints.len());
        for c in &lp.constraints {
            let mut nz = c.coeffs.iter().enumerate().filter(|(_, &v)| v != 0.0);
            let single = match (nz.next(), nz.next()) {
                (Some((j, &a)), None) => Some((j, a)),
                _ => None,
            };
            match single {
                Some((j, a)) if c.op == Relation::Le && a > 0.0 && c.rhs >= 0.0 => {
                    let bound = c.rhs / a;
                    if bound < upper[j] {
                        upper[j] = bound;
                    }
                }
                _ => keep.push(c),
            }
        }
        // Dense rows arrive row-major; build CSC by counting then filling.
        let m = keep.len();
        let mut counts = vec![0usize; n];
        for c in &keep {
            for (j, &v) in c.coeffs.iter().enumerate() {
                if v != 0.0 {
                    counts[j] += 1;
                }
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + counts[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = col_ptr.clone();
        for (r, c) in keep.iter().enumerate() {
            for (j, &v) in c.coeffs.iter().enumerate() {
                if v != 0.0 {
                    let slot = next[j];
                    next[j] += 1;
                    row_idx[slot] = r;
                    values[slot] = v;
                }
            }
        }
        SparseLp {
            objective: lp.objective.clone(),
            a: CscMatrix { n_rows: m, n_cols: n, col_ptr, row_idx, values },
            rel: keep.iter().map(|c| c.op).collect(),
            rhs: keep.iter().map(|c| c.rhs).collect(),
            upper,
        }
    }
}

/// Incremental [`SparseLp`] construction, mirroring [`crate::LpBuilder`]
/// but emitting CSC columns directly — the TE lowering uses this to build
/// the LP edge-major without a dense intermediate.
#[derive(Debug, Clone)]
pub struct SparseLpBuilder {
    m: usize,
    objective: Vec<f64>,
    upper: Vec<f64>,
    a: CscMatrix,
    rel: Vec<Relation>,
    rhs: Vec<f64>,
}

impl SparseLpBuilder {
    /// A builder for a program with exactly `n_rows` constraint rows; row
    /// relations/rhs are declared up front via [`Self::set_row`], columns
    /// appended via [`Self::push_col`].
    pub fn new(n_rows: usize) -> Self {
        Self {
            m: n_rows,
            objective: Vec::new(),
            upper: Vec::new(),
            a: CscMatrix::new(n_rows),
            rel: vec![Relation::Le; n_rows],
            rhs: vec![0.0; n_rows],
        }
    }

    /// Declares row `r`'s relation and rhs.
    pub fn set_row(&mut self, r: usize, rel: Relation, rhs: f64) {
        self.rel[r] = rel;
        self.rhs[r] = rhs;
    }

    /// Appends a column with the given objective coefficient, upper bound
    /// and `(row, value)` entries (ascending rows); returns its index.
    pub fn push_col(&mut self, objective: f64, upper: f64, entries: &[(usize, f64)]) -> usize {
        self.objective.push(objective);
        self.upper.push(upper);
        self.a.push_col(entries);
        self.a.n_cols - 1
    }

    /// Finalises the program.
    pub fn build(self) -> SparseLp {
        debug_assert_eq!(self.a.n_rows, self.m);
        let lp = SparseLp {
            objective: self.objective,
            a: self.a,
            rel: self.rel,
            rhs: self.rhs,
            upper: self.upper,
        };
        debug_assert!(lp.validate().is_ok(), "builder produced an invalid LP");
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpBuilder;

    #[test]
    fn from_dense_extracts_capacity_bounds() {
        // x <= 4 (singleton) becomes a bound; the 2-var row stays.
        let mut b = LpBuilder::new();
        let x = b.add_var(3.0);
        let y = b.add_var(5.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        b.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sp = SparseLp::from_dense(&b.build());
        assert_eq!(sp.n_rows(), 1, "both singletons absorbed into bounds");
        assert_eq!(sp.upper, vec![4.0, 6.0]);
        assert_eq!(sp.a.col(0), (&[0usize][..], &[3.0][..]));
        assert_eq!(sp.a.col(1), (&[0usize][..], &[2.0][..]));
        sp.validate().unwrap();
    }

    #[test]
    fn negative_coefficient_singletons_stay_rows() {
        // -x <= 1 is a LOWER bound in disguise; must remain a row.
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        let sp = SparseLp::from_dense(&b.build());
        assert_eq!(sp.n_rows(), 1);
        assert_eq!(sp.upper, vec![f64::INFINITY]);
    }

    #[test]
    fn ge_and_eq_singletons_stay_rows() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        b.add_constraint(&[(x, 1.0)], Relation::Eq, 3.0);
        let sp = SparseLp::from_dense(&b.build());
        assert_eq!(sp.n_rows(), 2);
    }

    #[test]
    fn duplicate_singletons_take_min_bound() {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        b.add_constraint(&[(x, 1.0)], Relation::Le, 9.0);
        b.add_constraint(&[(x, 2.0)], Relation::Le, 10.0);
        let sp = SparseLp::from_dense(&b.build());
        assert_eq!(sp.upper, vec![5.0]);
        assert_eq!(sp.n_rows(), 0);
    }

    #[test]
    fn pattern_hash_ignores_values_tracks_rows() {
        let mut a = CscMatrix::new(4);
        a.push_col(&[(0, 1.0), (2, -1.0)]);
        a.push_col(&[(0, 7.0), (2, 3.5)]);
        a.push_col(&[(0, 1.0), (3, -1.0)]);
        assert_eq!(a.col_pattern_hash(0), a.col_pattern_hash(1));
        assert_ne!(a.col_pattern_hash(0), a.col_pattern_hash(2));
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = SparseLpBuilder::new(2);
        b.set_row(0, Relation::Eq, 0.0);
        b.set_row(1, Relation::Le, 5.0);
        let c0 = b.push_col(1.0, 10.0, &[(0, 1.0), (1, 1.0)]);
        let c1 = b.push_col(-0.5, f64::INFINITY, &[(0, -1.0)]);
        assert_eq!((c0, c1), (0, 1));
        let lp = b.build();
        lp.validate().unwrap();
        assert_eq!(lp.n_vars(), 2);
        assert_eq!(lp.a.nnz(), 3);
    }

    #[test]
    #[should_panic]
    fn unsorted_rows_rejected() {
        let mut a = CscMatrix::new(3);
        a.push_col(&[(2, 1.0), (0, 1.0)]);
    }
}
