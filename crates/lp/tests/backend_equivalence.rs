//! Backend equivalence: the sparse revised simplex against the dense
//! tableau on randomized multi-commodity-flow instances and on the drift
//! sequences the TE round engine produces.
//!
//! Both backends solve the *same* `LinearProgram`; the dense tableau is
//! the oracle (it predates the sparse core and is pinned by its own
//! vertex-enumeration property suite). Every test asserts objective
//! agreement to 1e-6 — the same tolerance the `LpBackend::Dense` escape
//! hatch promises.

use proptest::prelude::*;
use rwc_lp::model::{LinearProgram, LpBuilder, Relation};
use rwc_lp::simplex::{LpOutcome, SimplexSolver};
use rwc_lp::SparseSimplexSolver;
use std::time::Duration;

/// A random multi-commodity-flow instance in dense `LinearProgram` form:
/// per-commodity flow variables on each directed edge, conservation
/// equalities at interior nodes, a demand cap at each source, shared
/// capacity rows, and a maximise-delivery objective.
#[derive(Debug, Clone)]
struct McfInstance {
    n_nodes: usize,
    /// Directed edges `(from, to, capacity)`.
    edges: Vec<(usize, usize, f64)>,
    /// Commodities `(source, sink, demand)`.
    commodities: Vec<(usize, usize, f64)>,
}

impl McfInstance {
    /// Lowers the instance with the given capacity multipliers (one per
    /// edge; pass `&[]` for unscaled). Multipliers only touch rhs values,
    /// never the sparsity pattern — exactly what TE capacity drift does.
    fn lower(&self, cap_scale: &[f64]) -> LinearProgram {
        let m = self.edges.len();
        let k = self.commodities.len();
        let mut b = LpBuilder::new();
        // x[e*k + c]: flow of commodity c on edge e, rewarded at the
        // source so total delivery is maximised.
        let mut vars = Vec::with_capacity(m * k);
        for (ei, &(from, _, _)) in self.edges.iter().enumerate() {
            for &(src, _, _) in &self.commodities {
                let reward = if from == src { 1.0 } else { 0.0 };
                vars.push(b.add_var(reward - 0.001 * (ei % 3) as f64));
            }
        }
        let var = |ei: usize, ci: usize| vars[ei * k + ci];
        // Conservation at interior nodes: inflow == outflow.
        for (ci, &(src, sink, _)) in self.commodities.iter().enumerate() {
            for node in 0..self.n_nodes {
                if node == src || node == sink {
                    continue;
                }
                let mut terms = Vec::new();
                for (ei, &(from, to, _)) in self.edges.iter().enumerate() {
                    if to == node {
                        terms.push((var(ei, ci), 1.0));
                    } else if from == node {
                        terms.push((var(ei, ci), -1.0));
                    }
                }
                if !terms.is_empty() {
                    b.add_constraint(&terms, Relation::Eq, 0.0);
                }
            }
        }
        // Demand cap: net outflow at each source is at most the demand.
        for (ci, &(src, _, demand)) in self.commodities.iter().enumerate() {
            let mut terms = Vec::new();
            for (ei, &(from, to, _)) in self.edges.iter().enumerate() {
                if from == src {
                    terms.push((var(ei, ci), 1.0));
                } else if to == src {
                    terms.push((var(ei, ci), -1.0));
                }
            }
            if !terms.is_empty() {
                b.add_constraint(&terms, Relation::Le, demand);
            }
        }
        // Shared capacity per edge.
        for (ei, &(_, _, cap)) in self.edges.iter().enumerate() {
            let scale = cap_scale.get(ei).copied().unwrap_or(1.0);
            let terms: Vec<(usize, f64)> = (0..k).map(|ci| (var(ei, ci), 1.0)).collect();
            b.add_constraint(&terms, Relation::Le, cap * scale);
        }
        b.build()
    }
}

/// Strategy: connected-enough random MCF instances. A ring backbone
/// guarantees every pair is reachable; extra chords add multipath.
/// Sources and sinks that collide are remapped a step apart instead of
/// rejected, so every generated instance is solvable as-is.
fn mcf_instances() -> impl Strategy<Value = McfInstance> {
    (
        3usize..6,
        proptest::collection::vec((0usize..5, 0usize..5, 1.0f64..20.0), 0..6),
        proptest::collection::vec((0usize..5, 0usize..5, 1.0f64..15.0), 1..3),
    )
        .prop_map(|(n, chords, raw)| {
            let mut edges: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..n {
                edges.push((i, (i + 1) % n, 10.0));
            }
            for (a, b, cap) in chords {
                let (a, b) = (a % n, b % n);
                if a != b {
                    edges.push((a, b, cap));
                }
            }
            let commodities = raw
                .into_iter()
                .map(|(s, t, d)| {
                    let s = s % n;
                    let t = if t % n == s { (s + 1) % n } else { t % n };
                    (s, t, d)
                })
                .collect();
            McfInstance { n_nodes: n, edges, commodities }
        })
}

fn dense_objective(lp: &LinearProgram) -> f64 {
    SimplexSolver::new().solve(lp).expect_optimal().objective
}

fn sparse_objective(solver: &mut SparseSimplexSolver, lp: &LinearProgram) -> f64 {
    solver.solve(lp).expect_optimal().objective
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse and dense land on the same optimal objective for random
    /// MCF instances (the zero flow is always feasible, capacities bound
    /// every variable, so the outcome is always `Optimal`).
    #[test]
    fn backends_agree_on_random_mcf(inst in mcf_instances()) {
        let lp = inst.lower(&[]);
        let dense = dense_objective(&lp);
        let sparse = sparse_objective(&mut SparseSimplexSolver::new(), &lp);
        prop_assert!((dense - sparse).abs() <= 1e-6 * (1.0 + dense.abs()),
            "dense {dense} vs sparse {sparse}");
    }

    /// A persistent sparse solver tracking a capacity-drift sequence
    /// (rhs-only changes: the fast-resolve / dual-repair path) matches a
    /// cold dense solve at every step, and attempts a warm start on each.
    #[test]
    fn warm_sparse_tracks_dense_across_rhs_drift(
        inst in mcf_instances(),
        drift in proptest::collection::vec(
            proptest::collection::vec(0.4f64..1.6, 12), 2..6),
    ) {
        let mut warm = SparseSimplexSolver::new();
        let lp0 = inst.lower(&[]);
        let d0 = dense_objective(&lp0);
        let s0 = sparse_objective(&mut warm, &lp0);
        prop_assert!((d0 - s0).abs() <= 1e-6 * (1.0 + d0.abs()));
        for scales in &drift {
            let lp = inst.lower(&scales[..scales.len().min(inst.edges.len())]);
            let dense = dense_objective(&lp);
            let sparse = sparse_objective(&mut warm, &lp);
            prop_assert!((dense - sparse).abs() <= 1e-6 * (1.0 + dense.abs()),
                "dense {dense} vs warm sparse {sparse}");
        }
        prop_assert!(warm.stats().warm_attempts >= drift.len() as u64,
            "only {} warm attempts across {} drift steps",
            warm.stats().warm_attempts, drift.len());
    }

    /// Shrinking every capacity makes the retained basis primal-infeasible
    /// (flows exceed the new caps), forcing the dual-simplex repair — the
    /// repaired solution must still match a cold dense solve, without a
    /// cold fallback when the repair succeeds.
    #[test]
    fn forced_dual_repair_matches_dense(
        inst in mcf_instances(),
        shrink in 0.3f64..0.8,
    ) {
        let mut warm = SparseSimplexSolver::new();
        let lp0 = inst.lower(&[]);
        sparse_objective(&mut warm, &lp0);
        let cold_before = warm.stats().cold_solves;
        let scales = vec![shrink; inst.edges.len()];
        let lp1 = inst.lower(&scales);
        let dense = dense_objective(&lp1);
        let sparse = sparse_objective(&mut warm, &lp1);
        prop_assert!((dense - sparse).abs() <= 1e-6 * (1.0 + dense.abs()),
            "dense {dense} vs repaired sparse {sparse}");
        let stats = warm.stats();
        prop_assert!(stats.warm_attempts >= 1);
        // Rhs-only drift must resolve on the warm path: repair, not
        // refactor-from-scratch.
        prop_assert_eq!(stats.cold_solves, cold_before,
            "rhs-only shrink went cold");
    }

    /// Degenerate instances — every constraint duplicated, so vertices
    /// are massively over-determined — terminate under partial pricing
    /// (Bland's anti-cycling) and still match the dense oracle.
    #[test]
    fn degenerate_duplicated_rows_terminate_and_agree(inst in mcf_instances()) {
        let base = inst.lower(&[]);
        let mut b = LpBuilder::new();
        let vars: Vec<usize> = base.objective.iter().map(|&o| b.add_var(o)).collect();
        for con in &base.constraints {
            let terms: Vec<(usize, f64)> = con
                .coeffs
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(j, &v)| (vars[j], v))
                .collect();
            for _ in 0..2 {
                b.add_constraint(&terms, con.op, con.rhs);
            }
        }
        let doubled = b.build();
        let dense = dense_objective(&doubled);
        let sparse = sparse_objective(&mut SparseSimplexSolver::new(), &doubled);
        prop_assert!((dense - sparse).abs() <= 1e-6 * (1.0 + dense.abs()),
            "dense {dense} vs sparse {sparse} on degenerate instance");
    }

    /// An expired deadline plus a per-pivot delay makes the stride-64
    /// watchdog fire on any non-trivial instance; clearing the deadline
    /// must then recover the true optimum.
    #[test]
    fn watchdog_aborts_then_recovers(inst in mcf_instances()) {
        let mut solver = SparseSimplexSolver::new();
        solver.set_solve_timeout(Some(Duration::ZERO));
        solver.set_pivot_delay(Some(Duration::from_micros(10)));
        let lp = inst.lower(&[]);
        let outcome = solver.solve(&lp);
        prop_assert!(matches!(outcome, LpOutcome::Stalled),
            "expected Stalled, got {outcome:?}");
        prop_assert!(solver.stats().watchdog_aborts >= 1);
        solver.set_solve_timeout(None);
        solver.set_pivot_delay(None);
        let dense = dense_objective(&lp);
        let sparse = sparse_objective(&mut solver, &lp);
        prop_assert!((dense - sparse).abs() <= 1e-6 * (1.0 + dense.abs()));
    }
}

// ---------------------------------------------------------------------
// Objective-zoo equivalence: the same backend contract (sparse == dense
// at 1e-6, warm starts on rhs-only drift) for every `TeObjective`, driven
// through the real `TeFormulation` lowering instead of a hand-rolled LP.
// ---------------------------------------------------------------------

use rwc_lp::simplex::LpBackend;
use rwc_te::demand::DemandMatrix;
use rwc_te::problem::{EdgeOrigin, TeProblem};
use rwc_te::{TeAlgorithm, TeObjective, TeSolve, TeSolver, WarmStartPolicy};
use rwc_topology::random::{waxman, WaxmanConfig};
use rwc_topology::wan::LinkId;
use rwc_util::units::Gbps;

/// A random TE problem (Waxman topology + gravity demands) with one fake
/// upgrade rung on link 0, so the unsplittable gadget and the reduction
/// readout have structure to chew on.
fn te_instances() -> impl Strategy<Value = TeProblem> {
    (4usize..8, 0u64..200, 60.0f64..600.0, 0u64..50).prop_map(|(n, seed, volume, dseed)| {
        let wan = waxman(&WaxmanConfig { n_nodes: n, seed, ..Default::default() });
        let dm = DemandMatrix::gravity(&wan, Gbps(volume), dseed);
        let mut p = TeProblem::from_wan(&wan, &dm);
        // One fake rung parallel to link 0's forward direction.
        let real = p.net.edge(0);
        p.net.add_edge(real.from, real.to, real.capacity * 0.5, real.cost + 1.0);
        p.origins.push(EdgeOrigin::Fake { link: LinkId(0), forward: true });
        p
    })
}

/// The value both backends must agree on for an objective: total
/// throughput, the MLU, or the concurrency factor λ. (Raw LP objectives
/// differ by the sparse tie-break epsilon, so equivalence is asserted at
/// the solution level — the same contract the max-throughput path pins.)
fn zoo_headline(objective: &TeObjective, solve: &TeSolve) -> f64 {
    match objective {
        TeObjective::MinMlu { .. } => solve.mlu.expect("min-MLU reports MLU"),
        TeObjective::MaxConcurrentFlow => solve.lambda.expect("concurrent reports lambda"),
        _ => solve.solution.total,
    }
}

fn zoo_solver(objective: TeObjective, backend: LpBackend) -> TeSolver {
    TeSolver::builder()
        .objective(objective)
        .backend(backend)
        .build()
        .expect("objective-zoo solver config is valid")
}

/// Every objective the formulation can lower for `p`, including a
/// three-matrix min-MLU envelope derived from the problem's demands.
fn zoo(p: &TeProblem) -> Vec<TeObjective> {
    let tms: Vec<Vec<f64>> = (0..3)
        .map(|j| {
            p.commodities
                .iter()
                .enumerate()
                .map(|(i, c)| c.demand * (0.6 + 0.2 * j as f64 + 0.1 * ((i + j) % 2) as f64))
                .collect()
        })
        .collect();
    vec![
        TeObjective::MaxThroughput,
        TeObjective::MinMlu { traffic_matrices: tms },
        TeObjective::MaxConcurrentFlow,
        TeObjective::Unsplittable,
        TeObjective::CapacityReduction,
    ]
}

/// Scales every edge capacity by `scale` — rhs-only drift for every
/// objective except MinMlu (whose MLU column carries capacities), which
/// drifts its traffic matrices instead.
fn drift_problem(p: &TeProblem, scale: f64) -> TeProblem {
    let mut q = p.clone();
    for e in 0..q.net.n_edges() {
        let cap = q.net.edge(e).capacity;
        q.net.set_capacity(e, cap * scale);
    }
    q
}

fn drift_objective(objective: &TeObjective, scale: f64) -> TeObjective {
    match objective {
        TeObjective::MinMlu { traffic_matrices } => TeObjective::MinMlu {
            traffic_matrices: traffic_matrices
                .iter()
                .map(|tm| tm.iter().map(|d| d * scale).collect())
                .collect(),
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sparse and dense agree at 1e-6 on the headline value of every
    /// objective, on random gadget-bearing TE instances.
    #[test]
    fn backends_agree_on_every_objective(p in te_instances()) {
        for objective in zoo(&p) {
            let sparse = zoo_solver(objective.clone(), LpBackend::Sparse)
                .solve_detailed(&p)
                .expect("sparse solve");
            let dense = zoo_solver(objective.clone(), LpBackend::Dense)
                .solve_detailed(&p)
                .expect("dense solve");
            let (s, d) = (zoo_headline(&objective, &sparse), zoo_headline(&objective, &dense));
            prop_assert!((s - d).abs() <= 1e-6 * (1.0 + d.abs()),
                "{}: sparse {s} vs dense {d}", objective.algorithm_name());
        }
    }

    /// Rhs-only drift warm-starts for every objective: a persistent
    /// sparse solver tracks an always-cold dense solver across the drift
    /// sequence, attempting a warm start at every step. Capacities drift
    /// for the throughput-family objectives; traffic matrices drift for
    /// min-MLU (its MLU column carries capacity values, so capacity moves
    /// are value drift there, not rhs drift).
    #[test]
    fn warm_rhs_drift_tracks_cold_per_objective(
        p in te_instances(),
        drift in proptest::collection::vec(0.6f64..1.4, 3..6),
    ) {
        for objective in zoo(&p) {
            let mut warm = zoo_solver(objective.clone(), LpBackend::Sparse);
            warm.solve_detailed(&p).expect("first solve");
            let tm_drift = matches!(objective, TeObjective::MinMlu { .. });
            for &scale in &drift {
                let q = if tm_drift { p.clone() } else { drift_problem(&p, scale) };
                let drifted = drift_objective(&objective, if tm_drift { scale } else { 1.0 });
                if tm_drift {
                    warm.set_objective(drifted.clone())
                        .expect("drifted objective stays valid");
                }
                let cold = TeSolver::builder()
                    .objective(drifted)
                    .backend(LpBackend::Dense)
                    .warm_start(WarmStartPolicy::AlwaysCold)
                    .build()
                    .expect("cold oracle config is valid");
                let w = warm.solve_detailed(&q).expect("warm drift solve");
                let c = cold.solve_detailed(&q).expect("cold drift solve");
                let (wv, cv) = (
                    zoo_headline(&objective, &w),
                    zoo_headline(&objective, &c),
                );
                prop_assert!((wv - cv).abs() <= 1e-6 * (1.0 + cv.abs()),
                    "{} at scale {scale}: warm {wv} vs cold {cv}",
                    objective.algorithm_name());
            }
            let stats = warm.warm_stats().expect("TeSolver reports stats");
            prop_assert!(stats.warm_attempts >= drift.len() as u64,
                "{}: only {} warm attempts across {} drift steps",
                objective.algorithm_name(), stats.warm_attempts, drift.len());
        }
    }
}

/// The paper's Fig. 8 unsplittable fixture, with a known integral
/// optimum: a 100 G real link plus a 100 G fake upgrade rung between the
/// same endpoints, demand 300 G. The node-splitting gadget routes through
/// the shared 200 G guard edge, and the ladder fold must put exactly
/// 100 G on the real edge and exactly 100 G on the rung — identically on
/// both backends.
#[test]
fn fig8_unsplittable_fixture_integral_optimum() {
    let wan = {
        let mut w = rwc_topology::wan::WanTopology::new();
        let a = w.add_node("A".to_string(), None);
        let b = w.add_node("B".to_string(), None);
        w.add_link(a, b, 500.0);
        w
    };
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(300.0), rwc_te::demand::Priority::Elastic);
    let mut p = TeProblem::from_wan(&wan, &dm);
    let real = p.net.edge(0);
    assert_eq!(real.capacity, 100.0, "base modulation is 100 G");
    p.net.add_edge(real.from, real.to, 100.0, 1.0);
    p.origins.push(EdgeOrigin::Fake { link: LinkId(0), forward: true });

    for backend in [LpBackend::Sparse, LpBackend::Dense] {
        let solve = zoo_solver(TeObjective::Unsplittable, backend)
            .solve_detailed(&p)
            .expect("fixture solves");
        assert!(
            (solve.solution.total - 200.0).abs() < 1e-6,
            "{backend:?}: total {} != 200", solve.solution.total
        );
        // Ladder fold: real slice saturates first, the rung takes the rest.
        assert!((solve.solution.edge_flows[0] - 100.0).abs() < 1e-6,
            "{backend:?}: real edge carries {}", solve.solution.edge_flows[0]);
        assert!((solve.solution.edge_flows[2] - 100.0).abs() < 1e-6,
            "{backend:?}: fake rung carries {}", solve.solution.edge_flows[2]);
        solve.solution.validate(&p).expect("fixture solution is feasible");
    }
}

/// A value-only drift that turns the retained basis singular: the column
/// sparsity patterns are unchanged (so the warm plan applies), but the
/// two basic columns become linearly dependent, the LU refactorisation
/// fails, and the solver must fall back to a cold solve — correctly.
#[test]
fn singular_basis_falls_back_to_cold() {
    let build = |a0: f64, a1: f64, b0: f64, b1: f64| {
        let mut b = LpBuilder::new();
        let x = b.add_var(1.0);
        let y = b.add_var(1.0);
        b.add_constraint(&[(x, a0), (y, b0)], Relation::Le, 10.0);
        b.add_constraint(&[(x, a1), (y, b1)], Relation::Le, 10.0);
        b.build()
    };
    let mut solver = SparseSimplexSolver::new();
    // max x + y s.t. x + 2y <= 10, 2x + y <= 10: optimum 20/3 with both
    // structurals basic.
    let first = solver.solve(&build(1.0, 2.0, 2.0, 1.0)).expect_optimal();
    assert!((first.objective - 20.0 / 3.0).abs() < 1e-6);
    assert_eq!(solver.stats().cold_solves, 1);
    // Same sparsity pattern, but both columns are now [1, 1]: the saved
    // basis matrix is singular. Optimum of the new LP is x + y = 10.
    let second = solver.solve(&build(1.0, 1.0, 1.0, 1.0)).expect_optimal();
    assert!((second.objective - 10.0).abs() < 1e-6, "got {}", second.objective);
    assert_eq!(
        solver.stats().cold_solves,
        2,
        "singular warm basis must trigger the cold fallback"
    );
}
