//! Property tests: the simplex against brute-force vertex enumeration on
//! two-variable LPs (where the optimum, if it exists, lies on a vertex of
//! the feasible polygon — checkable by hand).

use proptest::prelude::*;
use rwc_lp::model::{LinearProgram, LpBuilder, Relation};
use rwc_lp::simplex::{solve, LpOutcome, SimplexSolver};

/// Brute-force a 2-var LP: enumerate candidate vertices (constraint-pair
/// intersections + axis intersections + origin), keep the feasible ones,
/// return the best objective value.
fn brute_force_2var(
    objective: (f64, f64),
    constraints: &[(f64, f64, f64)], // a·x + b·y ≤ c
) -> Option<f64> {
    let mut candidates: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    // Axis intersections.
    for &(a, b, c) in constraints {
        if a.abs() > 1e-9 {
            candidates.push((c / a, 0.0));
        }
        if b.abs() > 1e-9 {
            candidates.push((0.0, c / b));
        }
    }
    // Pairwise intersections.
    for (i, &(a1, b1, c1)) in constraints.iter().enumerate() {
        for &(a2, b2, c2) in &constraints[i + 1..] {
            let det = a1 * b2 - a2 * b1;
            if det.abs() > 1e-9 {
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                candidates.push((x, y));
            }
        }
    }
    let feasible = |x: f64, y: f64| {
        x >= -1e-9
            && y >= -1e-9
            && constraints.iter().all(|&(a, b, c)| a * x + b * y <= c + 1e-6)
    };
    candidates
        .into_iter()
        .filter(|&(x, y)| feasible(x, y))
        .map(|(x, y)| objective.0 * x + objective.1 * y)
        .fold(None, |best, v| Some(best.map_or(v, |b: f64| b.max(v))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On bounded-feasible random 2-var LPs the simplex matches the
    /// vertex-enumeration optimum.
    #[test]
    fn simplex_matches_vertex_enumeration(
        cx in -5.0f64..5.0,
        cy in -5.0f64..5.0,
        rows in proptest::collection::vec((0.1f64..5.0, 0.1f64..5.0, 0.5f64..20.0), 1..6),
    ) {
        // All-positive coefficients with positive rhs ⇒ feasible (origin)
        // and bounded (every direction eventually blocked when the
        // objective is non-positive... ensure boundedness by adding a box).
        let mut b = LpBuilder::new();
        let x = b.add_var(cx);
        let y = b.add_var(cy);
        let mut cons: Vec<(f64, f64, f64)> = rows.clone();
        cons.push((1.0, 0.0, 50.0)); // box: x ≤ 50
        cons.push((0.0, 1.0, 50.0)); // box: y ≤ 50
        for &(a, bb, c) in &cons {
            b.add_constraint(&[(x, a), (y, bb)], Relation::Le, c);
        }
        let lp = b.build();
        let expected = brute_force_2var((cx, cy), &cons).expect("origin is feasible");
        match solve(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!((s.objective - expected).abs() < 1e-5,
                    "simplex {} vs brute force {expected}", s.objective);
                // The returned point is feasible.
                prop_assert!(s.x[0] >= -1e-9 && s.x[1] >= -1e-9);
                for &(a, bb, c) in &cons {
                    prop_assert!(a * s.x[0] + bb * s.x[1] <= c + 1e-6);
                }
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// Scaling the objective scales the optimum (homogeneity).
    #[test]
    fn objective_homogeneity(
        cx in 0.1f64..5.0,
        cy in 0.1f64..5.0,
        k in 0.1f64..10.0,
        rows in proptest::collection::vec((0.1f64..5.0, 0.1f64..5.0, 0.5f64..20.0), 1..5),
    ) {
        let solve_with = |ocx: f64, ocy: f64| -> f64 {
            let mut b = LpBuilder::new();
            let x = b.add_var(ocx);
            let y = b.add_var(ocy);
            for &(a, bb, c) in &rows {
                b.add_constraint(&[(x, a), (y, bb)], Relation::Le, c);
            }
            solve(&b.build()).expect_optimal().objective
        };
        let base = solve_with(cx, cy);
        let scaled = solve_with(k * cx, k * cy);
        prop_assert!((scaled - k * base).abs() < 1e-5 * (1.0 + k * base.abs()),
            "{scaled} vs {}", k * base);
    }

    /// One persistent solver re-solving a drifting LP family matches a
    /// cold solver's optimal objective on every step — through
    /// fast resolves (rhs-only drift), basis refactorisations
    /// (coefficient drift), and forced cold fallbacks (structural edits
    /// that change the constraint count, invalidating the saved basis).
    #[test]
    fn warm_resolve_matches_cold_across_perturbations(
        objs in proptest::collection::vec(0.2f64..5.0, 3),
        base_rows in proptest::collection::vec(
            (0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0, 1.0f64..20.0), 2..5),
        steps in proptest::collection::vec((0u8..3, 0usize..12, 0.4f64..1.6), 2..10),
    ) {
        let mut rows: Vec<([f64; 3], f64)> =
            base_rows.iter().map(|&(a, b, c, r)| ([a, b, c], r)).collect();
        let mut extra_row = false;
        let build = |rows: &[([f64; 3], f64)], extra_row: bool| -> LinearProgram {
            let mut b = LpBuilder::new();
            let vars: Vec<usize> = objs.iter().map(|&o| b.add_var(o)).collect();
            for (coef, rhs) in rows {
                let terms: Vec<(usize, f64)> =
                    vars.iter().zip(coef).map(|(&v, &a)| (v, a)).collect();
                b.add_constraint(&terms, Relation::Le, *rhs);
            }
            for &v in &vars {
                b.add_constraint(&[(v, 1.0)], Relation::Le, 50.0); // keep it bounded
            }
            if extra_row {
                let terms: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                b.add_constraint(&terms, Relation::Le, 120.0);
            }
            b.build()
        };
        let mut warm = SimplexSolver::new();
        let lp0 = build(&rows, extra_row);
        let w0 = warm.solve(&lp0).expect_optimal().objective;
        let c0 = solve(&lp0).expect_optimal().objective;
        prop_assert!((w0 - c0).abs() < 1e-6 * (1.0 + c0.abs()));
        let mut same_shape_steps = 0u64;
        for &(kind, idx, factor) in &steps {
            match kind {
                // Rhs-only drift: the fast-resolve / dual-repair path.
                // Shrinking the rhs is what makes the saved basis primal-
                // infeasible, forcing the dual-simplex repair.
                0 => {
                    let i = idx % rows.len();
                    rows[i].1 *= factor;
                }
                // Coefficient drift: full warm refactorisation.
                1 => {
                    let i = idx % rows.len();
                    rows[i].0[idx % 3] *= factor;
                }
                // Structural edit: constraint count changes, so the saved
                // basis cannot apply and the solver must go cold.
                _ => extra_row = !extra_row,
            }
            if kind < 2 {
                same_shape_steps += 1;
            }
            let lp = build(&rows, extra_row);
            let w = warm.solve(&lp).expect_optimal().objective;
            let c = solve(&lp).expect_optimal().objective;
            prop_assert!((w - c).abs() < 1e-6 * (1.0 + c.abs()),
                "warm {w} vs cold {c} after step kind={kind} idx={idx} factor={factor}");
        }
        // Every same-shape step should at least have attempted a warm
        // start (hits depend on the drift, attempts do not).
        prop_assert!(warm.stats().warm_attempts >= same_shape_steps,
            "only {} warm attempts for {} same-shape steps",
            warm.stats().warm_attempts, same_shape_steps);
    }
}
