//! The typed event stream.
//!
//! Events are the low-rate, high-salience channel: state transitions a
//! fleet operator would page on (a reconfiguration aborting mid-commit, a
//! link entering quarantine, the warm LP falling back cold) rather than
//! per-tick samples. Emitters hand a borrowed [`Event`] to
//! [`crate::Observer::event`]; the default observer drops it without
//! looking, [`crate::MetricsObserver`] counts it under `events.*`, and
//! [`crate::ConsoleSink`] pretty-prints the salient ones.
//!
//! The payloads are deliberately primitive (`u64` link ids, `f64` Gbps,
//! micros) so this crate sits below every pipeline crate without
//! depending on their types.

use serde::Serialize;

/// Which layer injected a fault (mirrors the `rwc-faults` scopes without
/// depending on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultDomain {
    /// Transceiver hardware/management-bus fault.
    Bvt,
    /// Telemetry-channel fault (frozen, dropped or spiking readings).
    Telemetry,
    /// TE solver fault.
    Te,
    /// Optical-layer fault (amplifier span, SRLG).
    Optical,
}

/// One pipeline state transition.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// A capacity reconfiguration began (either direct execution or the
    /// prepare leg of a staged make-before-break change).
    ReconfigStarted {
        /// Link being reconfigured.
        link: u64,
        /// Capacity before the change, Gbps.
        from_gbps: f64,
        /// Target capacity, Gbps.
        to_gbps: f64,
        /// `true` for staged (prepare/commit) changes.
        staged: bool,
    },
    /// A reconfiguration completed and the link carries its new rate.
    ReconfigCommitted {
        /// Link that was reconfigured.
        link: u64,
        /// Committed capacity, Gbps.
        to_gbps: f64,
        /// Simulated downtime the change cost, millis.
        downtime_millis: u64,
        /// Retries spent before success.
        retries: u64,
    },
    /// A reconfiguration gave up (retries exhausted, watchdog fired, or
    /// an explicit abort rolled the staged change back).
    ReconfigAborted {
        /// Link whose change failed.
        link: u64,
        /// The capacity that was being installed, Gbps.
        to_gbps: f64,
        /// `true` if a staged change was rolled back to its old rate.
        rolled_back: bool,
    },
    /// A link entered its quarantine hold-down.
    Quarantine {
        /// The quarantined link.
        link: u64,
        /// When the hold-down expires, millis of simulated time.
        until_millis: u64,
    },
    /// The incremental exact LP reused its retained basis.
    WarmSolve {
        /// Pivots the warm solve spent.
        pivots: u64,
    },
    /// The incremental exact LP abandoned its basis and solved cold.
    ColdFallback {
        /// Pivots the cold solve spent.
        pivots: u64,
    },
    /// The fault plan injected a fault this tick/round.
    FaultInjected {
        /// Affected link, if the fault targets one.
        link: Option<u64>,
        /// The layer the fault hits.
        domain: FaultDomain,
    },
    /// The fleet kernel opened a failure episode (SNR fell below a rung's
    /// floor).
    EpisodeOpened {
        /// Link the episode is on.
        link: u64,
        /// The rung whose floor was crossed, Gbps.
        rung_gbps: f64,
        /// Sample index at which it opened.
        at_tick: u64,
    },
    /// The fleet kernel closed a failure episode (SNR recovered).
    EpisodeClosed {
        /// Link the episode was on.
        link: u64,
        /// The rung whose floor was crossed, Gbps.
        rung_gbps: f64,
        /// Episode length in samples.
        ticks: u64,
    },
    /// A sweep chunk panicked and the harness re-queued it.
    ChunkRetried {
        /// The chunk that failed.
        chunk: u64,
        /// Which retry this is (1 = first retry).
        attempt: u64,
    },
    /// The harness wrote a sweep checkpoint atomically.
    CheckpointWritten {
        /// Chunks completed at the time of the write.
        completed_chunks: u64,
    },
    /// A resume checkpoint passed its checksum and fingerprint checks.
    ResumeVerified {
        /// Chunks restored from the checkpoint.
        restored_chunks: u64,
    },
    /// The LP solve-deadline watchdog aborted a runaway solve attempt.
    WatchdogAbort {
        /// Pivots spent before the deadline fired.
        pivots: u64,
    },
    /// The daemon supervisor restarted a panicked shard from its last
    /// checkpoint.
    ShardRestarted {
        /// The shard that was restarted.
        shard: u64,
        /// Restarts spent on this shard so far (1 = first restart).
        restarts: u64,
    },
    /// A shard exhausted its restart budget and was marked unhealthy;
    /// its pending work is re-routed to healthy shards.
    ShardUnhealthy {
        /// The shard taken out of rotation.
        shard: u64,
    },
    /// The ingest path shed work under overload (bounded queue full or a
    /// queued item outlived its deadline).
    OverloadShed {
        /// Shard whose queue shed.
        shard: u64,
        /// Link ids shed by this action.
        count: u64,
    },
    /// A graceful drain finished: queues flushed, final checkpoints
    /// written, report sealed.
    DrainCompleted {
        /// Links completed over the daemon's lifetime.
        links_completed: u64,
    },
}

impl Event {
    /// The `events.*` counter this event increments in a
    /// [`crate::MetricsObserver`].
    pub fn counter_name(&self) -> &'static str {
        match self {
            Event::ReconfigStarted { .. } => "events.reconfig_started",
            Event::ReconfigCommitted { .. } => "events.reconfig_committed",
            Event::ReconfigAborted { .. } => "events.reconfig_aborted",
            Event::Quarantine { .. } => "events.quarantine",
            Event::WarmSolve { .. } => "events.warm_solve",
            Event::ColdFallback { .. } => "events.cold_fallback",
            Event::FaultInjected { .. } => "events.fault_injected",
            Event::EpisodeOpened { .. } => "events.episode_opened",
            Event::EpisodeClosed { .. } => "events.episode_closed",
            Event::ChunkRetried { .. } => "events.chunk_retried",
            Event::CheckpointWritten { .. } => "events.checkpoint_written",
            Event::ResumeVerified { .. } => "events.resume_verified",
            Event::WatchdogAbort { .. } => "events.watchdog_abort",
            Event::ShardRestarted { .. } => "events.shard_restarted",
            Event::ShardUnhealthy { .. } => "events.shard_unhealthy",
            Event::OverloadShed { .. } => "events.overload_shed",
            Event::DrainCompleted { .. } => "events.drain_completed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_counter_name_is_in_the_catalogue() {
        let events = [
            Event::ReconfigStarted { link: 0, from_gbps: 100.0, to_gbps: 150.0, staged: false },
            Event::ReconfigCommitted { link: 0, to_gbps: 150.0, downtime_millis: 7, retries: 0 },
            Event::ReconfigAborted { link: 0, to_gbps: 150.0, rolled_back: true },
            Event::Quarantine { link: 0, until_millis: 1 },
            Event::WarmSolve { pivots: 3 },
            Event::ColdFallback { pivots: 40 },
            Event::FaultInjected { link: Some(2), domain: FaultDomain::Bvt },
            Event::EpisodeOpened { link: 1, rung_gbps: 200.0, at_tick: 5 },
            Event::EpisodeClosed { link: 1, rung_gbps: 200.0, ticks: 9 },
            Event::ChunkRetried { chunk: 3, attempt: 1 },
            Event::CheckpointWritten { completed_chunks: 4 },
            Event::ResumeVerified { restored_chunks: 4 },
            Event::WatchdogAbort { pivots: 512 },
            Event::ShardRestarted { shard: 1, restarts: 2 },
            Event::ShardUnhealthy { shard: 1 },
            Event::OverloadShed { shard: 0, count: 12 },
            Event::DrainCompleted { links_completed: 40 },
        ];
        for e in &events {
            assert!(
                crate::names::COUNTERS.contains(&e.counter_name()),
                "{} missing from names::COUNTERS",
                e.counter_name()
            );
        }
    }
}
