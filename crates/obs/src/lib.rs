//! Runtime observability for the BVT → controller → TE pipeline.
//!
//! The paper's case for dynamic capacity rests on *measuring* the fleet
//! (§2–3): SNR stability, failure episodes, reconfiguration latency. This
//! crate is the production-telemetry counterpart for the reproduction —
//! a lock-free [`MetricsRegistry`] (atomic counters, gauges, log-linear
//! histograms with p50/p99 snapshots), lightweight [`Span`] timing, and a
//! typed [`Event`] stream, all behind the [`Observer`] trait.
//!
//! The default observer is [`NoopObserver`]: every hook method is an
//! empty default body, `enabled()` is `false`, and instrumented hot paths
//! guard their bookkeeping on it, so a pipeline built without an observer
//! pays a virtual call that inlines to nothing (the `benches/obs.rs`
//! criterion bench holds disabled-mode overhead under 2% on scenario
//! rounds/sec).
//!
//! Attach a [`MetricsObserver`] to collect: counters and histograms land
//! in its registry, every event increments an `events.*` counter, and
//! [`MetricsObserver::snapshot`] renders a deterministic, serializable
//! [`MetricsSnapshot`] (`repro --obs-json OBS.json`). Per-worker
//! registries merge deterministically — counter and bucket addition
//! commutes — so parallel sweeps aggregate into the same snapshot as a
//! sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod names;
pub mod observer;
pub mod sink;
pub mod span;

pub use event::{Event, FaultDomain};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use observer::{noop, MetricsObserver, NoopObserver, Observer};
pub use sink::ConsoleSink;
pub use span::Span;
