//! Lock-free metrics registry and its serializable snapshots.
//!
//! The registry is immutable after construction: every metric in
//! [`crate::names`] gets its atomic cell up front, lookups binary-search
//! a sorted name table, and updates are single relaxed atomic ops (plus a
//! short CAS loop for float min/max). No locks anywhere on the write
//! path, so scenario ticks and fleet workers can hammer the same
//! registry — or, cheaper, each worker owns a registry and the partials
//! are merged: counter and bucket addition commutes, so the merged
//! snapshot is identical to a single-threaded run no matter the
//! scheduling.
//!
//! Histograms are log-linear: one bucket per ⅛-octave (8 linear
//! sub-buckets per power of two), which holds relative error under 12.5%
//! across the full `f64` range while keeping a histogram at a fixed 513
//! cells. Percentiles come from the bucket lower bound clamped into the
//! observed `[min, max]`, so single-valued histograms report exact
//! percentiles.

use crate::names;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (power of two).
const SUB: usize = 8;
/// Bucket 0 catches `v < 1` (and NaN/negative, clamped); then 64 octaves
/// of `SUB` sub-buckets each.
const N_BUCKETS: usize = 1 + 64 * SUB;

/// Maps a recorded value to its bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        return 0; // < 1, zero, negative and NaN all land in the catch-all.
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023; // unbiased exponent, >= 0 here
    if exp >= 64 {
        return N_BUCKETS - 1; // 2^64 and beyond: saturate.
    }
    let sub = (bits >> (52 - 3)) & 0x7; // top 3 mantissa bits = linear position
    1 + exp as usize * SUB + sub as usize
}

/// Lower bound of a bucket — the representative percentile value.
fn bucket_lower(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let exp = (index - 1) / SUB;
    let sub = (index - 1) % SUB;
    (2f64).powi(exp as i32) * (1.0 + sub as f64 / SUB as f64)
}

fn atomic_f64_min(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while f64::from_bits(cur) > v {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while f64::from_bits(cur) < v {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// One log-linear histogram: bucket counts plus count/sum/min/max.
#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    /// Sum of recorded values rounded to integer units — integer addition
    /// keeps merged sums exactly equal to single-threaded sums (float
    /// accumulation order would not). All catalogue histograms record
    /// integer-valued units (micros, ticks) anyway.
    sum: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, v: f64) {
        let v = if v.is_nan() || v < 0.0 { 0.0 } else { v };
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v.round().min(u64::MAX as f64) as u64, Ordering::Relaxed);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for bc in &snap.buckets {
            self.buckets[bc.bucket as usize].fetch_add(bc.count, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        atomic_f64_min(&self.min_bits, snap.min);
        atomic_f64_max(&self.max_bits, snap.max);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        let buckets: Vec<BucketCount> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some(BucketCount { bucket: i as u32, count: c })
            })
            .collect();
        let mut snap = HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            buckets,
        };
        snap.refresh_percentiles();
        snap
    }
}

/// A `(bucket index, count)` pair; only non-empty buckets are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Index into the fixed log-linear bucket layout.
    pub bucket: u32,
    /// Samples that landed in it.
    pub count: u64,
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of samples, rounded to integer units.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Median estimate (bucket lower bound, clamped to `[min, max]`).
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile over the buckets; `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for bc in &self.buckets {
            seen += bc.count;
            if seen >= rank {
                return bucket_lower(bc.bucket as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` in: counts and sums add, min/max widen, percentiles
    /// are recomputed from the combined buckets. Addition commutes, so
    /// any merge order yields the same snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut by_index: BTreeMap<u32, u64> =
            self.buckets.iter().map(|b| (b.bucket, b.count)).collect();
        for bc in &other.buckets {
            *by_index.entry(bc.bucket).or_insert(0) += bc.count;
        }
        self.buckets =
            by_index.into_iter().map(|(bucket, count)| BucketCount { bucket, count }).collect();
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.refresh_percentiles();
    }

    fn refresh_percentiles(&mut self) {
        self.p50 = self.percentile(50.0);
        self.p90 = self.percentile(90.0);
        self.p99 = self.percentile(99.0);
    }
}

/// Deterministic, serializable view of a whole registry. `BTreeMap`
/// ordering makes the JSON stable across runs and platforms; every
/// catalogue name is present even when zero, so consumers (the CI obs
/// smoke step) can assert on keys unconditionally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` in: counters and histograms add, gauges keep the
    /// maximum (high-water semantics).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let cell = self.gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
            *cell = cell.max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes the snapshot as JSON (the `--obs-json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

/// The lock-free registry: one atomic cell per catalogue metric.
#[derive(Debug)]
pub struct MetricsRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<AtomicU64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<AtomicU64>,
    histogram_names: Vec<&'static str>,
    histograms: Vec<Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Builds a registry pre-registered with the full [`names`]
    /// catalogue, all cells zeroed.
    pub fn new() -> Self {
        let mut counter_names: Vec<&'static str> = names::COUNTERS.to_vec();
        counter_names.sort_unstable();
        let mut gauge_names: Vec<&'static str> = names::GAUGES.to_vec();
        gauge_names.sort_unstable();
        let mut histogram_names: Vec<&'static str> = names::HISTOGRAMS.to_vec();
        histogram_names.sort_unstable();
        Self {
            counters: counter_names.iter().map(|_| AtomicU64::new(0)).collect(),
            counter_names,
            gauges: gauge_names.iter().map(|_| AtomicU64::new(0f64.to_bits())).collect(),
            gauge_names,
            histograms: histogram_names.iter().map(|_| Histogram::new()).collect(),
            histogram_names,
        }
    }

    fn slot(table: &[&'static str], name: &str) -> Option<usize> {
        let found = table.binary_search(&name).ok();
        debug_assert!(found.is_some(), "metric `{name}` is not in the names catalogue");
        found
    }

    /// Adds `by` to a counter. Unknown names are ignored (debug builds
    /// assert — add new metrics to [`names`]).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(i) = Self::slot(&self.counter_names, name) {
            self.counters[i].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Current value of a counter (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        Self::slot(&self.counter_names, name)
            .map_or(0, |i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(i) = Self::slot(&self.gauge_names, name) {
            self.gauges[i].store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Records one sample into a histogram.
    pub fn record(&self, name: &str, value: f64) {
        if let Some(i) = Self::slot(&self.histogram_names, name) {
            self.histograms[i].record(value);
        }
    }

    /// Digest of one histogram (empty snapshot for unknown names).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        Self::slot(&self.histogram_names, name)
            .map(|i| self.histograms[i].snapshot())
            .unwrap_or(HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                buckets: Vec::new(),
            })
    }

    /// Folds a snapshot back into live cells — how per-worker registries
    /// merge after a parallel sweep. Counters and buckets add; gauges
    /// keep the maximum.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            if *v > 0 {
                self.incr(name, *v);
            }
        }
        for (name, v) in &snap.gauges {
            if let Some(i) = Self::slot(&self.gauge_names, name) {
                let cur = f64::from_bits(self.gauges[i].load(Ordering::Relaxed));
                if *v > cur {
                    self.gauges[i].store(v.to_bits(), Ordering::Relaxed);
                }
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(i) = Self::slot(&self.histogram_names, name) {
                self.histograms[i].absorb(h);
            }
        }
    }

    /// Renders the whole registry as a deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counter_names
                .iter()
                .zip(&self.counters)
                .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .zip(&self.gauges)
                .map(|(n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histogram_names
                .iter()
                .zip(&self.histograms)
                .map(|(n, h)| (n.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_zero_catches_subunit_negative_and_nan() {
        for v in [0.0, 0.5, 0.999, -3.0, f64::NAN, f64::NEG_INFINITY] {
            let v = if v.is_nan() || v < 0.0 { 0.0 } else { v };
            assert_eq!(bucket_index(v), 0, "{v}");
        }
        assert_eq!(bucket_lower(0), 0.0);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [1.0, 1.1, 2.0, 3.7, 17.0, 1000.0, 1e6, 1e12, 1e300] {
            let i = bucket_index(v);
            let lo = bucket_lower(i);
            assert!(lo <= v, "lower {lo} > {v}");
            if i + 1 < N_BUCKETS {
                let hi = bucket_lower(i + 1);
                assert!(v < hi, "{v} >= next bound {hi}");
                // Log-linear guarantee: bucket width <= 12.5% of its base.
                assert!(hi / lo <= 1.0 + 1.0 / SUB as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn huge_values_saturate_the_last_bucket() {
        assert_eq!(bucket_index(f64::INFINITY), N_BUCKETS - 1);
        assert_eq!(bucket_index(f64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_index(2f64.powi(70)), N_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum), (0, 0));
        assert_eq!((s.min, s.max, s.p50, s.p99), (0.0, 0.0, 0.0, 0.0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_reports_exact_percentiles() {
        let h = Histogram::new();
        h.record(37.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (37.0, 37.0));
        // One value: every percentile clamps into [min, max] = exactly it.
        assert_eq!(s.p50, 37.0);
        assert_eq!(s.p99, 37.0);
        assert_eq!(s.percentile(0.0), 37.0);
        assert_eq!(s.percentile(100.0), 37.0);
    }

    #[test]
    fn percentiles_are_monotone_and_within_error() {
        let h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "{} {} {}", s.p50, s.p90, s.p99);
        // Bucket lower bounds under-estimate by at most one sub-bucket.
        assert!((440.0..=500.0).contains(&s.p50), "p50 {}", s.p50);
        assert!((790.0..=900.0).contains(&s.p90), "p90 {}", s.p90);
        assert!((870.0..=990.0).contains(&s.p99), "p99 {}", s.p99);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3.0, 9.5, 100.0, 0.2, 7e9] {
            a.record(v);
            all.record(v);
        }
        for v in [4.0, 9.5, 250_000.0] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let a = Histogram::new();
        a.record(5.0);
        let empty = Histogram::new().snapshot();
        let mut left = a.snapshot();
        left.merge(&empty);
        assert_eq!(left, a.snapshot());
        let mut right = empty.clone();
        right.merge(&a.snapshot());
        assert_eq!(right, a.snapshot());
    }

    #[test]
    fn registry_catalogue_is_complete_and_snapshot_carries_every_name() {
        let r = MetricsRegistry::new();
        let s = r.snapshot();
        assert_eq!(s.counters.len(), names::COUNTERS.len());
        assert_eq!(s.gauges.len(), names::GAUGES.len());
        assert_eq!(s.histograms.len(), names::HISTOGRAMS.len());
        for n in names::COUNTERS {
            assert!(s.counters.contains_key(*n), "{n}");
        }
    }

    #[test]
    fn registry_updates_land_in_the_snapshot() {
        let r = MetricsRegistry::new();
        r.incr("te.rounds", 3);
        r.gauge_set("te.warm_hit_rate", 0.75);
        r.record("te.solve_micros", 120.0);
        r.record("te.solve_micros", 480.0);
        let s = r.snapshot();
        assert_eq!(s.counters["te.rounds"], 3);
        assert_eq!(s.gauges["te.warm_hit_rate"], 0.75);
        assert_eq!(s.histograms["te.solve_micros"].count, 2);
        assert_eq!(s.histograms["te.solve_micros"].sum, 600);
        assert_eq!(r.counter("te.rounds"), 3);
        assert_eq!(r.histogram("te.solve_micros").count, 2);
    }

    #[test]
    fn absorb_reproduces_a_single_registry() {
        let w1 = MetricsRegistry::new();
        let w2 = MetricsRegistry::new();
        let single = MetricsRegistry::new();
        w1.incr("fleet.links", 10);
        single.incr("fleet.links", 10);
        w1.record("fleet.episode_ticks", 12.0);
        single.record("fleet.episode_ticks", 12.0);
        w2.incr("fleet.links", 4);
        single.incr("fleet.links", 4);
        w2.record("fleet.episode_ticks", 90.0);
        single.record("fleet.episode_ticks", 90.0);
        w2.gauge_set("scenario.availability", 0.999);
        single.gauge_set("scenario.availability", 0.999);
        let merged = MetricsRegistry::new();
        merged.absorb(&w1.snapshot());
        merged.absorb(&w2.snapshot());
        assert_eq!(merged.snapshot(), single.snapshot());
    }

    proptest::proptest! {
        /// The determinism contract behind per-worker registries: however
        /// the samples are partitioned across workers, absorbing the
        /// partial snapshots reproduces the single-registry result
        /// exactly — counters, bucket counts, integer sums, min/max and
        /// the percentiles derived from them.
        #[test]
        fn absorbed_partitions_match_single_threaded(
            ops in proptest::collection::vec((0usize..4, 0.0f64..1e9), 0..200),
        ) {
            let workers: Vec<MetricsRegistry> =
                (0..4).map(|_| MetricsRegistry::new()).collect();
            let single = MetricsRegistry::new();
            for &(w, v) in &ops {
                workers[w].incr("te.rounds", 1);
                workers[w].record("te.solve_micros", v);
                single.incr("te.rounds", 1);
                single.record("te.solve_micros", v);
            }
            let merged = MetricsRegistry::new();
            for w in &workers {
                merged.absorb(&w.snapshot());
            }
            proptest::prop_assert_eq!(merged.snapshot(), single.snapshot());
        }

        /// Histogram merge is order-independent: folding B into A equals
        /// folding A into B, for arbitrary sample sets.
        #[test]
        fn histogram_merge_commutes(
            xs in proptest::collection::vec(0.0f64..1e12, 0..100),
            ys in proptest::collection::vec(0.0f64..1e12, 0..100),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            for &v in &xs {
                a.record(v);
            }
            for &v in &ys {
                b.record(v);
            }
            let mut ab = a.snapshot();
            ab.merge(&b.snapshot());
            let mut ba = b.snapshot();
            ba.merge(&a.snapshot());
            proptest::prop_assert_eq!(ab, ba);
        }
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let r = MetricsRegistry::new();
        r.incr("lp.warm_hits", 5);
        r.record("te.round_micros", 333.0);
        let s = r.snapshot();
        let back: MetricsSnapshot =
            serde_json::from_str(&s.to_json()).expect("snapshot deserializes");
        assert_eq!(back, s);
    }
}
